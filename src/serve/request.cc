#include "serve/request.h"

#include <algorithm>

#include "check/analyzer.h"
#include "check/registry.h"
#include "serve/json.h"

namespace rstlab::serve {

namespace {

const std::vector<std::string>& GeneratorKinds() {
  static const std::vector<std::string> kinds = {
      "equal", "perturbed", "sorted", "misordered", "disjoint"};
  return kinds;
}

bool Contains(const std::vector<std::string>& values,
              const std::string& value) {
  return std::find(values.begin(), values.end(), value) != values.end();
}

/// Reads an optional unsigned field; named error on wrong type.
Status ReadUint(const JsonValue& object, const char* key,
                std::uint64_t* out) {
  const JsonValue* field = object.Find(key);
  if (field == nullptr) return Status::OK();
  if (!field->is_uint()) {
    return Status::InvalidArgument(std::string("field \"") + key +
                                   "\" must be a non-negative integer");
  }
  *out = field->uint_value();
  return Status::OK();
}

Status ReadString(const JsonValue& object, const char* key,
                  std::string* out) {
  const JsonValue* field = object.Find(key);
  if (field == nullptr) return Status::OK();
  if (!field->is_string()) {
    return Status::InvalidArgument(std::string("field \"") + key +
                                   "\" must be a string");
  }
  *out = field->string_value();
  return Status::OK();
}

/// The certified machine backing a problem, or "" when the registry has
/// none for it.
const char* CertifiedMachineFor(const std::string& problem) {
  if (problem == "fingerprint") return "theorem8a-fingerprint";
  return "";
}

}  // namespace

std::string ResourceBudget::ToJson() const {
  return JsonWriter()
      .Field("r", max_scans)
      .Field("s", max_internal)
      .Field("t", max_tapes)
      .Build();
}

std::string GeneratorSpec::CacheKey() const {
  return kind + ":" + std::to_string(m) + ":" + std::to_string(n) + ":" +
         std::to_string(seed);
}

const std::vector<std::string>& KnownProblems() {
  static const std::vector<std::string> problems = {
      "set-equality", "multiset-equality", "check-sort", "disjoint",
      "fingerprint",  "claim1",            "xpath-count", "test-sleep"};
  return problems;
}

Result<ExperimentRequest> ParseExperimentRequest(
    const std::string& json_body, std::uint64_t max_trials,
    std::uint64_t max_generator_cells) {
  if (max_generator_cells == 0) max_generator_cells = 1;
  Result<JsonValue> parsed = JsonValue::Parse(json_body);
  if (!parsed.ok()) return parsed.status();
  const JsonValue& root = parsed.value();
  if (!root.is_object()) {
    return Status::InvalidArgument("request body must be a JSON object");
  }

  ExperimentRequest request;
  RSTLAB_RETURN_IF_ERROR(ReadString(root, "request_id",
                                    &request.request_id));
  RSTLAB_RETURN_IF_ERROR(ReadString(root, "tenant", &request.tenant));
  RSTLAB_RETURN_IF_ERROR(ReadString(root, "problem", &request.problem));
  if (request.problem.empty()) {
    return Status::InvalidArgument("missing required field \"problem\"");
  }
  if (!Contains(KnownProblems(), request.problem)) {
    return Status::NotFound("unknown problem \"" + request.problem + "\"");
  }
  if (request.request_id.empty()) {
    return Status::InvalidArgument(
        "missing required field \"request_id\"");
  }
  if (request.tenant.empty()) {
    return Status::InvalidArgument("field \"tenant\" must be non-empty");
  }

  const JsonValue* instance = root.Find("instance");
  const JsonValue* generator = root.Find("generator");
  const bool needs_instance =
      request.problem != "xpath-count" && request.problem != "test-sleep";
  if (needs_instance) {
    if ((instance == nullptr) == (generator == nullptr)) {
      return Status::InvalidArgument(
          "exactly one of \"instance\" and \"generator\" is required for "
          "problem \"" +
          request.problem + "\"");
    }
  } else if (instance != nullptr || generator != nullptr) {
    return Status::InvalidArgument(
        "problem \"" + request.problem +
        "\" takes neither \"instance\" nor \"generator\"");
  }
  if (instance != nullptr) {
    if (!instance->is_string()) {
      return Status::InvalidArgument("field \"instance\" must be a string");
    }
    request.instance = instance->string_value();
  }
  if (generator != nullptr) {
    if (!generator->is_object()) {
      return Status::InvalidArgument(
          "field \"generator\" must be an object");
    }
    GeneratorSpec spec;
    RSTLAB_RETURN_IF_ERROR(ReadString(*generator, "kind", &spec.kind));
    if (!Contains(GeneratorKinds(), spec.kind)) {
      return Status::InvalidArgument("unknown generator kind \"" +
                                     spec.kind + "\"");
    }
    RSTLAB_RETURN_IF_ERROR(ReadUint(*generator, "m", &spec.m));
    RSTLAB_RETURN_IF_ERROR(ReadUint(*generator, "n", &spec.n));
    RSTLAB_RETURN_IF_ERROR(ReadUint(*generator, "seed", &spec.seed));
    if (spec.m == 0 || spec.n == 0) {
      return Status::InvalidArgument(
          "generator needs positive \"m\" and \"n\"");
    }
    // Admission ceiling (analogous to max_trials): the generated
    // instance occupies ~2*m*(n+1) encoded cells and is materialized
    // inside a scheduler worker, so an unchecked size lets one request
    // OOM the daemon. Ordered so 2*m*(n+1) is never computed directly
    // — the division form cannot overflow.
    if (spec.n >= max_generator_cells ||
        spec.m > max_generator_cells / (spec.n + 1) / 2) {
      return Status::InvalidArgument(
          "generator m=" + std::to_string(spec.m) +
          " n=" + std::to_string(spec.n) +
          " needs more than the per-request limit of " +
          std::to_string(max_generator_cells) + " instance cells");
    }
    request.generator = std::move(spec);
  }

  if (request.problem == "xpath-count") {
    RSTLAB_RETURN_IF_ERROR(ReadString(root, "query",
                                      &request.xpath_query));
    RSTLAB_RETURN_IF_ERROR(ReadString(root, "xml", &request.xml_text));
    if (request.xpath_query.empty() || request.xml_text.empty()) {
      return Status::InvalidArgument(
          "xpath-count needs \"query\" and \"xml\"");
    }
  }

  RSTLAB_RETURN_IF_ERROR(ReadUint(root, "trials", &request.trials));
  RSTLAB_RETURN_IF_ERROR(ReadUint(root, "seed", &request.seed));
  RSTLAB_RETURN_IF_ERROR(ReadUint(root, "sleep_ms", &request.sleep_ms));
  if (request.trials == 0) {
    return Status::InvalidArgument("\"trials\" must be >= 1");
  }
  if (request.trials > max_trials) {
    return Status::InvalidArgument(
        "\"trials\" " + std::to_string(request.trials) +
        " exceeds the per-request limit of " + std::to_string(max_trials));
  }
  if (request.sleep_ms > 10000) {
    return Status::InvalidArgument("\"sleep_ms\" capped at 10000");
  }

  const JsonValue* stream = root.Find("stream");
  if (stream != nullptr) {
    if (!stream->is_bool()) {
      return Status::InvalidArgument("field \"stream\" must be a boolean");
    }
    request.stream = stream->bool_value();
  }

  const JsonValue* budget = root.Find("budget");
  if (budget != nullptr) {
    if (!budget->is_object()) {
      return Status::InvalidArgument("field \"budget\" must be an object");
    }
    ResourceBudget b;
    RSTLAB_RETURN_IF_ERROR(ReadUint(*budget, "r", &b.max_scans));
    RSTLAB_RETURN_IF_ERROR(ReadUint(*budget, "s", &b.max_internal));
    RSTLAB_RETURN_IF_ERROR(ReadUint(*budget, "t", &b.max_tapes));
    if (b.max_scans == 0 || b.max_tapes == 0) {
      return Status::InvalidArgument(
          "budget needs positive \"r\" and \"t\"");
    }
    request.budget = b;
  }

  return request;
}

std::size_t RequestInputSize(const ExperimentRequest& request) {
  if (request.instance.has_value()) return request.instance->size();
  if (request.generator.has_value()) {
    // The generated instance occupies ~2*m*(n+1) encoded cells (both
    // admission ceilings were enforced at parse time, so the product
    // cannot overflow here).
    return static_cast<std::size_t>(2 * request.generator->m *
                                    (request.generator->n + 1));
  }
  return request.xml_text.size();
}

Status ValidateBudgetAgainstRegistry(const ExperimentRequest& request,
                                     ArtifactCache& cache) {
  if (!request.budget.has_value()) return Status::OK();
  const std::string machine = CertifiedMachineFor(request.problem);
  if (machine.empty()) return Status::OK();

  // The symbolic certificate is a pure function of the machine alone,
  // but it is evaluated at the request's own input size below — so the
  // cache key carries N too, and two request sizes can never alias one
  // cached admission decision.
  const std::size_t n = std::max<std::size_t>(1, RequestInputSize(request));
  const std::string cache_content = machine + "@N=" + std::to_string(n);
  const std::shared_ptr<const check::Analysis> analysis =
      cache.GetOrCreate<check::Analysis>(
          "certificate", cache_content,
          [&machine, n]() -> std::shared_ptr<const check::Analysis> {
            for (const check::CheckedMachine& entry :
                 check::AllCheckedMachines()) {
              if (entry.name == machine) {
                check::AnalyzeOptions options = entry.options;
                options.check_n = n;
                return std::make_shared<check::Analysis>(
                    check::Analyze(entry.spec, options));
              }
            }
            return nullptr;
          });
  if (analysis == nullptr) {
    return Status::Internal("certified machine \"" + machine +
                            "\" missing from registry");
  }

  const check::BoundExpr& scans = analysis->resources.scan_bound;
  const std::uint64_t required = scans.Eval(n);
  if (!scans.unbounded() && request.budget->max_scans < required) {
    return Status::InvalidArgument(
        "budget r=" + std::to_string(request.budget->max_scans) +
        " is below the certified scan bound " + std::to_string(required) +
        " (" + scans.ToString() + " at N = " + std::to_string(n) +
        ") of machine \"" + machine + "\"");
  }
  return Status::OK();
}

}  // namespace rstlab::serve
