#include "serve/client.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cstring>

namespace rstlab::serve {

namespace {

bool WriteAll(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) return false;
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

std::string ToLower(std::string text) {
  std::transform(text.begin(), text.end(), text.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return text;
}

const std::string* FindHeader(const ClientResponse& response,
                              std::string_view name) {
  for (const auto& [key, value] : response.headers) {
    if (key == name) return &value;
  }
  return nullptr;
}

}  // namespace

std::vector<std::string> ClientResponse::Lines() const {
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < body.size()) {
    std::size_t end = body.find('\n', start);
    if (end == std::string::npos) end = body.size();
    if (end > start) lines.push_back(body.substr(start, end - start));
    start = end + 1;
  }
  return lines;
}

HttpClient::~HttpClient() { Close(); }

HttpClient::HttpClient(HttpClient&& other) noexcept
    : fd_(other.fd_), port_(other.port_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

HttpClient& HttpClient::operator=(HttpClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

Status HttpClient::Connect(std::uint16_t port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return Status::Internal("socket() failed");
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    Close();
    return Status::Internal("connect() to 127.0.0.1:" +
                            std::to_string(port) + " failed");
  }
  port_ = port;
  buffer_.clear();
  return Status::OK();
}

void HttpClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status HttpClient::SendRaw(const std::string& bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  if (!WriteAll(fd_, bytes)) return Status::Internal("send() failed");
  return Status::OK();
}

Result<ClientResponse> HttpClient::ReadResponse() {
  if (fd_ < 0) return Status::FailedPrecondition("client not connected");
  char chunk[std::size_t{64} * 1024];

  // Head: up to the blank line.
  std::size_t head_end;
  while ((head_end = buffer_.find("\r\n\r\n")) == std::string::npos) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      Close();
      return Status::Internal("connection closed mid-response");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
  const std::string head = buffer_.substr(0, head_end);
  buffer_.erase(0, head_end + 4);

  ClientResponse response;
  std::size_t line_start = head.find("\r\n");
  const std::string status_line = head.substr(0, line_start);
  // "HTTP/1.1 200 OK" -> 200.
  const std::size_t space = status_line.find(' ');
  if (space == std::string::npos) {
    return Status::Internal("malformed status line: " + status_line);
  }
  response.status = std::atoi(status_line.c_str() + space + 1);

  while (line_start != std::string::npos && line_start + 2 < head.size()) {
    std::size_t line_end = head.find("\r\n", line_start + 2);
    const std::string line =
        head.substr(line_start + 2, line_end == std::string::npos
                                        ? std::string::npos
                                        : line_end - line_start - 2);
    const std::size_t colon = line.find(':');
    if (colon != std::string::npos) {
      std::string name = ToLower(line.substr(0, colon));
      std::size_t value_start = colon + 1;
      while (value_start < line.size() && line[value_start] == ' ') {
        ++value_start;
      }
      response.headers.emplace_back(std::move(name),
                                    line.substr(value_start));
    }
    line_start = line_end;
  }

  const std::string* transfer = FindHeader(response, "transfer-encoding");
  if (transfer != nullptr && ToLower(*transfer) == "chunked") {
    // Chunked body: size line, payload, CRLF, ..., zero chunk.
    for (;;) {
      std::size_t size_end;
      while ((size_end = buffer_.find("\r\n")) == std::string::npos) {
        const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n <= 0) {
          Close();
          return Status::Internal("connection closed mid-chunk");
        }
        buffer_.append(chunk, static_cast<std::size_t>(n));
      }
      const std::size_t size =
          static_cast<std::size_t>(
              std::strtoull(buffer_.substr(0, size_end).c_str(), nullptr, 16));
      buffer_.erase(0, size_end + 2);
      while (buffer_.size() < size + 2) {
        const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n <= 0) {
          Close();
          return Status::Internal("connection closed mid-chunk");
        }
        buffer_.append(chunk, static_cast<std::size_t>(n));
      }
      if (size == 0) {
        buffer_.erase(0, 2);
        break;
      }
      response.body.append(buffer_, 0, size);
      buffer_.erase(0, size + 2);
    }
    return response;
  }

  const std::string* length = FindHeader(response, "content-length");
  const std::size_t body_size =
      length != nullptr
          ? static_cast<std::size_t>(std::strtoull(length->c_str(), nullptr, 10))
          : 0;
  while (buffer_.size() < body_size) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      Close();
      return Status::Internal("connection closed mid-body");
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
  response.body = buffer_.substr(0, body_size);
  buffer_.erase(0, body_size);
  return response;
}

Result<ClientResponse> HttpClient::Request(const std::string& method,
                                           const std::string& target,
                                           const std::string& body) {
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (fd_ < 0) {
      RSTLAB_RETURN_IF_ERROR(Connect(port_));
    }
    std::string request = method + " " + target + " HTTP/1.1\r\n" +
                          "Host: 127.0.0.1\r\n";
    if (!body.empty() || method == "POST") {
      request += "Content-Type: application/json\r\n";
      request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    }
    request += "\r\n" + body;
    if (!WriteAll(fd_, request)) {
      Close();
      continue;  // stale keep-alive connection; reconnect once
    }
    Result<ClientResponse> response = ReadResponse();
    if (response.ok() || attempt == 1) return response;
    Close();
  }
  return Status::Internal("request failed after reconnect");
}

}  // namespace rstlab::serve
