#include "serve/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <condition_variable>
#include <cstring>
#include <exception>
#include <mutex>
#include <utility>
#include <vector>

#include "serve/json.h"
#include "serve/request.h"
#include "serve/trace_bridge.h"

namespace rstlab::serve {

namespace {

/// Writes the whole buffer; MSG_NOSIGNAL so a client that hung up
/// surfaces as a failed write, not SIGPIPE.
bool WriteAll(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) return false;
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

std::string ErrorBody(const Status& status) {
  return JsonWriter()
             .Field("event", "error")
             .Field("code", StatusCodeName(status.code()))
             .Field("message", status.message())
             .Build() +
         "\n";
}

bool WriteJsonResponse(int fd, int status, const std::string& body) {
  HttpResponse response;
  response.status = status;
  response.headers.emplace_back("Content-Type", "application/json");
  response.body = body;
  return WriteAll(fd, SerializeResponse(response));
}

bool WriteErrorResponse(int fd, const Status& status) {
  return WriteJsonResponse(fd, HttpStatusForError(status),
                           ErrorBody(status));
}

}  // namespace

HttpServer::HttpServer(const ServerOptions& options)
    : options_(options),
      cache_(options.cache_entries, &metrics_),
      service_(cache_),
      scheduler_(FairScheduler::Options{options.threads,
                                        options.max_inflight}) {}

HttpServer::~HttpServer() { Shutdown(); }

Status HttpServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::Internal("socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("bind() failed for port " +
                            std::to_string(options_.port));
  }
  if (::listen(listen_fd_, 128) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("listen() failed");
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("getsockname() failed");
  }
  port_ = ntohs(bound.sin_port);
  started_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void HttpServer::AcceptLoop() {
  std::uint64_t next_id = 0;
  while (!stopping_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load()) break;
      continue;  // transient accept failure (EINTR, aborted handshake)
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    std::vector<std::thread> reaped;
    {
      std::unique_lock<std::mutex> lock(conn_mutex_);
      reaped.swap(finished_);
      if (active_connections_ >= options_.max_connections ||
          stopping_.load()) {
        lock.unlock();
        WriteErrorResponse(
            fd, Status::FailedPrecondition("connection limit reached"));
        ::close(fd);
        for (std::thread& t : reaped) t.join();
        continue;
      }
      ++active_connections_;
      conn_fds_.insert(fd);
      const std::uint64_t id = next_id++;
      conn_threads_.emplace(
          id, std::thread([this, fd, id] {
            ServeConnection(fd);
            std::lock_guard<std::mutex> exit_lock(conn_mutex_);
            conn_fds_.erase(fd);
            --active_connections_;
            auto self = conn_threads_.find(id);
            finished_.push_back(std::move(self->second));
            conn_threads_.erase(self);
            conn_done_.notify_all();
          }));
    }
    // Finished handlers are joined outside the lock; each join is
    // near-instant because the thread already signalled completion.
    for (std::thread& t : reaped) t.join();
  }
}

void HttpServer::ServeConnection(int fd) {
  std::string buffer;
  char chunk[64 * 1024];
  while (!stopping_.load()) {
    const HttpParseResult parsed = ParseHttpRequest(buffer, options_.limits);
    if (parsed.progress == ParseProgress::kError) {
      metrics_.Add("serve.http.parse_errors");
      WriteJsonResponse(fd, parsed.http_status, ErrorBody(parsed.error));
      break;  // protocol state is unrecoverable; drop the connection
    }
    if (parsed.progress == ParseProgress::kDone) {
      buffer.erase(0, parsed.consumed);
      if (!HandleParsed(fd, parsed.request)) break;
      continue;  // the buffer may already hold a pipelined request
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;  // peer closed (or Shutdown() woke us)
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
}

bool HttpServer::HandleParsed(int fd, const HttpRequest& request) {
  metrics_.Add("serve.requests");
  if (request.method == "GET" && request.target == "/healthz") {
    return WriteJsonResponse(fd, 200,
                             JsonWriter()
                                 .Field("status", "ok")
                                 .Field("port", port_)
                                 .Build() +
                                 "\n");
  }
  if (request.method == "GET" && request.target == "/metrics") {
    const FairScheduler::Stats stats = scheduler_.stats();
    metrics_.SetGauge("serve.scheduler.inflight",
                      static_cast<double>(stats.inflight));
    return WriteJsonResponse(fd, 200, metrics_.ToJsonObject() + "\n");
  }
  if (request.method == "POST" && request.target == "/v1/experiment") {
    return HandleExperiment(fd, request);
  }
  metrics_.Add("serve.http.unrouted");
  const Status status =
      request.target == "/healthz" || request.target == "/metrics" ||
              request.target == "/v1/experiment"
          ? Status::InvalidArgument("method not supported for " +
                                    request.target)
          : Status::NotFound("no route for " + request.target);
  return WriteErrorResponse(fd, status);
}

Result<ExperimentResult> HttpServer::ExecuteGuarded(
    const ExperimentRequest& request, NdjsonTraceSink* sink) {
  try {
    return service_.Execute(request, sink);
  } catch (const std::exception& e) {
    metrics_.Add("serve.experiment.threw");
    return Status::Internal(std::string("experiment execution failed: ") +
                            e.what());
  } catch (...) {
    metrics_.Add("serve.experiment.threw");
    return Status::Internal("experiment execution failed");
  }
}

bool HttpServer::RunExperimentJob(int fd,
                                  const ExperimentRequest& experiment) {
  bool ok = true;
  if (experiment.stream) {
    HttpResponse head;
    head.status = 200;
    head.chunked = true;
    head.headers.emplace_back("Content-Type", "application/x-ndjson");
    ok = WriteAll(fd, SerializeResponse(head));
    NdjsonTraceSink sink([fd, &ok](std::string_view line) {
      if (ok) ok = WriteAll(fd, EncodeChunk(std::string(line) + "\n"));
    });
    Result<ExperimentResult> result = ExecuteGuarded(experiment, &sink);
    const std::string frame = result.ok()
                                  ? result.value().ToJson() + "\n"
                                  : ErrorBody(result.status());
    if (ok) ok = WriteAll(fd, EncodeChunk(frame));
    if (ok) ok = WriteAll(fd, FinalChunk());
  } else {
    Result<ExperimentResult> result = ExecuteGuarded(experiment);
    if (result.ok()) {
      ok = WriteJsonResponse(fd, 200, result.value().ToJson() + "\n");
    } else {
      metrics_.Add("serve.experiment.failed");
      ok = WriteErrorResponse(fd, result.status());
    }
  }
  return ok;
}

bool HttpServer::HandleExperiment(int fd, const HttpRequest& request) {
  Result<ExperimentRequest> parsed =
      ParseExperimentRequest(request.body, options_.max_trials,
                             options_.max_generator_cells);
  if (!parsed.ok()) {
    metrics_.Add("serve.experiment.invalid");
    return WriteErrorResponse(fd, parsed.status());
  }
  const ExperimentRequest experiment = std::move(parsed).value();
  const Status budget_check =
      ValidateBudgetAgainstRegistry(experiment, cache_);
  if (!budget_check.ok()) {
    metrics_.Add("serve.experiment.invalid");
    return WriteErrorResponse(fd, budget_check);
  }

  // The scheduler worker runs the experiment and writes every response
  // byte itself; this connection thread blocks until then, so exactly
  // one thread touches the socket at a time.
  std::mutex done_mutex;
  std::condition_variable done_cv;
  bool done = false;
  bool write_ok = false;
  const Status admitted = scheduler_.Submit(experiment.tenant, [&] {
    // The done-notification below must run on EVERY exit path: the
    // connection thread is blocked on done_cv until it does, and the
    // captured locals die with that thread's stack frame.
    bool ok = false;
    try {
      ok = RunExperimentJob(fd, experiment);
    } catch (...) {
      ok = false;  // response may be half-written; drop the connection
    }
    std::lock_guard<std::mutex> lock(done_mutex);
    done = true;
    write_ok = ok;
    done_cv.notify_all();
  });
  if (!admitted.ok()) {
    metrics_.Add(admitted.code() == StatusCode::kResourceExhausted
                     ? "serve.experiment.rejected"
                     : "serve.experiment.draining");
    return WriteErrorResponse(fd, admitted);
  }
  std::unique_lock<std::mutex> lock(done_mutex);
  done_cv.wait(lock, [&] { return done; });
  metrics_.Add("serve.experiment.completed");
  return write_ok;
}

void HttpServer::Shutdown() {
  if (!started_) return;
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) return;

  // Unblock accept(), then every connection reader.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();

  std::vector<std::thread> to_join;
  {
    std::unique_lock<std::mutex> lock(conn_mutex_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    conn_done_.wait(lock, [this] { return conn_threads_.empty(); });
    to_join.swap(finished_);
  }
  // join() returns only after the handler fully terminates (including
  // its notify above), so member destruction cannot race it.
  for (std::thread& t : to_join) t.join();

  scheduler_.Drain();
  ::close(listen_fd_);
  listen_fd_ = -1;
}

}  // namespace rstlab::serve
