#include "serve/artifact_cache.h"

namespace rstlab::serve {

std::uint64_t HashContent(std::string_view content) {
  std::uint64_t hash = 1469598103934665603ULL;  // FNV offset basis
  for (const char c : content) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;  // FNV prime
  }
  return hash;
}

ArtifactCache::ArtifactCache(std::size_t capacity,
                             obs::MetricsRegistry* metrics)
    : capacity_(capacity == 0 ? 1 : capacity), metrics_(metrics) {}

std::shared_ptr<const void> ArtifactCache::GetOrCreateErased(
    std::string_view kind, std::uint64_t content_hash,
    std::string_view content,
    const std::function<std::shared_ptr<const void>()>& factory) {
  Key key{std::string(kind), content_hash};
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    if (it->second->content == content) {
      // Move to MRU position.
      lru_.splice(lru_.begin(), lru_, it->second);
      ++stats_.hits;
      if (metrics_ != nullptr) metrics_->Add("serve.cache.hits");
      return it->second->value;
    }
    // Same 64-bit FNV-1a hash, different bytes: serving the cached
    // artifact would hand this request another payload's results (and
    // a crafted collision would let one tenant poison another's).
    // Build fresh and leave the resident entry alone.
    ++stats_.collisions;
    if (metrics_ != nullptr) metrics_->Add("serve.cache.collisions");
    return factory();
  }
  ++stats_.misses;
  if (metrics_ != nullptr) metrics_->Add("serve.cache.misses");
  std::shared_ptr<const void> value = factory();
  if (value == nullptr) return nullptr;
  lru_.push_front(Entry{key, std::string(content), value});
  index_[std::move(key)] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
    if (metrics_ != nullptr) metrics_->Add("serve.cache.evictions");
  }
  return value;
}

ArtifactCache::Stats ArtifactCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats out = stats_;
  out.entries = lru_.size();
  return out;
}

}  // namespace rstlab::serve
