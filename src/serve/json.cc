#include "serve/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdint>
#include <cstdio>

namespace rstlab::serve {

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    if (keys_[i] == key) return &values_[i];
  }
  return nullptr;
}

JsonValue JsonValue::MakeBool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::MakeNumber(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  if (d >= 0 && d == std::floor(d) && d <= 1.8e19) {
    v.uint_ = static_cast<std::uint64_t>(d);
    v.has_uint_ = true;
  }
  return v;
}

JsonValue JsonValue::MakeString(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

/// Recursive-descent parser over a bounded document. Depth is capped so
/// a hostile body cannot overflow the stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue value;
    Status status = ParseValue(&value, 0);
    if (!status.ok()) return status;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  static constexpr std::size_t kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JSON parse error at byte " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, std::size_t depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': return ParseObject(out, depth);
      case '[': return ParseArray(out, depth);
      case '"': {
        out->kind_ = JsonValue::Kind::kString;
        return ParseString(&out->string_);
      }
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          *out = JsonValue::MakeBool(true);
          return Status::OK();
        }
        return Error("invalid literal");
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          *out = JsonValue::MakeBool(false);
          return Status::OK();
        }
        return Error("invalid literal");
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          *out = JsonValue::MakeNull();
          return Status::OK();
        }
        return Error("invalid literal");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, std::size_t depth) {
    ++pos_;  // '{'
    out->kind_ = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      std::string key;
      RSTLAB_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      JsonValue value;
      RSTLAB_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->keys_.push_back(std::move(key));
      out->values_.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, std::size_t depth) {
    ++pos_;  // '['
    out->kind_ = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue value;
      RSTLAB_RETURN_IF_ERROR(ParseValue(&value, depth + 1));
      out->array_.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Error("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) return Error("truncated escape");
        const char esc = text_[pos_ + 1];
        pos_ += 2;
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            unsigned code = 0;
            RSTLAB_RETURN_IF_ERROR(ParseHexQuad(&code));
            std::uint32_t cp = code;
            if (code >= 0xDC00 && code <= 0xDFFF) {
              return Error("unpaired low surrogate");
            }
            if (code >= 0xD800 && code <= 0xDBFF) {
              // A high surrogate is only half a code point; JSON
              // encodes the other half as an immediately following
              // \uDC00-\uDFFF. Combining them here keeps the decoded
              // string valid UTF-8 (a lone 3-byte encoding of a
              // surrogate would be CESU-8, invalid in response bodies).
              if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                  text_[pos_ + 1] != 'u') {
                return Error("unpaired high surrogate");
              }
              pos_ += 2;
              unsigned low = 0;
              RSTLAB_RETURN_IF_ERROR(ParseHexQuad(&low));
              if (low < 0xDC00 || low > 0xDFFF) {
                return Error("unpaired high surrogate");
              }
              cp = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            }
            if (cp < 0x80) {
              out->push_back(static_cast<char>(cp));
            } else if (cp < 0x800) {
              out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
              out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
            } else if (cp < 0x10000) {
              out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
              out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
            } else {
              out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
              out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
            }
            break;
          }
          default: return Error("unknown escape");
        }
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      out->push_back(c);
      ++pos_;
    }
    return Error("unterminated string");
  }

  /// Reads exactly four hex digits at pos_ (one UTF-16 code unit of a
  /// \u escape) and advances past them.
  Status ParseHexQuad(unsigned* out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_ + i];
      code <<= 4;
      if (h >= '0' && h <= '9') code |= h - '0';
      else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
      else if (h >= 'A' && h <= 'F') code |= h - 'A' + 10;
      else return Error("bad \\u escape");
    }
    pos_ += 4;
    *out = code;
    return Status::OK();
  }

  Status ParseNumber(JsonValue* out) {
    const std::size_t start = pos_;
    if (Consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") return Error("invalid number");
    double value = 0.0;
    const auto [end, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc{} || end != token.data() + token.size()) {
      return Error("invalid number \"" + std::string(token) + "\"");
    }
    out->kind_ = JsonValue::Kind::kNumber;
    out->number_ = value;
    // Exact unsigned integers additionally parse as uint64 so protocol
    // fields like seeds round-trip without precision loss.
    if (!token.empty() && token[0] != '-' &&
        token.find_first_of(".eE") == std::string_view::npos) {
      std::uint64_t exact = 0;
      const auto [uend, uec] =
          std::from_chars(token.data(), token.data() + token.size(), exact);
      if (uec == std::errc{} && uend == token.data() + token.size()) {
        out->uint_ = exact;
        out->has_uint_ = true;
      }
    }
    return Status::OK();
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

Result<JsonValue> JsonValue::Parse(std::string_view text) {
  return JsonParser(text).Parse();
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

JsonWriter& JsonWriter::Field(std::string_view key, std::string_view value) {
  std::string quoted;
  quoted.reserve(value.size() + 2);
  quoted.push_back('"');
  quoted += JsonEscape(value);
  quoted.push_back('"');
  return FieldRaw(key, quoted);
}

JsonWriter& JsonWriter::Field(std::string_view key, const char* value) {
  return Field(key, std::string_view(value));
}

JsonWriter& JsonWriter::Field(std::string_view key, std::uint64_t value) {
  return FieldRaw(key, std::to_string(value));
}

JsonWriter& JsonWriter::Field(std::string_view key, int value) {
  return FieldRaw(key, std::to_string(value));
}

JsonWriter& JsonWriter::Field(std::string_view key, bool value) {
  return FieldRaw(key, value ? "true" : "false");
}

JsonWriter& JsonWriter::FieldDouble(std::string_view key, double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return FieldRaw(key, buf);
}

JsonWriter& JsonWriter::FieldRaw(std::string_view key,
                                 std::string_view raw) {
  if (!body_.empty()) body_ += ",";
  body_ += "\"";
  body_ += JsonEscape(key);
  body_ += "\":";
  body_ += raw;
  return *this;
}

std::string JsonWriter::Build() const { return "{" + body_ + "}"; }

}  // namespace rstlab::serve
