#ifndef RSTLAB_SERVE_SCHEDULER_H_
#define RSTLAB_SERVE_SCHEDULER_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <mutex>
#include <string>
#include <utility>

#include "parallel/thread_pool.h"
#include "util/status.h"

namespace rstlab::serve {

/// Fair per-tenant FIFO scheduling with bounded admission over the
/// shared `parallel::ThreadPool`.
///
/// Each tenant owns one FIFO; a round-robin cursor walks the non-empty
/// tenant queues, so a tenant flooding the service delays only its own
/// requests — the next request of every other tenant is at most
/// (#tenants * running slots) dispatches away, never behind the
/// flooder's backlog.
///
/// Admission is bounded: at most `max_inflight` jobs may be queued or
/// running at once. A Submit beyond the bound fails with
/// ResourceExhausted (the server maps it to HTTP 429) rather than
/// queueing unboundedly — under overload the caller sheds load at the
/// edge instead of accumulating latency. A Submit after Drain() began
/// fails with FailedPrecondition (HTTP 503).
///
/// The pool is not given every admitted job at once: jobs sit in their
/// tenant queue and are handed to the pool only when a worker slot
/// frees, because the pool's own queue is plain FIFO and would destroy
/// the fairness ordering.
class FairScheduler {
 public:
  struct Options {
    /// Worker threads executing jobs (0 clamps to 1).
    std::size_t threads = 4;
    /// Maximum queued + running jobs before Submit rejects.
    std::size_t max_inflight = 256;
  };

  struct Stats {
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t completed = 0;
    std::size_t inflight = 0;  // queued + running right now
  };

  explicit FairScheduler(const Options& options);

  /// Drains and joins. Equivalent to Drain() if not already drained.
  ~FairScheduler();

  FairScheduler(const FairScheduler&) = delete;
  FairScheduler& operator=(const FairScheduler&) = delete;

  std::size_t threads() const { return pool_.thread_count(); }

  /// Enqueues `job` for `tenant`. Fails with ResourceExhausted at the
  /// admission bound and FailedPrecondition once draining. A job that
  /// throws still releases its slot (the exception is swallowed);
  /// callers that care about the error must catch it inside the job.
  Status Submit(const std::string& tenant, std::function<void()> job);

  /// Stops admitting and blocks until every admitted job has finished.
  /// Idempotent.
  void Drain();

  Stats stats() const;

 private:
  /// Picks the next job round-robin and hands it to the pool; must be
  /// called with `mutex_` held.
  void DispatchLocked();

  struct TenantQueue {
    std::string tenant;
    std::deque<std::function<void()>> jobs;
  };

  parallel::ThreadPool pool_;
  const std::size_t max_inflight_;

  mutable std::mutex mutex_;
  std::condition_variable drained_;
  // Round-robin ring of tenants with queued work; the cursor advances
  // one tenant per dispatch. Tenants leave the ring when empty.
  std::list<TenantQueue> ring_;
  std::list<TenantQueue>::iterator cursor_ = ring_.end();
  std::size_t queued_ = 0;
  std::size_t running_ = 0;
  bool draining_ = false;
  Stats stats_;
};

}  // namespace rstlab::serve

#endif  // RSTLAB_SERVE_SCHEDULER_H_
