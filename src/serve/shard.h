#ifndef RSTLAB_SERVE_SHARD_H_
#define RSTLAB_SERVE_SHARD_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string_view>

namespace rstlab::serve {

/// Consistent-hash router: request id -> shard index in [0, shards).
///
/// Each shard owns `kVirtualNodes` points on a 64-bit hash ring; a
/// request id routes to the owner of the first point at or after its
/// own hash. Properties the serve-shard conformance suite leans on:
///
///  * deterministic — the ring is a pure function of the shard count,
///    so every frontend (and every conformance run) computes the same
///    routing;
///  * stable under resharding — growing N -> N+1 shards remaps only the
///    keys whose successor point changed (about 1/(N+1) of them),
///    instead of the (N-1)/N a plain `hash % N` remaps.
///
/// Determinism of the *tallies* does not depend on the routing at all:
/// every request executes as a pure function of its payload, so ANY
/// assignment of requests to shards returns bit-identical responses.
/// The router only decides placement.
class ShardRouter {
 public:
  static constexpr std::size_t kVirtualNodes = 64;

  /// A ring over `shards` shards (0 clamps to 1).
  explicit ShardRouter(std::size_t shards);

  std::size_t shards() const { return shards_; }

  /// The shard that owns `request_id`.
  std::size_t Route(std::string_view request_id) const;

 private:
  std::size_t shards_;
  std::map<std::uint64_t, std::size_t> ring_;
};

}  // namespace rstlab::serve

#endif  // RSTLAB_SERVE_SHARD_H_
