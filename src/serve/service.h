#ifndef RSTLAB_SERVE_SERVICE_H_
#define RSTLAB_SERVE_SERVICE_H_

#include <cstdint>
#include <optional>
#include <string>

#include "serve/artifact_cache.h"
#include "serve/request.h"
#include "serve/trace_bridge.h"
#include "tape/resource_meter.h"
#include "util/status.h"

namespace rstlab::serve {

/// The outcome of one experiment request. Every field is a pure
/// function of the request payload — no timestamps, thread counts or
/// server identity — which is the whole shard-determinism argument:
/// two servers (or one) given byte-identical requests produce
/// byte-identical result frames, so the serve-shard conformance suite
/// can compare them with strcmp.
struct ExperimentResult {
  std::string request_id;
  std::string problem;
  /// Trials the engine executed (1 for the deterministic problems
  /// regardless of the requested count — re-running a deterministic
  /// decider cannot change the verdict).
  std::uint64_t executed_trials = 0;
  /// Trials that accepted (for the deciders: verdict yes = 1, no = 0).
  std::uint64_t accepts = 0;
  /// Order-sensitive fold of every per-trial observation (params,
  /// verdicts), the serving twin of the bench tally checksum.
  std::uint64_t checksum = 0;
  /// Problem-specific count (xpath-count: selected nodes; claim1:
  /// collision trials).
  std::uint64_t extra = 0;
  /// Measured (r, s, t) bill of the metered tape run, when the problem
  /// has one (deciders always; fingerprint when a budget asks for it).
  std::optional<tape::ResourceReport> report;
  /// Whether the measured bill stayed inside the declared budget
  /// (true when no budget was declared).
  bool budget_ok = true;

  /// The deterministic `{"event":"result",...}` NDJSON frame.
  std::string ToJson() const;
};

/// Executes validated experiment requests against the library: the
/// compute half of the server, separated so the conformance suite and
/// tests can drive it without sockets. Owns no threads — each call
/// runs on the caller's thread (the scheduler provides concurrency)
/// and is deterministic per request payload.
class ExperimentService {
 public:
  /// Uses `cache` for prime pools, parsed instances/XML/queries and
  /// analyzer certificates.
  explicit ExperimentService(ArtifactCache& cache);

  /// Runs one request. `events` (nullable) receives NDJSON progress
  /// frames: per-trial markers when `request.stream` is set. Errors are
  /// named statuses the server maps onto HTTP codes (unknown problem
  /// NotFound -> 404, bad instance InvalidArgument -> 400, ...).
  Result<ExperimentResult> Execute(const ExperimentRequest& request,
                                   NdjsonTraceSink* events = nullptr);

 private:
  ArtifactCache& cache_;
};

}  // namespace rstlab::serve

#endif  // RSTLAB_SERVE_SERVICE_H_
