#ifndef RSTLAB_SERVE_HTTP_H_
#define RSTLAB_SERVE_HTTP_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace rstlab::serve {

/// One parsed HTTP/1.1 request. The parser below fills every field;
/// header names are lower-cased at parse time so lookups are
/// case-insensitive per RFC 9110 without per-lookup folding.
struct HttpRequest {
  std::string method;   // "GET", "POST", ...
  std::string target;   // origin-form request target, e.g. "/healthz"
  std::string version;  // "HTTP/1.1"
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Value of header `name` (lower-case), or nullptr when absent.
  const std::string* FindHeader(std::string_view name) const;
};

/// One HTTP response to serialize. Content-Length is emitted
/// automatically from `body` unless `chunked` is set, in which case the
/// caller streams the body itself via the chunk helpers below.
struct HttpResponse {
  int status = 200;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  bool chunked = false;
};

/// Canonical reason phrase for the status codes the server emits
/// ("Unknown" for anything else).
const char* HttpReasonPhrase(int status);

/// Serializes status line + headers (+ Content-Length and body, or
/// Transfer-Encoding: chunked with the body left to the caller).
std::string SerializeResponse(const HttpResponse& response);

/// One chunk of a chunked response body (size line + payload + CRLF).
std::string EncodeChunk(std::string_view payload);

/// The terminating zero chunk.
std::string FinalChunk();

/// Maps a library Status to the HTTP status code the protocol uses:
/// InvalidArgument -> 400, NotFound -> 404, OutOfRange -> 413,
/// ResourceExhausted -> 429, FailedPrecondition -> 503, anything else
/// -> 500. OK maps to 200.
int HttpStatusForError(const Status& status);

/// Size limits enforced while parsing a request.
struct HttpLimits {
  /// Maximum bytes of request line + headers (431 beyond).
  std::size_t max_head_bytes = std::size_t{16} * 1024;
  /// Maximum declared/observed body size (413 beyond).
  std::size_t max_body_bytes = std::size_t{1} << 20;
};

/// Progress of an incremental parse over a receive buffer.
enum class ParseProgress {
  kNeedMore,  // buffer holds a prefix of a valid request; read more
  kDone,      // one full request parsed; `consumed` bytes were used
  kError,     // protocol error; `error` and `http_status` describe it
};

/// Outcome of ParseHttpRequest. On kDone, `consumed` is the byte count
/// of the parsed request, so a buffer holding pipelined requests can be
/// advanced and re-parsed for the next one.
struct HttpParseResult {
  ParseProgress progress = ParseProgress::kNeedMore;
  HttpRequest request;
  Status error;
  int http_status = 400;
  std::size_t consumed = 0;
};

/// Parses one request from the front of `buffer`. Never throws; every
/// malformed input maps to a named InvalidArgument/OutOfRange status
/// plus the HTTP code to answer with:
///   * bad request line / header syntax          -> 400
///   * missing, non-numeric, overlong or
///     duplicate-mismatched Content-Length       -> 400
///   * head section beyond limits.max_head_bytes -> 431
///   * body beyond limits.max_body_bytes         -> 413 (reported as
///     soon as the declared length exceeds the limit, before the body
///     arrives)
/// A body is only expected when Content-Length is present; the server
/// does not accept Transfer-Encoding on requests (501).
HttpParseResult ParseHttpRequest(std::string_view buffer,
                                 const HttpLimits& limits);

}  // namespace rstlab::serve

#endif  // RSTLAB_SERVE_HTTP_H_
