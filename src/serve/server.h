#ifndef RSTLAB_SERVE_SERVER_H_
#define RSTLAB_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/metrics.h"
#include "serve/artifact_cache.h"
#include "serve/http.h"
#include "serve/scheduler.h"
#include "serve/service.h"
#include "util/status.h"

namespace rstlab::serve {

/// Configuration for one HttpServer instance; the CLI flags of
/// `rstlab serve` map onto these fields one-to-one.
struct ServerOptions {
  /// TCP port on 127.0.0.1; 0 picks an ephemeral port (read it back
  /// via port() — tests and the conform suite rely on this).
  std::uint16_t port = 0;
  /// Scheduler worker threads executing experiments.
  std::size_t threads = 4;
  /// Admission bound: queued + running experiments before 429.
  std::size_t max_inflight = 256;
  /// Concurrent connections before new accepts get an immediate 503.
  std::size_t max_connections = 64;
  /// ArtifactCache capacity in entries.
  std::size_t cache_entries = 128;
  /// Per-request trial ceiling.
  std::uint64_t max_trials = std::uint64_t{1} << 20;
  /// Generator admission ceiling: a generated instance may occupy at
  /// most this many encoded cells (~ 2*m*(n+1)), rejected at parse
  /// time so no worker allocates for an oversized request.
  std::uint64_t max_generator_cells = std::uint64_t{1} << 24;
  /// HTTP head/body size limits.
  HttpLimits limits;
};

/// The experiment daemon: minimal HTTP/1.1 over loopback, one accept
/// thread plus one thread per live connection, experiments multiplexed
/// onto the FairScheduler.
///
/// Endpoints:
///   GET  /healthz        -> {"status":"ok",...}
///   GET  /metrics        -> the MetricsRegistry as one JSON object
///   POST /v1/experiment  -> run one validated experiment request;
///        `"stream":true` responses are chunked NDJSON (trial frames,
///        then the result frame), non-streaming responses are plain
///        JSON with Content-Length and an exact error status (400 bad
///        input, 404 unknown problem, 413 oversized, 429 over
///        admission bound, 503 draining).
///
/// Connections are keep-alive and pipelining-safe: each request is
/// fully consumed (by byte count) before the next is parsed from the
/// same buffer. All response bytes for a request are written by the
/// thread that executes it, so frames never interleave.
class HttpServer {
 public:
  explicit HttpServer(const ServerOptions& options);

  /// Shuts down if still running.
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Binds, listens and starts the accept thread. Fails with
  /// kInternal if the port cannot be bound.
  Status Start();

  /// The bound port (after Start); stable for the server's lifetime.
  std::uint16_t port() const { return port_; }

  /// Graceful shutdown: stop accepting, unblock readers, drain every
  /// admitted experiment, join all threads. Idempotent.
  void Shutdown();

  /// Live registry: cache hit/miss counters, request/error tallies.
  obs::MetricsRegistry& metrics() { return metrics_; }

  FairScheduler::Stats scheduler_stats() const {
    return scheduler_.stats();
  }
  ArtifactCache::Stats cache_stats() const { return cache_.stats(); }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);
  /// Parses + runs one request from `buffer`; returns false when the
  /// connection must close (parse error or short write).
  bool HandleParsed(int fd, const HttpRequest& request);
  bool HandleExperiment(int fd, const HttpRequest& request);
  /// Runs the experiment on a scheduler worker and writes the whole
  /// response (streamed or buffered); returns false when the
  /// connection must close.
  bool RunExperimentJob(int fd, const ExperimentRequest& request);
  /// service_.Execute with any escaping exception mapped to an
  /// Internal status (HTTP 500) instead of unwinding into the
  /// scheduler worker.
  Result<ExperimentResult> ExecuteGuarded(const ExperimentRequest& request,
                                          NdjsonTraceSink* sink = nullptr);

  const ServerOptions options_;
  obs::MetricsRegistry metrics_;
  ArtifactCache cache_;
  ExperimentService service_;
  FairScheduler scheduler_;

  std::atomic<bool> stopping_{false};
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;

  // Connection-handler lifecycle: a handler moves its own std::thread
  // into `finished_` as its last locked action; the accept loop (and
  // finally Shutdown) joins those, so every handler is joined — never
  // detached — and member destruction cannot race a live handler.
  std::mutex conn_mutex_;
  std::condition_variable conn_done_;
  std::unordered_set<int> conn_fds_;
  std::unordered_map<std::uint64_t, std::thread> conn_threads_;
  std::vector<std::thread> finished_;
  std::size_t active_connections_ = 0;
  bool started_ = false;
};

}  // namespace rstlab::serve

#endif  // RSTLAB_SERVE_SERVER_H_
