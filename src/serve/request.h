#ifndef RSTLAB_SERVE_REQUEST_H_
#define RSTLAB_SERVE_REQUEST_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "serve/artifact_cache.h"
#include "util/status.h"

namespace rstlab::serve {

/// The declared resource budget (r, s, t) of one experiment request —
/// the paper's class parameters as an admission contract: the server
/// rejects up front a budget no algorithm for the problem can meet
/// (below the check registry's certified bound) and reports after the
/// run whether the measured bill stayed inside the budget.
struct ResourceBudget {
  std::uint64_t max_scans = 0;        // r(N)
  std::uint64_t max_internal = 0;     // s(N), in cells/bits
  std::uint64_t max_tapes = 0;        // t

  std::string ToJson() const;
};

/// Deterministic instance generator parameters — the alternative to an
/// inline instance literal. Kinds mirror `rstlab generate`: equal,
/// perturbed, sorted, misordered, disjoint.
struct GeneratorSpec {
  std::string kind;
  std::uint64_t m = 0;
  std::uint64_t n = 0;
  std::uint64_t seed = 1;

  /// The cache-key content for the generated artifact (a pure function
  /// of the spec, so byte-identical specs share one parsed instance).
  std::string CacheKey() const;
};

/// One experiment request, decoded from the POST /v1/experiment JSON
/// body. Exactly one of `instance` / `generator` is set for the
/// instance problems; `xpath`/`xml` replace them for xpath-count.
struct ExperimentRequest {
  std::string request_id;            // consistent-hash routing key
  std::string tenant = "default";    // fair-scheduling key
  std::string problem;

  std::optional<std::string> instance;     // inline v1#...#vm# literal
  std::optional<GeneratorSpec> generator;  // or a generator spec

  std::string xpath_query;  // xpath-count only
  std::string xml_text;     // xpath-count only

  std::uint64_t trials = 1;
  std::uint64_t seed = 1;
  std::optional<ResourceBudget> budget;

  /// Stream one NDJSON progress event per trial (otherwise only
  /// begin/result frames are sent).
  bool stream = false;

  /// Diagnostic sleep in milliseconds (test-sleep problem only).
  std::uint64_t sleep_ms = 0;
};

/// The problems the service accepts. The deterministic deciders run on
/// tapes and bill a measured (r, s, t); fingerprint is the randomized
/// Theorem 8(a) tester; claim1 estimates the Claim 1 collision rate;
/// xpath-count evaluates an XPath query; test-sleep holds a worker for
/// a fixed time (admission-control diagnostics).
const std::vector<std::string>& KnownProblems();

/// Parses and structurally validates a request body. Failures are named
/// InvalidArgument (malformed JSON, missing/conflicting fields, bad
/// generator kind, trial count 0 or beyond `max_trials`, generator
/// dimensions whose instance would exceed `max_generator_cells`
/// encoded cells ~ 2*m*(n+1)) or NotFound (unknown problem name)
/// statuses; the server maps them to 400/404. Both ceilings are
/// enforced here, before admission, so no worker ever allocates for an
/// oversized request.
Result<ExperimentRequest> ParseExperimentRequest(
    const std::string& json_body,
    std::uint64_t max_trials = std::uint64_t{1} << 20,
    std::uint64_t max_generator_cells = std::uint64_t{1} << 24);

/// The input size N the request's machine will run at: the inline
/// instance's encoded length, the generator's ~2*m*(n+1) encoded
/// cells, or the XML payload size.
std::size_t RequestInputSize(const ExperimentRequest& request);

/// Cross-checks the declared budget against the check registry: when
/// the problem has a statically certified machine (fingerprint ->
/// theorem8a-fingerprint), a budget strictly below the certificate's
/// symbolic scan bound *evaluated at the request's own input size N*
/// is rejected (InvalidArgument) before any cycle is spent on it. The
/// analyzer certificate is itself an artifact: computed once per
/// (machine, N) and reused via `cache` (kind "certificate", content
/// "machine@N=n" — two request sizes never alias one cached
/// certificate).
Status ValidateBudgetAgainstRegistry(const ExperimentRequest& request,
                                     ArtifactCache& cache);

}  // namespace rstlab::serve

#endif  // RSTLAB_SERVE_REQUEST_H_
