#ifndef RSTLAB_SERVE_ARTIFACT_CACHE_H_
#define RSTLAB_SERVE_ARTIFACT_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "obs/metrics.h"

namespace rstlab::serve {

/// 64-bit FNV-1a over `content` — the content hash the cache keys on.
/// Stable across platforms and processes, so a sharded deployment's
/// caches key identically.
std::uint64_t HashContent(std::string_view content);

/// A content-hash-keyed LRU cache for the expensive per-request
/// artifacts the experiment service would otherwise rebuild on every
/// request: sieved prime pools, parsed instances, parsed XML documents,
/// analyzer certificates.
///
/// Lookup keys on (kind, HashContent(content)) — the kind string
/// partitions the namespace so two artifact types can never collide,
/// and the content hash means two requests carrying byte-identical
/// payloads share one artifact regardless of tenant or request id.
/// FNV-1a is fast but not collision-resistant, so every entry also
/// stores the full content and a hit verifies it byte-for-byte: a
/// colliding payload (accidental, or crafted by one tenant against
/// another's cached bytes) falls back to the factory instead of
/// silently observing the wrong artifact. Values are type-erased
/// shared_ptrs: readers hold their reference for as long as they need
/// it, so eviction never invalidates an in-flight request.
///
/// Thread safety: every public method is safe to call concurrently. A
/// factory runs under the cache lock, serializing the first
/// construction of an artifact so concurrent identical requests build
/// it exactly once (single-flight); artifacts here are milliseconds to
/// build, which is far cheaper than building one per concurrent miss.
///
/// Hit/miss/eviction totals are published to an optional
/// `obs::MetricsRegistry` as `serve.cache.hits`, `serve.cache.misses`
/// and `serve.cache.evictions`.
class ArtifactCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    /// Hash matched but the stored content did not; served fresh from
    /// the factory, never from the cache.
    std::uint64_t collisions = 0;
    std::size_t entries = 0;

    double hit_rate() const {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(total);
    }
  };

  /// A cache holding at most `capacity` artifacts (>= 1), publishing
  /// counters to `metrics` when non-null (not owned).
  explicit ArtifactCache(std::size_t capacity,
                         obs::MetricsRegistry* metrics = nullptr);

  ArtifactCache(const ArtifactCache&) = delete;
  ArtifactCache& operator=(const ArtifactCache&) = delete;

  /// The artifact for (kind, content), building it via `factory` on
  /// miss. A null result from `factory` is not cached (failed builds
  /// retry on the next request).
  template <typename T>
  std::shared_ptr<const T> GetOrCreate(
      std::string_view kind, std::string_view content,
      const std::function<std::shared_ptr<const T>()>& factory) {
    std::shared_ptr<const void> erased = GetOrCreateErased(
        kind, HashContent(content), content,
        [&factory]() -> std::shared_ptr<const void> { return factory(); });
    return std::static_pointer_cast<const T>(erased);
  }

  /// Type-erased core. The hash is a separate parameter (exposed for
  /// tests) so a collision — same hash, different `content` — can be
  /// injected without searching for real FNV-1a colliding strings.
  std::shared_ptr<const void> GetOrCreateErased(
      std::string_view kind, std::uint64_t content_hash,
      std::string_view content,
      const std::function<std::shared_ptr<const void>()>& factory);

  Stats stats() const;

  std::size_t capacity() const { return capacity_; }

 private:
  struct Key {
    std::string kind;
    std::uint64_t hash = 0;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const {
      return std::hash<std::string>()(key.kind) ^ key.hash;
    }
  };
  struct Entry {
    Key key;
    // The exact bytes the artifact was built from; hits verify against
    // it so a hash collision can never serve another payload's value.
    std::string content;
    std::shared_ptr<const void> value;
  };

  std::size_t capacity_;
  obs::MetricsRegistry* metrics_;
  mutable std::mutex mutex_;
  // Most-recently-used at the front; map values point into the list.
  std::list<Entry> lru_;
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index_;
  Stats stats_;
};

}  // namespace rstlab::serve

#endif  // RSTLAB_SERVE_ARTIFACT_CACHE_H_
