#include "serve/service.h"

#include <chrono>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "fingerprint/fingerprint.h"
#include "fingerprint/prime.h"
#include "fingerprint/prime_pool.h"
#include "parallel/bench_recorder.h"
#include "parallel/seed_sequence.h"
#include "parallel/trial_runner.h"
#include "problems/disjoint_sets.h"
#include "problems/generators.h"
#include "problems/instance.h"
#include "query/xml.h"
#include "query/xpath.h"
#include "serve/json.h"
#include "sorting/deciders.h"
#include "stmodel/st_context.h"

namespace rstlab::serve {

namespace {

using parallel::Checksum64;

/// Everything the Theorem 8(a) tester needs that depends only on
/// (m, n): the parameter k, the fixed Bertrand prime p2 and the sieved
/// pool of candidate p1 primes. One artifact per (m, n), shared by
/// every request and every trial.
struct FingerprintSetup {
  std::uint64_t k = 0;
  std::uint64_t p2 = 0;
  std::unique_ptr<fingerprint::PrimePool> pool;
};

/// Generates the instance a GeneratorSpec describes (pure function of
/// the spec).
problems::Instance GenerateInstance(const GeneratorSpec& spec) {
  Rng rng(spec.seed);
  const std::size_t m = static_cast<std::size_t>(spec.m);
  const std::size_t n = static_cast<std::size_t>(spec.n);
  if (spec.kind == "equal") return problems::EqualMultisets(m, n, rng);
  if (spec.kind == "perturbed") {
    return problems::PerturbedMultisets(m, n, 1, rng);
  }
  if (spec.kind == "sorted") return problems::SortedPair(m, n, rng);
  if (spec.kind == "misordered") {
    return problems::MisorderedPair(m, n, rng);
  }
  return problems::DisjointSets(m, n, rng);  // kinds validated at parse
}

void EmitTrialPair(NdjsonTraceSink* events, bool stream,
                   std::uint64_t trial, bool end_only = false) {
  if (events == nullptr || !stream) return;
  if (!end_only) {
    events->OnEvent(
        obs::MakeTrialEvent(obs::EventKind::kTrialBegin, trial));
  }
  events->OnEvent(obs::MakeTrialEvent(obs::EventKind::kTrialEnd, trial));
}

}  // namespace

std::string ExperimentResult::ToJson() const {
  JsonWriter writer;
  writer.Field("event", "result")
      .Field("request_id", request_id)
      .Field("problem", problem)
      .Field("trials", executed_trials)
      .Field("accepts", accepts)
      .Field("checksum", checksum)
      .Field("extra", extra);
  if (report.has_value()) {
    writer.Field("r", report->scan_bound)
        .Field("s", static_cast<std::uint64_t>(report->internal_space))
        .Field("t",
               static_cast<std::uint64_t>(report->num_external_tapes))
        .Field("ext",
               static_cast<std::uint64_t>(report->external_space));
  }
  writer.Field("budget_ok", budget_ok);
  return writer.Build();
}

ExperimentService::ExperimentService(ArtifactCache& cache)
    : cache_(cache) {}

Result<ExperimentResult> ExperimentService::Execute(
    const ExperimentRequest& request, NdjsonTraceSink* events) {
  ExperimentResult result;
  result.request_id = request.request_id;
  result.problem = request.problem;

  // --- test-sleep: a worker-occupancy diagnostic, no instance. ---
  if (request.problem == "test-sleep") {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(request.sleep_ms));
    result.executed_trials = 1;
    result.checksum = Checksum64({request.sleep_ms});
    EmitTrialPair(events, request.stream, 0);
    return result;
  }

  // --- xpath-count: parsed query and document are cached artifacts. ---
  if (request.problem == "xpath-count") {
    std::shared_ptr<const query::XPathPath> path =
        cache_.GetOrCreate<query::XPathPath>(
            "xpath", request.xpath_query,
            [&]() -> std::shared_ptr<const query::XPathPath> {
              Result<query::XPathPath> parsed =
                  query::ParseXPath(request.xpath_query);
              if (!parsed.ok()) return nullptr;
              return std::make_shared<query::XPathPath>(
                  std::move(parsed).value());
            });
    if (path == nullptr) {
      // Re-parse outside the cache to surface the named error.
      Result<query::XPathPath> parsed =
          query::ParseXPath(request.xpath_query);
      return parsed.ok() ? Status::Internal("xpath cache miss")
                         : parsed.status();
    }
    std::shared_ptr<const query::XmlNode> document =
        cache_.GetOrCreate<query::XmlNode>(
            "xml", request.xml_text,
            [&]() -> std::shared_ptr<const query::XmlNode> {
              Result<query::XmlDocument> parsed =
                  query::ParseXml(request.xml_text);
              if (!parsed.ok()) return nullptr;
              return std::shared_ptr<const query::XmlNode>(
                  std::move(parsed).value().release());
            });
    if (document == nullptr) {
      Result<query::XmlDocument> parsed =
          query::ParseXml(request.xml_text);
      return parsed.ok() ? Status::Internal("xml cache miss")
                         : parsed.status();
    }
    const std::vector<const query::XmlNode*> selected =
        query::EvalPath(*document, *path);
    result.executed_trials = 1;
    result.extra = selected.size();
    result.checksum = Checksum64(
        {result.extra, HashContent(request.xpath_query)});
    EmitTrialPair(events, request.stream, 0);
    return result;
  }

  // --- Instance problems: resolve the (cached) parsed instance. ---
  std::string encoded;
  std::shared_ptr<const problems::Instance> instance;
  if (request.instance.has_value()) {
    encoded = *request.instance;
    instance = cache_.GetOrCreate<problems::Instance>(
        "instance", encoded,
        [&]() -> std::shared_ptr<const problems::Instance> {
          Result<problems::Instance> parsed =
              problems::Instance::Parse(encoded);
          if (!parsed.ok()) return nullptr;
          return std::make_shared<problems::Instance>(
              std::move(parsed).value());
        });
    if (instance == nullptr) {
      Result<problems::Instance> parsed =
          problems::Instance::Parse(encoded);
      return parsed.ok() ? Status::Internal("instance cache miss")
                         : parsed.status();
    }
  } else {
    instance = cache_.GetOrCreate<problems::Instance>(
        "generated", request.generator->CacheKey(),
        [&]() -> std::shared_ptr<const problems::Instance> {
          return std::make_shared<problems::Instance>(
              GenerateInstance(*request.generator));
        });
    encoded = instance->Encode();
  }
  if (instance->m() == 0) {
    return Status::InvalidArgument("instance has no values");
  }

  // --- Deterministic tape deciders: one metered run is the answer. ---
  if (request.problem == "set-equality" ||
      request.problem == "multiset-equality" ||
      request.problem == "check-sort" || request.problem == "disjoint") {
    stmodel::StContext ctx(sorting::kDeciderTapes);
    ctx.LoadInput(encoded);
    Result<bool> verdict = false;
    if (request.problem == "disjoint") {
      verdict = sorting::DecideDisjointOnTapes(ctx);
    } else {
      const problems::Problem problem =
          request.problem == "set-equality"
              ? problems::Problem::kSetEquality
              : request.problem == "multiset-equality"
                    ? problems::Problem::kMultisetEquality
                    : problems::Problem::kCheckSort;
      verdict = sorting::DecideOnTapes(problem, ctx);
    }
    if (!verdict.ok()) return verdict.status();
    const tape::ResourceReport report = ctx.Report();
    result.executed_trials = 1;
    result.accepts = verdict.value() ? 1 : 0;
    result.report = report;
    result.checksum =
        Checksum64({result.accepts, report.scan_bound,
                    static_cast<std::uint64_t>(report.internal_space)});
    if (request.budget.has_value()) {
      result.budget_ok = tape::Complies(
          report,
          tape::StBounds{
              request.budget->max_scans,
              static_cast<std::size_t>(request.budget->max_internal),
              static_cast<std::size_t>(request.budget->max_tapes)});
    }
    EmitTrialPair(events, request.stream, 0);
    return result;
  }

  // --- claim1: the parallel-engine estimator on a 1-thread runner
  // (the scheduler provides cross-request parallelism; within one
  // request the 1-thread tally equals the N-thread tally by the
  // TrialRunner contract anyway). ---
  if (request.problem == "claim1") {
    thread_local parallel::TrialRunner runner(1);
    if (events != nullptr && request.stream) {
      runner.set_trace(events);
    }
    const fingerprint::Claim1Estimate estimate =
        fingerprint::EstimateClaim1CollisionRate(
            *instance, static_cast<std::size_t>(request.trials),
            request.seed, runner);
    runner.set_trace(nullptr);
    result.executed_trials = estimate.trials;
    result.extra = estimate.collisions;
    result.checksum = Checksum64({estimate.trials, estimate.collisions});
    return result;
  }

  // --- fingerprint: the Theorem 8(a) randomized tester, one trial per
  // seed-derived parameter draw, prime pool shared via the cache. ---
  const std::size_t m = instance->m();
  const std::size_t n = fingerprint::MaxValueBits(*instance);
  Result<std::uint64_t> k = fingerprint::ComputeFingerprintK(m, n);
  if (!k.ok()) return k.status();
  const std::string setup_key =
      std::to_string(m) + ":" + std::to_string(n);
  std::shared_ptr<const FingerprintSetup> setup =
      cache_.GetOrCreate<FingerprintSetup>(
          "fingerprint-setup", setup_key,
          [&]() -> std::shared_ptr<const FingerprintSetup> {
            Result<std::uint64_t> p2 =
                fingerprint::PrimeInBertrandInterval(k.value());
            if (!p2.ok()) return nullptr;
            auto built = std::make_shared<FingerprintSetup>();
            built->k = k.value();
            built->p2 = p2.value();
            built->pool =
                std::make_unique<fingerprint::PrimePool>(k.value());
            return built;
          });
  if (setup == nullptr) {
    Result<std::uint64_t> p2 =
        fingerprint::PrimeInBertrandInterval(k.value());
    return p2.ok() ? Status::Internal("fingerprint setup cache miss")
                   : p2.status();
  }

  const parallel::SeedSequence seeds(request.seed);
  std::uint64_t accepts = 0;
  std::uint64_t checksum = 0;
  for (std::uint64_t trial = 0; trial < request.trials; ++trial) {
    if (events != nullptr && request.stream) {
      events->OnEvent(
          obs::MakeTrialEvent(obs::EventKind::kTrialBegin, trial));
    }
    Rng rng = seeds.RngForTrial(trial);
    Result<std::uint64_t> p1 = setup->pool->Sample(rng);
    if (!p1.ok()) return p1.status();
    fingerprint::FingerprintParams params;
    params.k = setup->k;
    params.p1 = p1.value();
    params.p2 = setup->p2;
    params.x = rng.UniformInRange(1, setup->p2 - 1);
    const bool accepted = fingerprint::AcceptsWithParams(*instance, params);
    accepts += accepted ? 1 : 0;
    checksum = Checksum64(
        {checksum, params.p1, params.x, accepted ? 1ULL : 0ULL});
    EmitTrialPair(events, request.stream, trial, /*end_only=*/true);
  }
  result.executed_trials = request.trials;
  result.accepts = accepts;
  result.checksum = checksum;

  // The metered tape replay: one (2, O(log N), 1)-bounded run bills the
  // (r, s, t) the budget is judged against. Parameters are drawn from a
  // dedicated stream past the trial range, so the tally above is
  // untouched.
  if (request.budget.has_value()) {
    stmodel::StContext ctx(1);
    ctx.LoadInput(encoded);
    Rng meter_rng(seeds.SeedForTrial(request.trials));
    Result<fingerprint::FingerprintOutcome> metered =
        fingerprint::TestMultisetEqualityOnTapes(ctx, meter_rng);
    if (!metered.ok()) return metered.status();
    const tape::ResourceReport report = ctx.Report();
    result.report = report;
    result.budget_ok = tape::Complies(
        report,
        tape::StBounds{
            request.budget->max_scans,
            static_cast<std::size_t>(request.budget->max_internal),
            static_cast<std::size_t>(request.budget->max_tapes)});
  }
  return result;
}

}  // namespace rstlab::serve
