#include "serve/trace_bridge.h"

#include <string>
#include <utility>

#include "serve/json.h"

namespace rstlab::serve {

NdjsonTraceSink::NdjsonTraceSink(NdjsonWriter writer)
    : writer_(std::move(writer)) {}

void NdjsonTraceSink::OnEvent(const obs::TraceEvent& event) {
  const char* name = nullptr;
  switch (event.kind) {
    case obs::EventKind::kTrialBegin: name = "trial_begin"; break;
    case obs::EventKind::kTrialEnd: name = "trial_end"; break;
    default: return;  // tape-level events stay server-side
  }
  const std::string line =
      JsonWriter().Field("event", name).Field("trial", event.trial).Build();
  std::lock_guard<std::mutex> lock(mutex_);
  ++frames_;
  writer_(line);
}

std::uint64_t NdjsonTraceSink::frames() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return frames_;
}

}  // namespace rstlab::serve
