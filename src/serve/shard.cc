#include "serve/shard.h"

#include <string>

#include "serve/artifact_cache.h"

namespace rstlab::serve {

namespace {

/// Finalizing mixer (murmur3 fmix64) over the content hash. FNV-1a on
/// short strings barely stirs the high bits, and the ring is ordered by
/// the full 64-bit value — unmixed, the virtual-node points cluster so
/// badly that a shard can own an empty arc. The mixer restores uniform
/// arc lengths, which the spread and bounded-remap properties need.
std::uint64_t RingPoint(std::string_view content) {
  std::uint64_t h = HashContent(content);
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

}  // namespace

ShardRouter::ShardRouter(std::size_t shards)
    : shards_(shards == 0 ? 1 : shards) {
  for (std::size_t shard = 0; shard < shards_; ++shard) {
    for (std::size_t v = 0; v < kVirtualNodes; ++v) {
      const std::string point =
          "shard:" + std::to_string(shard) + ":" + std::to_string(v);
      ring_.emplace(RingPoint(point), shard);
    }
  }
}

std::size_t ShardRouter::Route(std::string_view request_id) const {
  const std::uint64_t hash = RingPoint(request_id);
  auto it = ring_.lower_bound(hash);
  if (it == ring_.end()) it = ring_.begin();  // wrap around
  return it->second;
}

}  // namespace rstlab::serve
