#ifndef RSTLAB_CONFORM_CASE_ID_H_
#define RSTLAB_CONFORM_CASE_ID_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace rstlab::conform {

/// The replayable identity of one conformance case: which suite ran it
/// and the `(seed, index)` pair its randomness was derived from. Every
/// failure the harness reports carries one of these, rendered as
/// `suite:seed:index`, and `rstlab conform --replay=TRIPLE` (or a
/// checked-in `tests/corpus/*.case` line) re-executes exactly that
/// case — the generators draw from an Rng fully determined by the
/// triple, so replay is bit-exact across machines and thread counts.
struct CaseId {
  std::string suite;
  std::uint64_t seed = 0;
  std::uint64_t index = 0;

  /// Renders the canonical `suite:seed:index` form.
  std::string ToString() const;

  /// Parses the canonical form. Fails on anything else — a missing
  /// field, a non-numeric seed/index, or trailing garbage.
  static Result<CaseId> Parse(const std::string& text);

  bool operator==(const CaseId& other) const = default;
};

/// The 64-bit Rng seed of a case: the SeedSequence-derived per-index
/// stream of `seed`, decorrelated across suites by folding an FNV-1a
/// hash of the suite name into the sequence seed. Two suites replaying
/// the same `(seed, index)` therefore see independent randomness.
std::uint64_t CaseRngSeed(const CaseId& id);

}  // namespace rstlab::conform

#endif  // RSTLAB_CONFORM_CASE_ID_H_
