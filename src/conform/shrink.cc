#include "conform/shrink.h"

namespace rstlab::conform {

std::vector<std::pair<std::size_t, std::size_t>> RemovalSpans(
    std::size_t n) {
  std::vector<std::pair<std::size_t, std::size_t>> spans;
  if (n == 0) return spans;
  // Halving chunk sizes: n/2, n/4, ..., 1. Single elements appear
  // exactly once (the final pass), so the candidate count is O(n log n).
  for (std::size_t chunk = n - n / 2; chunk >= 1; chunk /= 2) {
    for (std::size_t begin = 0; begin < n; begin += chunk) {
      spans.emplace_back(begin, std::min(chunk, n - begin));
    }
    if (chunk == 1) break;
  }
  return spans;
}

}  // namespace rstlab::conform
