#ifndef RSTLAB_CONFORM_SHRINK_H_
#define RSTLAB_CONFORM_SHRINK_H_

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace rstlab::conform {

/// Bookkeeping of one shrink descent, surfaced in failure reports so a
/// reader can tell a one-step minimization from a long search.
struct ShrinkStats {
  std::size_t attempts = 0;      // candidate re-executions
  std::size_t improvements = 0;  // candidates that still failed
};

/// Greedy delta debugging: starting from a failing value, repeatedly
/// replace it with the first candidate (in the order `candidates`
/// yields them — callers put the most aggressive reductions first) that
/// still fails, until no candidate fails or `max_attempts` checks have
/// run. The result is 1-minimal with respect to the candidate moves
/// whenever the budget is not exhausted.
///
/// `still_fails` must be a pure function of its argument — the suites
/// guarantee this by re-running the full differential check, which only
/// reads the candidate and freshly constructed subjects.
template <typename T>
T GreedyShrink(T failing,
               const std::function<bool(const T&)>& still_fails,
               const std::function<std::vector<T>(const T&)>& candidates,
               std::size_t max_attempts, ShrinkStats* stats = nullptr) {
  ShrinkStats local;
  ShrinkStats& s = stats != nullptr ? *stats : local;
  bool improved = true;
  while (improved && s.attempts < max_attempts) {
    improved = false;
    for (T& candidate : candidates(failing)) {
      if (s.attempts >= max_attempts) break;
      ++s.attempts;
      if (still_fails(candidate)) {
        failing = std::move(candidate);
        ++s.improvements;
        improved = true;
        break;  // restart from the smaller failing value
      }
    }
  }
  return failing;
}

/// The spans ddmin removes from a length-`n` sequence, most aggressive
/// first: halves, then quarters, ... down to single elements. Each span
/// is a `(begin, length)` pair with length >= 1.
std::vector<std::pair<std::size_t, std::size_t>> RemovalSpans(
    std::size_t n);

/// Sequence-removal candidates for vector-shaped instances: `sequence`
/// with each `RemovalSpans` span deleted. Combined with `GreedyShrink`
/// this is the classic ddmin descent.
template <typename T>
std::vector<std::vector<T>> SequenceRemovalCandidates(
    const std::vector<T>& sequence) {
  std::vector<std::vector<T>> out;
  for (const auto& [begin, length] : RemovalSpans(sequence.size())) {
    std::vector<T> candidate;
    candidate.reserve(sequence.size() - length);
    candidate.insert(candidate.end(), sequence.begin(),
                     sequence.begin() + static_cast<std::ptrdiff_t>(begin));
    candidate.insert(candidate.end(),
                     sequence.begin() +
                         static_cast<std::ptrdiff_t>(begin + length),
                     sequence.end());
    out.push_back(std::move(candidate));
  }
  return out;
}

}  // namespace rstlab::conform

#endif  // RSTLAB_CONFORM_SHRINK_H_
