#include "conform/case_id.h"

#include <cstdlib>

#include "parallel/seed_sequence.h"

namespace rstlab::conform {

namespace {

/// FNV-1a over the suite name; the folding constant that keeps suites'
/// Rng streams decorrelated at equal (seed, index).
std::uint64_t Fnv1a64(const std::string& text) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

/// Parses a full decimal u64; false on empty or non-digit input.
bool ParseU64(const std::string& text, std::uint64_t* out) {
  if (text.empty()) return false;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = value;
  return true;
}

}  // namespace

std::string CaseId::ToString() const {
  return suite + ":" + std::to_string(seed) + ":" + std::to_string(index);
}

Result<CaseId> CaseId::Parse(const std::string& text) {
  const std::size_t first = text.find(':');
  const std::size_t second =
      first == std::string::npos ? std::string::npos
                                 : text.find(':', first + 1);
  if (first == std::string::npos || second == std::string::npos ||
      first == 0) {
    return Status::InvalidArgument("replay triple must be suite:seed:index, got \"" +
                                   text + "\"");
  }
  CaseId id;
  id.suite = text.substr(0, first);
  if (!ParseU64(text.substr(first + 1, second - first - 1), &id.seed) ||
      !ParseU64(text.substr(second + 1), &id.index)) {
    return Status::InvalidArgument(
        "replay triple has non-numeric seed/index: \"" + text + "\"");
  }
  return id;
}

std::uint64_t CaseRngSeed(const CaseId& id) {
  const parallel::SeedSequence sequence(id.seed ^ Fnv1a64(id.suite));
  return sequence.SeedForTrial(id.index);
}

}  // namespace rstlab::conform
