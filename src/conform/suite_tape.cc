// The tape-backend oracle: a reference model of Definition 1 head
// semantics checked against `tape::Tape` on the in-memory and the file
// storage backend, op by op. The model is deliberately tiny (a string,
// a head, a direction and a counter) so that when the real tape and the
// model disagree, the model is the one a reviewer can verify by eye
// against the paper.

#include <algorithm>
#include <filesystem>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "conform/case_id.h"
#include "conform/gen.h"
#include "conform/shrink.h"
#include "conform/suites.h"
#include "extmem/storage.h"
#include "tape/tape.h"
#include "util/random.h"

namespace rstlab::conform {

namespace {

/// Reference semantics: one-sided tape, head starts at cell 0 moving
/// right, a reversal is a direction change of the *actual* trajectory —
/// a left move blocked at cell 0 is a no-op and charges nothing.
struct ModelTape {
  std::string cells;
  std::size_t head = 0;
  int direction = +1;
  std::uint64_t reversals = 0;
  std::size_t used = 0;

  explicit ModelTape(std::string content)
      : cells(std::move(content)), used(cells.size()) {}

  char Read() const {
    return head < cells.size() ? cells[head] : tape::kBlank;
  }
  void Write(char symbol) {
    if (head >= cells.size()) cells.resize(head + 1, tape::kBlank);
    cells[head] = symbol;
    used = std::max(used, head + 1);
  }
  void Turn(int d) {
    if (d != direction) {
      ++reversals;
      direction = d;
    }
  }
  void MoveRight() {
    Turn(+1);
    ++head;
    used = std::max(used, head + 1);
  }
  void MoveLeft() {
    if (head == 0) {
      // Blocked moves are free (PR 2 fix). Under self-test fault
      // injection the model charges the pre-fix phantom reversal, so
      // the oracle must rediscover that very bug and shrink it.
      if (FaultInjectionEnabled()) Turn(-1);
      return;
    }
    Turn(-1);
    --head;
  }
  void Seek(std::size_t position) {
    while (head < position) MoveRight();
    while (head > position) MoveLeft();
  }
  void Reset(std::string content) {
    cells = std::move(content);
    used = cells.size();
    head = 0;
    direction = +1;
    reversals = 0;
  }
  /// Visited-but-unwritten cells read back as blanks, exactly like the
  /// storage layer materialises them.
  std::string Contents() const {
    std::string out = cells.substr(0, std::min(used, cells.size()));
    out.resize(used, tape::kBlank);
    return out;
  }
};

void ApplyToModel(ModelTape& model, const TapeOp& op) {
  switch (op.kind) {
    case TapeOp::Kind::kWrite:
      model.Write(op.symbol);
      break;
    case TapeOp::Kind::kMoveLeft:
      model.MoveLeft();
      break;
    case TapeOp::Kind::kMoveRight:
      model.MoveRight();
      break;
    case TapeOp::Kind::kSeek:
      model.Seek(op.target);
      break;
    case TapeOp::Kind::kReset:
      model.Reset(op.content);
      break;
  }
}

void ApplyToTape(tape::Tape& t, const TapeOp& op) {
  switch (op.kind) {
    case TapeOp::Kind::kWrite:
      t.Write(op.symbol);
      break;
    case TapeOp::Kind::kMoveLeft:
      t.MoveLeft();
      break;
    case TapeOp::Kind::kMoveRight:
      t.MoveRight();
      break;
    case TapeOp::Kind::kSeek:
      t.Seek(op.target);
      break;
    case TapeOp::Kind::kReset:
      t.Reset(op.content);
      break;
  }
}

/// A file-backed tape with tiny geometry (16-cell blocks, 4-block
/// cache) so short sequences already cross blocks and evict.
tape::Tape MakeFileTape() {
  extmem::StorageOptions options;
  options.backend = extmem::BackendKind::kFile;
  options.block_size = 16;
  options.cache_blocks = 4;
  options.readahead_blocks = 2;
  options.dir = (std::filesystem::temp_directory_path() /
                 "rstlab-conform-tapes").string();
  Result<std::unique_ptr<extmem::TapeStorage>> storage =
      extmem::CreateStorage(options);
  if (!storage.ok()) {
    // Fall back to memory (CreateStorage already warned); the mem-vs-
    // model half of the oracle still runs.
    return tape::Tape();
  }
  return tape::Tape(std::move(storage).value());
}

/// Replays `ops` on the model and both backends. Returns the first
/// disagreement ("" = conformant).
std::string CheckTapeOps(const std::vector<TapeOp>& ops) {
  ModelTape model{std::string()};
  tape::Tape mem;
  tape::Tape file = MakeFileTape();

  const auto mismatch = [](std::size_t step, const TapeOp& op,
                           const std::string& what, auto model_value,
                           auto mem_value, auto file_value) {
    return "step " + std::to_string(step) + " (" + op.ToString() +
           "): " + what + ": model=" + std::to_string(model_value) +
           " mem=" + std::to_string(mem_value) +
           " file=" + std::to_string(file_value);
  };

  for (std::size_t step = 0; step < ops.size(); ++step) {
    const TapeOp& op = ops[step];
    ApplyToModel(model, op);
    ApplyToTape(mem, op);
    ApplyToTape(file, op);

    if (model.Read() != mem.Read() || model.Read() != file.Read()) {
      return mismatch(step, op, "symbol under head", model.Read(),
                      mem.Read(), file.Read());
    }
    if (model.head != mem.head() || model.head != file.head()) {
      return mismatch(step, op, "head", model.head, mem.head(),
                      file.head());
    }
    const int mem_dir = static_cast<int>(mem.direction());
    const int file_dir = static_cast<int>(file.direction());
    if (model.direction != mem_dir || model.direction != file_dir) {
      return mismatch(step, op, "direction", model.direction, mem_dir,
                      file_dir);
    }
    if (model.reversals != mem.reversals() ||
        model.reversals != file.reversals()) {
      return mismatch(step, op, "reversals", model.reversals,
                      mem.reversals(), file.reversals());
    }
    if (model.used != mem.cells_used() ||
        model.used != file.cells_used()) {
      return mismatch(step, op, "cells used", model.used,
                      mem.cells_used(), file.cells_used());
    }
  }
  if (model.Contents() != mem.contents() ||
      model.Contents() != file.contents()) {
    return "final contents: model=\"" + model.Contents() + "\" mem=\"" +
           mem.contents() + "\" file=\"" + file.contents() + "\"";
  }
  return "";
}

/// Per-op simplifications tried after sequence removal: shrink seek
/// targets and reset contents toward zero.
std::vector<std::vector<TapeOp>> SimplifyOpCandidates(
    const std::vector<TapeOp>& ops) {
  std::vector<std::vector<TapeOp>> out;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const TapeOp& op = ops[i];
    if (op.kind == TapeOp::Kind::kSeek && op.target > 0) {
      std::vector<TapeOp> candidate = ops;
      candidate[i].target = op.target / 2;
      out.push_back(std::move(candidate));
    }
    if (op.kind == TapeOp::Kind::kReset && !op.content.empty()) {
      std::vector<TapeOp> candidate = ops;
      candidate[i].content.resize(op.content.size() / 2);
      out.push_back(std::move(candidate));
    }
  }
  return out;
}

class TapeBackendSuite final : public Suite {
 public:
  const char* name() const override { return "tape-backend"; }
  const char* description() const override {
    return "reference head model vs tape::Tape on mem and file storage";
  }

  CaseOutcome RunCase(std::uint64_t seed,
                      std::uint64_t index) const override {
    Rng rng(CaseRngSeed(CaseId{name(), seed, index}));
    const std::size_t size = 4 + index % 24;  // growing op budgets
    std::vector<TapeOp> ops = GenTapeOps()(rng, size);

    CaseOutcome outcome;
    std::string failure = CheckTapeOps(ops);
    if (failure.empty()) return outcome;

    const std::function<bool(const std::vector<TapeOp>&)> still_fails =
        [](const std::vector<TapeOp>& candidate) {
          return !CheckTapeOps(candidate).empty();
        };
    const std::function<std::vector<std::vector<TapeOp>>(
        const std::vector<TapeOp>&)>
        candidates = [](const std::vector<TapeOp>& current) {
          std::vector<std::vector<TapeOp>> all =
              SequenceRemovalCandidates(current);
          for (auto& simplified : SimplifyOpCandidates(current)) {
            all.push_back(std::move(simplified));
          }
          return all;
        };
    ShrinkStats stats;
    ops = GreedyShrink(std::move(ops), still_fails, candidates,
                       /*max_attempts=*/2000, &stats);

    outcome.passed = false;
    outcome.failure = CheckTapeOps(ops);
    outcome.counterexample =
        TapeOpsToString(ops) + "  (" + std::to_string(ops.size()) +
        " ops, " + std::to_string(TapeOpsCellSpan(ops)) + " cells)";
    outcome.shrink_attempts = stats.attempts;
    return outcome;
  }
};

}  // namespace

std::unique_ptr<Suite> MakeTapeBackendSuite() {
  return std::make_unique<TapeBackendSuite>();
}

}  // namespace rstlab::conform
