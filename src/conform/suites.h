#ifndef RSTLAB_CONFORM_SUITES_H_
#define RSTLAB_CONFORM_SUITES_H_

#include <memory>

#include "conform/oracle.h"

namespace rstlab::conform {

/// Factories for the shipped differential oracles. `AllSuites()` owns
/// one instance of each; the factories exist so tests can construct a
/// suite in isolation.

/// Model vs mem-Tape vs file-Tape: random op sequences replayed on a
/// 20-line reference head/reversal model (Definition 1 semantics) and
/// on `tape::Tape` over both storage backends; every observable —
/// symbol under head, head position, direction, rev(rho), cells used —
/// must agree after every op, and final contents must match.
std::unique_ptr<Suite> MakeTapeBackendSuite();

/// 1-thread vs N-thread `TrialRunner`: the merged tally (including a
/// non-associative double sum) must be bit-identical for any thread
/// count at fixed chunking.
std::unique_ptr<Suite> MakeTrialTallySuite();

/// TM vs NLM (Lemma 16): for random machines, inputs and choice
/// sequences, the simulated list machine must agree with the Turing
/// machine on halting, acceptance and per-tape reversal counts.
std::unique_ptr<Suite> MakeTmNlmSuite();

/// Static certificate vs measured run (RST015): `check::Analyze`'s
/// per-tape reversal and internal-cell bounds must dominate the
/// measured `RunCosts` of every random run, over the shipped machine
/// registry and freshly generated random machines.
std::unique_ptr<Suite> MakeCertificateSuite();

/// Symbolic certificate vs measured run at the run's own N
/// (check-symbolic): over seeded instances whose sizes sweep powers of
/// two, the measured (r, s) of registry machines and of the k-way sort
/// must stay inside the `BoundExpr` envelope evaluated at that N, and
/// `BoundExpr::Eval` must be monotone across the static sweep
/// 2^8 .. 2^24.
std::unique_ptr<Suite> MakeSymbolicCheckSuite();

/// Reference deciders vs `sorting/deciders` on SET-EQUALITY,
/// MULTISET-EQUALITY and CHECK-SORT, on both storage backends; the two
/// tape runs must also bill identical (r, s) costs.
std::unique_ptr<Suite> MakeDeciderSuite();

/// 1-thread vs N-thread vs file-backend parallel k-way sort: the sorted
/// tape and the measured (r, s) bill must be bit-identical at every
/// thread count and on both backends, and a sort failed mid-flight must
/// leave no spill files in the tape directory.
std::unique_ptr<Suite> MakeSortSuite();

/// 1-process vs N-shard `rstlab serve` deployment: a mixed request
/// workload routed through `ShardRouter` over loopback must answer
/// byte-identical result frames in both deployments — every response
/// is a pure function of its request payload.
std::unique_ptr<Suite> MakeServeShardSuite();

/// Streaming query engine vs in-memory reference evaluator: every plan
/// of the depth family must return the same relation on mem and file
/// backends at 1 and N threads with bit-identical per-query (r, s)
/// bills, and a finished shared scan must leave no resident cache
/// blocks or live file storages.
std::unique_ptr<Suite> MakeQueryEngineSuite();

/// XML serializer vs parser: serialize-parse-serialize must be the
/// identity on generated documents (the encoding side of the
/// Theorem 12/13 pipelines).
std::unique_ptr<Suite> MakeXmlRoundTripSuite();

/// Scalar vs SIMD fingerprint batches: `BatchFingerprintEngine` sums
/// and verdicts must be bit-identical at every lane width (scalar /
/// lanes4 / lanes8), the batched Claim 1 estimator must be
/// thread-count invariant, and the hardened tape tester must accept
/// exactly the non-empty `Instance::Parse`-able encodings.
std::unique_ptr<Suite> MakeFingerprintBatchSuite();

}  // namespace rstlab::conform

#endif  // RSTLAB_CONFORM_SUITES_H_
