#ifndef RSTLAB_CONFORM_ORACLE_H_
#define RSTLAB_CONFORM_ORACLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "conform/case_id.h"

namespace rstlab::conform {

/// The result of one conformance case. When a differential check
/// disagrees, the suite shrinks the instance before reporting, so
/// `counterexample` is already minimal with respect to the suite's
/// shrink moves and `failure` describes the disagreement *on the shrunk
/// instance* — the report a human debugs from, not the raw random blob.
struct CaseOutcome {
  bool passed = true;
  /// First observable disagreement, e.g.
  /// "reversals: model=0 mem=1" (empty when passed).
  std::string failure;
  /// Minimal failing instance, rendered by the suite.
  std::string counterexample;
  /// Shrink descent cost (candidate re-executions).
  std::size_t shrink_attempts = 0;
};

/// One differential oracle: a named family of cases, each a pure
/// function of its replay triple. Implementations generate an instance
/// from the triple's Rng, execute every implementation pair that must
/// agree, and on disagreement delta-debug the instance to a minimal
/// counterexample.
class Suite {
 public:
  virtual ~Suite() = default;

  /// Stable suite name — the first field of the replay triple.
  virtual const char* name() const = 0;

  /// One line for `rstlab conform` listings.
  virtual const char* description() const = 0;

  /// Runs case `(seed, index)`. Deterministic: two calls with equal
  /// arguments return byte-identical outcomes on any machine.
  virtual CaseOutcome RunCase(std::uint64_t seed,
                              std::uint64_t index) const = 0;
};

/// Self-test fault injection: when enabled, every suite deliberately
/// perturbs exactly one observed value per differential check (the
/// model charges a phantom reversal, the parallel tally flips a bit,
/// the reference decider negates its verdict, ...), so each oracle's
/// detection, shrinking and reporting machinery runs against a known
/// bug. A smoke detector is only trusted once it has seen smoke:
/// `conform_test` and `rstlab conform --selftest` assert that every
/// suite reports at least one shrunk, replayable failure under
/// injection. Process-global; never enabled outside self-tests.
void SetFaultInjection(bool enabled);
bool FaultInjectionEnabled();

/// The registry: every shipped oracle, in fixed report order. Pointers
/// are owned by the registry and live for the process.
const std::vector<const Suite*>& AllSuites();

/// The suite named `name`, or nullptr.
const Suite* FindSuite(const std::string& name);

}  // namespace rstlab::conform

#endif  // RSTLAB_CONFORM_ORACLE_H_
