// The XML round-trip oracle: `SerializeXml` and `ParseXml` must be a
// section/retraction pair on the document model — serialize-parse-
// serialize is the identity. The paper's Theorem 12/13 experiments
// funnel every instance through this encoding, so a disagreement here
// silently corrupts two experiment families.

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "conform/case_id.h"
#include "conform/gen.h"
#include "conform/shrink.h"
#include "conform/suites.h"
#include "query/xml.h"
#include "util/random.h"

namespace rstlab::conform {

namespace {

/// Deep copy (XmlDocument is move-only).
query::XmlDocument CloneXml(const query::XmlNode& node) {
  auto copy = std::make_unique<query::XmlNode>();
  copy->name = node.name;
  copy->text = node.text;
  for (const auto& child : node.children) {
    query::XmlDocument child_copy = CloneXml(*child);
    child_copy->parent = copy.get();
    copy->children.push_back(std::move(child_copy));
  }
  return copy;
}

/// "" when the document round-trips exactly.
std::string CheckXmlCase(const query::XmlNode& doc) {
  const std::string first = query::SerializeXml(doc);
  Result<query::XmlDocument> parsed = query::ParseXml(first);
  if (!parsed.ok()) {
    return "serialized document does not parse: " +
           parsed.status().ToString() + " text=" + first;
  }
  std::string second = query::SerializeXml(*parsed.value());
  // Self-test fault: one trailing byte of corruption in the second
  // serialization — the minimal broken retraction.
  if (FaultInjectionEnabled()) second.push_back('!');
  if (first != second) {
    return "round trip not identity: first=\"" + first + "\" second=\"" +
           second + "\"";
  }
  return "";
}

/// Enumerates clones of `root` with exactly one modification applied:
/// one child removed, or one nonempty text cleared. Paths are tracked
/// as index vectors so the clone can be edited in place.
std::vector<query::XmlDocument> XmlCandidates(const query::XmlNode& root) {
  std::vector<query::XmlDocument> out;
  std::vector<std::vector<std::size_t>> paths;
  const std::function<void(const query::XmlNode&,
                           std::vector<std::size_t>&)>
      walk = [&](const query::XmlNode& node,
                 std::vector<std::size_t>& path) {
        paths.push_back(path);
        for (std::size_t i = 0; i < node.children.size(); ++i) {
          path.push_back(i);
          walk(*node.children[i], path);
          path.pop_back();
        }
      };
  std::vector<std::size_t> path;
  walk(root, path);

  const auto node_at = [](query::XmlNode* node,
                          const std::vector<std::size_t>& p) {
    for (const std::size_t i : p) node = node->children[i].get();
    return node;
  };
  for (const std::vector<std::size_t>& p : paths) {
    const query::XmlNode* original = nullptr;
    {
      const query::XmlNode* cursor = &root;
      for (const std::size_t i : p) cursor = cursor->children[i].get();
      original = cursor;
    }
    for (std::size_t i = 0; i < original->children.size(); ++i) {
      query::XmlDocument candidate = CloneXml(root);
      query::XmlNode* target = node_at(candidate.get(), p);
      target->children.erase(target->children.begin() +
                             static_cast<std::ptrdiff_t>(i));
      out.push_back(std::move(candidate));
    }
    if (!original->text.empty()) {
      query::XmlDocument candidate = CloneXml(root);
      node_at(candidate.get(), p)->text.clear();
      out.push_back(std::move(candidate));
    }
  }
  return out;
}

class XmlRoundTripSuite final : public Suite {
 public:
  const char* name() const override { return "xml-roundtrip"; }
  const char* description() const override {
    return "SerializeXml / ParseXml round-trip identity on random "
           "documents";
  }

  CaseOutcome RunCase(std::uint64_t seed,
                      std::uint64_t index) const override {
    Rng rng(CaseRngSeed(CaseId{name(), seed, index}));
    query::XmlDocument doc = GenXmlDocument()(rng, 2 + index % 6);

    CaseOutcome outcome;
    std::string failure = CheckXmlCase(*doc);
    if (failure.empty()) return outcome;

    // Move-only instances don't fit GreedyShrink's value interface;
    // run the same greedy loop over clones.
    ShrinkStats stats;
    bool improved = true;
    while (improved && stats.attempts < 500) {
      improved = false;
      for (query::XmlDocument& candidate : XmlCandidates(*doc)) {
        if (stats.attempts >= 500) break;
        ++stats.attempts;
        if (!CheckXmlCase(*candidate).empty()) {
          doc = std::move(candidate);
          ++stats.improvements;
          improved = true;
          break;
        }
      }
    }

    outcome.passed = false;
    outcome.failure = CheckXmlCase(*doc);
    outcome.counterexample = query::SerializeXml(*doc);
    outcome.shrink_attempts = stats.attempts;
    return outcome;
  }
};

}  // namespace

std::unique_ptr<Suite> MakeXmlRoundTripSuite() {
  return std::make_unique<XmlRoundTripSuite>();
}

}  // namespace rstlab::conform
