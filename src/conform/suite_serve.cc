// The serve-shard oracle: one deployment of `rstlab serve` vs an
// N-shard deployment of the same binary must answer byte-identical
// result frames for every request. This is the serving layer's twin of
// the trial-tally contract: every experiment response is a pure
// function of its request payload (seeds derive from SeedSequence, no
// timestamps or server identity in the frame), so consistent-hash
// placement across N processes cannot change a single byte.
//
// Each case boots a 1-shard and an N-shard deployment on loopback
// ephemeral ports, routes a random mixed request workload through
// `ShardRouter`, and compares the two response vectors exactly.
// Failures shrink by dropping requests from the workload.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "conform/case_id.h"
#include "conform/shrink.h"
#include "conform/suites.h"
#include "serve/client.h"
#include "serve/json.h"
#include "serve/server.h"
#include "serve/shard.h"
#include "util/random.h"

namespace rstlab::conform {

namespace {

struct ServeRequest {
  std::string id;
  std::string body;
};

struct ServeCase {
  std::size_t shards = 2;
  std::vector<ServeRequest> requests;
};

/// One random but always-valid experiment request. The mix covers every
/// artifact-cache kind: generated instances, prime pools, parsed XML.
ServeRequest MakeRequest(std::uint64_t ordinal, Rng& rng) {
  static const char* kTenants[] = {"alice", "bob", "carol"};
  ServeRequest request;
  request.id = "case-" + std::to_string(ordinal) + "-" +
               std::to_string(rng.Next64() & 0xffff);
  serve::JsonWriter body;
  body.Field("request_id", request.id)
      .Field("tenant", kTenants[rng.UniformBelow(3)]);
  switch (rng.UniformBelow(5)) {
    case 0: {
      body.Field("problem", "fingerprint")
          .FieldRaw("generator",
                    serve::JsonWriter()
                        .Field("kind", "equal")
                        .Field("m", 8 + rng.UniformBelow(24))
                        .Field("n", std::uint64_t{12})
                        .Field("seed", rng.UniformBelow(64))
                        .Build())
          .Field("trials", 1 + rng.UniformBelow(8))
          .Field("seed", rng.Next64() & 0xffff);
      break;
    }
    case 1: {
      body.Field("problem", "multiset-equality")
          .FieldRaw("generator",
                    serve::JsonWriter()
                        .Field("kind", rng.UniformBelow(2) == 0
                                           ? "equal"
                                           : "perturbed")
                        .Field("m", 4 + rng.UniformBelow(12))
                        .Field("n", std::uint64_t{10})
                        .Field("seed", rng.UniformBelow(64))
                        .Build());
      break;
    }
    case 2: {
      body.Field("problem", "disjoint")
          .FieldRaw("generator",
                    serve::JsonWriter()
                        .Field("kind", "disjoint")
                        .Field("m", 4 + rng.UniformBelow(12))
                        .Field("n", std::uint64_t{10})
                        .Field("seed", rng.UniformBelow(64))
                        .Build());
      break;
    }
    case 3: {
      body.Field("problem", "claim1")
          .FieldRaw("generator",
                    serve::JsonWriter()
                        .Field("kind", "perturbed")
                        .Field("m", 4 + rng.UniformBelow(8))
                        .Field("n", std::uint64_t{8})
                        .Field("seed", rng.UniformBelow(64))
                        .Build())
          .Field("trials", 1 + rng.UniformBelow(16))
          .Field("seed", rng.Next64() & 0xffff);
      break;
    }
    default: {
      body.Field("problem", "xpath-count")
          .Field("query", rng.UniformBelow(2) == 0 ? "child::book"
                                                   : "descendant::title")
          .Field("xml",
                 "<lib><book><title>a</title></book>"
                 "<book><title>b</title></book></lib>");
      break;
    }
  }
  request.body = body.Build();
  return request;
}

/// Boots `shards` servers, routes every request through the
/// consistent-hash ring, returns one response body per request (or an
/// error note in its slot — identical notes still compare equal, so
/// only *divergence* between deployments fails a case).
std::vector<std::string> RunDeployment(std::size_t shards,
                                       const std::vector<ServeRequest>& mix) {
  std::vector<std::unique_ptr<serve::HttpServer>> servers;
  std::vector<serve::HttpClient> clients(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    serve::ServerOptions options;
    options.threads = 2;
    servers.push_back(std::make_unique<serve::HttpServer>(options));
    const Status started = servers.back()->Start();
    if (!started.ok()) {
      return {std::string("deployment failed to start: ") +
              started.ToString()};
    }
  }
  const serve::ShardRouter router(shards);
  std::vector<std::string> responses;
  responses.reserve(mix.size());
  for (const ServeRequest& request : mix) {
    const std::size_t shard = router.Route(request.id);
    serve::HttpClient& client = clients[shard];
    if (!client.connected()) {
      const Status connected = client.Connect(servers[shard]->port());
      if (!connected.ok()) {
        responses.push_back("connect failed: " + connected.ToString());
        continue;
      }
    }
    Result<serve::ClientResponse> response =
        client.Request("POST", "/v1/experiment", request.body);
    if (!response.ok()) {
      responses.push_back("request failed: " +
                          response.status().ToString());
      continue;
    }
    responses.push_back(std::to_string(response.value().status) + " " +
                        response.value().body);
  }
  clients.clear();
  for (auto& server : servers) server->Shutdown();
  return responses;
}

/// "" when the 1-shard and N-shard deployments agree byte for byte.
std::string CheckServeCase(const ServeCase& c) {
  const std::vector<std::string> single = RunDeployment(1, c.requests);
  std::vector<std::string> sharded = RunDeployment(c.shards, c.requests);
  // Self-test fault: one flipped response byte in the sharded
  // deployment — the smallest determinism leak the oracle must catch.
  if (FaultInjectionEnabled() && !sharded.empty() &&
      !sharded.front().empty()) {
    sharded.front().back() ^= 1;
  }
  if (single.size() != sharded.size()) {
    return "response count: 1-shard=" + std::to_string(single.size()) +
           " vs " + std::to_string(c.shards) +
           "-shard=" + std::to_string(sharded.size());
  }
  for (std::size_t i = 0; i < single.size(); ++i) {
    if (single[i] != sharded[i]) {
      return "request " + c.requests[i].id + ": 1-shard answered [" +
             single[i] + "] but " + std::to_string(c.shards) +
             "-shard answered [" + sharded[i] + "]";
    }
  }
  return "";
}

std::string RenderServeCase(const ServeCase& c) {
  std::string out = "shards=" + std::to_string(c.shards) + " requests=[";
  for (std::size_t i = 0; i < c.requests.size(); ++i) {
    if (i > 0) out += " | ";
    out += c.requests[i].body;
  }
  return out + "]";
}

class ServeShardSuite final : public Suite {
 public:
  const char* name() const override { return "serve-shard"; }
  const char* description() const override {
    return "1-process vs N-shard serve deployment response bit-identity";
  }

  CaseOutcome RunCase(std::uint64_t seed,
                      std::uint64_t index) const override {
    Rng rng(CaseRngSeed(CaseId{name(), seed, index}));
    ServeCase c;
    c.shards = static_cast<std::size_t>(rng.UniformInRange(2, 3));
    const std::uint64_t count = 2 + rng.UniformBelow(4);
    for (std::uint64_t i = 0; i < count; ++i) {
      c.requests.push_back(MakeRequest(index * 100 + i, rng));
    }

    CaseOutcome outcome;
    std::string failure = CheckServeCase(c);
    if (failure.empty()) return outcome;

    // Shrink by dropping requests: halve the workload, then drop one
    // request at a time. The shard count stays — it names the
    // deployment shape under test.
    const std::function<bool(const ServeCase&)> still_fails =
        [](const ServeCase& candidate) {
          return !CheckServeCase(candidate).empty();
        };
    const std::function<std::vector<ServeCase>(const ServeCase&)>
        candidates = [](const ServeCase& current) {
          std::vector<ServeCase> out;
          const std::size_t n = current.requests.size();
          if (n > 1) {
            ServeCase half = current;
            half.requests.assign(current.requests.begin(),
                                 current.requests.begin() + n / 2);
            out.push_back(std::move(half));
            for (std::size_t drop = 0; drop < n; ++drop) {
              ServeCase fewer = current;
              fewer.requests.erase(fewer.requests.begin() +
                                   static_cast<std::ptrdiff_t>(drop));
              out.push_back(std::move(fewer));
            }
          }
          return out;
        };
    ShrinkStats stats;
    const ServeCase shrunk = GreedyShrink(
        c, still_fails, candidates, /*max_attempts=*/40, &stats);

    outcome.passed = false;
    outcome.failure = CheckServeCase(shrunk);
    outcome.counterexample = RenderServeCase(shrunk);
    outcome.shrink_attempts = stats.attempts;
    return outcome;
  }
};

}  // namespace

std::unique_ptr<Suite> MakeServeShardSuite() {
  return std::make_unique<ServeShardSuite>();
}

}  // namespace rstlab::conform
