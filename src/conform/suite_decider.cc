// The decider oracle: Corollary 7's merge-sort deciders must compute
// the *same predicate* as the in-memory reference deciders — for all
// three problems, on every instance, on both storage backends — and
// the two backend runs must bill identical (r, s) costs, since the
// paper's cost model never looks at where cells live.

#include <filesystem>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "conform/case_id.h"
#include "conform/gen.h"
#include "conform/shrink.h"
#include "conform/suites.h"
#include "extmem/storage.h"
#include "problems/instance.h"
#include "problems/reference.h"
#include "sorting/deciders.h"
#include "stmodel/st_context.h"
#include "tape/resource_meter.h"
#include "util/random.h"

namespace rstlab::conform {

namespace {

const problems::Problem kProblems[] = {
    problems::Problem::kSetEquality,
    problems::Problem::kMultisetEquality,
    problems::Problem::kCheckSort,
};

extmem::StorageOptions FileOptions() {
  extmem::StorageOptions options;
  options.backend = extmem::BackendKind::kFile;
  options.block_size = 64;
  options.cache_blocks = 4;
  options.readahead_blocks = 2;
  options.dir = (std::filesystem::temp_directory_path() /
                 "rstlab-conform-tapes").string();
  return options;
}

/// One decider run; fills verdict and the metered report.
Result<bool> RunDecider(problems::Problem problem,
                        const std::string& encoded,
                        const extmem::StorageOptions& options,
                        tape::ResourceReport* report) {
  stmodel::StContext ctx(sorting::kDeciderTapes, options);
  ctx.LoadInput(encoded);
  Result<bool> verdict = sorting::DecideOnTapes(problem, ctx);
  if (verdict.ok()) *report = ctx.Report();
  return verdict;
}

/// "" when all deciders agree with the reference on `instance`.
std::string CheckDeciderCase(const problems::Instance& instance) {
  const std::string encoded = instance.Encode();
  for (const problems::Problem problem : kProblems) {
    // Self-test fault: negate the reference verdict — equivalent to a
    // decider that computes the complement predicate.
    const bool expected =
        problems::RefDecide(problem, instance) != FaultInjectionEnabled();

    tape::ResourceReport mem_report;
    Result<bool> mem_verdict = RunDecider(
        problem, encoded, extmem::StorageOptions{}, &mem_report);
    if (!mem_verdict.ok()) {
      return std::string(problems::ProblemName(problem)) +
             " mem decider failed: " + mem_verdict.status().ToString();
    }
    if (mem_verdict.value() != expected) {
      return std::string(problems::ProblemName(problem)) +
             ": reference=" + (expected ? "yes" : "no") +
             " tape(mem)=" + (mem_verdict.value() ? "yes" : "no");
    }

    tape::ResourceReport file_report;
    Result<bool> file_verdict =
        RunDecider(problem, encoded, FileOptions(), &file_report);
    if (!file_verdict.ok()) {
      return std::string(problems::ProblemName(problem)) +
             " file decider failed: " + file_verdict.status().ToString();
    }
    if (file_verdict.value() != expected) {
      return std::string(problems::ProblemName(problem)) +
             ": reference=" + (expected ? "yes" : "no") +
             " tape(file)=" + (file_verdict.value() ? "yes" : "no");
    }

    // Backend-independent metering: same scans, same reversals, same
    // internal bill.
    if (mem_report.scan_bound != file_report.scan_bound ||
        mem_report.reversals_per_tape != file_report.reversals_per_tape ||
        mem_report.internal_space != file_report.internal_space ||
        mem_report.external_space != file_report.external_space) {
      return std::string(problems::ProblemName(problem)) +
             ": cost bill differs across backends: mem=[" +
             mem_report.ToString() + "] file=[" + file_report.ToString() +
             "]";
    }
  }
  return "";
}

/// Shrink moves: drop a pair (from both lists, keeping the instance
/// well-formed), drop the last bit column, zero out one value.
std::vector<problems::Instance> DeciderCandidates(
    const problems::Instance& current) {
  std::vector<problems::Instance> out;
  for (std::size_t k = 0; k < current.m() && current.m() > 1; ++k) {
    problems::Instance smaller = current;
    smaller.first.erase(smaller.first.begin() +
                        static_cast<std::ptrdiff_t>(k));
    smaller.second.erase(smaller.second.begin() +
                         static_cast<std::ptrdiff_t>(k));
    out.push_back(std::move(smaller));
  }
  if (!current.first.empty() && current.first[0].size() > 1) {
    problems::Instance narrower = current;
    const std::size_t n = current.first[0].size() - 1;
    for (auto* list : {&narrower.first, &narrower.second}) {
      for (BitString& value : *list) {
        BitString truncated(n);
        for (std::size_t b = 0; b < n && b < value.size(); ++b) {
          truncated.set_bit(b, value.bit(b));
        }
        value = truncated;
      }
    }
    out.push_back(std::move(narrower));
  }
  for (std::size_t k = 0; k < current.m(); ++k) {
    if (current.second[k] == BitString(current.second[k].size())) continue;
    problems::Instance zeroed = current;
    zeroed.second[k] = BitString(current.second[k].size());
    out.push_back(std::move(zeroed));
  }
  return out;
}

class DeciderSuite final : public Suite {
 public:
  const char* name() const override { return "deciders"; }
  const char* description() const override {
    return "reference deciders vs merge-sort tape deciders on both "
           "backends";
  }

  CaseOutcome RunCase(std::uint64_t seed,
                      std::uint64_t index) const override {
    Rng rng(CaseRngSeed(CaseId{name(), seed, index}));
    problems::Instance instance = GenInstance()(rng, 4 + index % 12);

    CaseOutcome outcome;
    std::string failure = CheckDeciderCase(instance);
    if (failure.empty()) return outcome;

    const std::function<bool(const problems::Instance&)> still_fails =
        [](const problems::Instance& candidate) {
          return !CheckDeciderCase(candidate).empty();
        };
    const std::function<std::vector<problems::Instance>(
        const problems::Instance&)>
        candidates = &DeciderCandidates;
    ShrinkStats stats;
    instance = GreedyShrink(std::move(instance), still_fails, candidates,
                            /*max_attempts=*/400, &stats);

    outcome.passed = false;
    outcome.failure = CheckDeciderCase(instance);
    outcome.counterexample =
        instance.Encode() + "  (m=" + std::to_string(instance.m()) +
        ", N=" + std::to_string(instance.N()) + ")";
    outcome.shrink_attempts = stats.attempts;
    return outcome;
  }
};

}  // namespace

std::unique_ptr<Suite> MakeDeciderSuite() {
  return std::make_unique<DeciderSuite>();
}

}  // namespace rstlab::conform
