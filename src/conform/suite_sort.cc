// The parallel-sort oracle: the k-way external sort must produce the
// same sorted tape and bill the same (r, s) at every thread count and
// on both storage backends — the generalization of the 1-vs-N trial
// tally oracle to sorting. The suite also self-tests the spill-lane
// lifecycle: a sort that fails mid-flight must leave no files behind
// in the tape directory.

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "conform/case_id.h"
#include "conform/shrink.h"
#include "conform/suites.h"
#include "extmem/storage.h"
#include "sorting/parallel_sort.h"
#include "sorting/sort_config.h"
#include "stmodel/st_context.h"
#include "stmodel/tape_io.h"
#include "tape/resource_meter.h"
#include "util/bitstring.h"
#include "util/random.h"

namespace rstlab::conform {

namespace {

std::string JoinFields(const std::vector<std::string>& fields) {
  std::string out;
  for (const auto& f : fields) {
    out += f;
    out += '#';
  }
  return out;
}

std::vector<std::string> TapeFields(stmodel::StContext& ctx) {
  tape::Tape& t = ctx.tape(0);
  t.Seek(0);
  std::vector<std::string> fields;
  while (!stmodel::AtEnd(t)) fields.push_back(stmodel::ReadField(t));
  return fields;
}

extmem::StorageOptions FileOptions(const std::string& dir) {
  extmem::StorageOptions options;
  options.backend = extmem::BackendKind::kFile;
  options.block_size = 64;
  options.cache_blocks = 4;
  options.readahead_blocks = 2;
  options.dir = dir;
  return options;
}

std::size_t FilesIn(const std::filesystem::path& dir) {
  std::error_code ec;
  std::size_t count = 0;
  for (std::filesystem::directory_iterator it(dir, ec), end;
       !ec && it != end; it.increment(ec)) {
    ++count;
  }
  return count;
}

/// One sort run at the given geometry; fills output fields and report.
Status RunSort(const std::vector<std::string>& fields,
               const extmem::StorageOptions& options,
               const sorting::SortConfig& config,
               std::vector<std::string>* out,
               tape::ResourceReport* report) {
  stmodel::StContext ctx(1, options);
  ctx.LoadInput(JoinFields(fields));
  RSTLAB_RETURN_IF_ERROR(
      sorting::ParallelSortFieldsOnTape(ctx, 0, config));
  *out = TapeFields(ctx);
  *report = ctx.Report();
  return Status::OK();
}

std::string RenderReportDiff(const char* what,
                             const tape::ResourceReport& a,
                             const tape::ResourceReport& b) {
  return std::string(what) + ": cost bill differs: [" + a.ToString() +
         "] vs [" + b.ToString() + "]";
}

/// "" when the sort conforms on `fields`: serial-vs-parallel and
/// mem-vs-file output and bill identity, sortedness, and lane cleanup
/// after an injected failure.
std::string CheckSortCase(const std::vector<std::string>& fields) {
  sorting::SortConfig config;
  config.fanout = 3;
  config.run_length = 4;
  config.threads = 1;

  std::vector<std::string> serial_out;
  tape::ResourceReport serial_report;
  Status status =
      RunSort(fields, extmem::StorageOptions{}, config, &serial_out,
              &serial_report);
  if (!status.ok()) return "serial sort failed: " + status.ToString();

  std::vector<std::string> expected = fields;
  std::sort(expected.begin(), expected.end());
  if (serial_out != expected) return "serial sort output not sorted";

  config.threads = 3;
  std::vector<std::string> parallel_out;
  tape::ResourceReport parallel_report;
  status = RunSort(fields, extmem::StorageOptions{}, config, &parallel_out,
                   &parallel_report);
  if (!status.ok()) return "parallel sort failed: " + status.ToString();
  // Self-test fault: a phantom reversal on the parallel run — the bug a
  // thread-dependent billing path would introduce.
  if (FaultInjectionEnabled()) parallel_report.scan_bound += 1;
  if (parallel_out != serial_out) {
    return "output differs between 1 and 3 threads";
  }
  if (serial_report.scan_bound != parallel_report.scan_bound ||
      serial_report.reversals_per_tape !=
          parallel_report.reversals_per_tape ||
      serial_report.internal_space != parallel_report.internal_space ||
      serial_report.external_space != parallel_report.external_space) {
    return RenderReportDiff("1 vs 3 threads", serial_report,
                            parallel_report);
  }

  // Per-invocation lane directory: the dir name is not an observable,
  // it only isolates this check's file counting.
  static std::atomic<std::uint64_t> dir_counter{0};
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("rstlab-conform-sort-" +
       std::to_string(dir_counter.fetch_add(1, std::memory_order_relaxed)));
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return "cannot create lane dir: " + ec.message();

  std::vector<std::string> file_out;
  tape::ResourceReport file_report;
  status = RunSort(fields, FileOptions(dir.string()), config, &file_out,
                   &file_report);
  std::string failure;
  if (!status.ok()) {
    failure = "file-backend sort failed: " + status.ToString();
  } else if (file_out != serial_out) {
    failure = "output differs between mem and file backends";
  } else if (file_report.scan_bound != serial_report.scan_bound ||
             file_report.reversals_per_tape !=
                 serial_report.reversals_per_tape ||
             file_report.internal_space != serial_report.internal_space ||
             file_report.external_space != serial_report.external_space) {
    failure = RenderReportDiff("mem vs file", serial_report, file_report);
  } else if (FilesIn(dir) != 0) {
    // All contexts are gone; a leftover file is a leaked spill lane.
    failure = "successful sort leaked files in the tape dir";
  } else if (fields.size() > 1) {
    // Lifecycle self-test: fail the sort after run formation and check
    // the lanes were still unlinked.
    sorting::SortConfig failing = config;
    failing.inject_failure_before_merge = true;
    stmodel::StContext ctx(1, FileOptions(dir.string()));
    ctx.LoadInput(JoinFields(fields));
    const std::size_t baseline = FilesIn(dir);  // the context's own tape
    if (sorting::ParallelSortFieldsOnTape(ctx, 0, failing).ok()) {
      failure = "injected failure did not fail the sort";
    } else if (FilesIn(dir) != baseline) {
      failure = "failed sort left spill files in the tape dir";
    }
  }
  std::filesystem::remove_all(dir, ec);
  return failure;
}

class SortSuite final : public Suite {
 public:
  const char* name() const override { return "parallel-sort"; }
  const char* description() const override {
    return "k-way external sort: 1-vs-N threads and mem-vs-file output "
           "and (r, s) identity, plus spill-lane cleanup on failure";
  }

  CaseOutcome RunCase(std::uint64_t seed,
                      std::uint64_t index) const override {
    Rng rng(CaseRngSeed(CaseId{name(), seed, index}));
    const std::size_t m = rng.UniformBelow(60);
    std::vector<std::string> fields;
    for (std::size_t i = 0; i < m; ++i) {
      fields.push_back(
          BitString::Random(1 + rng.UniformBelow(10), rng).ToString());
    }

    CaseOutcome outcome;
    std::string failure = CheckSortCase(fields);
    if (failure.empty()) return outcome;

    const std::function<bool(const std::vector<std::string>&)> still_fails =
        [](const std::vector<std::string>& candidate) {
          return !CheckSortCase(candidate).empty();
        };
    const std::function<std::vector<std::vector<std::string>>(
        const std::vector<std::string>&)>
        candidates = &SequenceRemovalCandidates<std::string>;
    ShrinkStats stats;
    fields = GreedyShrink(std::move(fields), still_fails, candidates,
                          /*max_attempts=*/200, &stats);

    outcome.passed = false;
    outcome.failure = CheckSortCase(fields);
    outcome.counterexample =
        JoinFields(fields) + "  (m=" + std::to_string(fields.size()) + ")";
    outcome.shrink_attempts = stats.attempts;
    return outcome;
  }
};

}  // namespace

std::unique_ptr<Suite> MakeSortSuite() {
  return std::make_unique<SortSuite>();
}

}  // namespace rstlab::conform
