// The query-engine oracle: every plan of the depth family must agree
// with the in-memory reference evaluator on both storage backends and
// at every thread count — verdicts, result relations and per-query
// (r, s) bills bit-identical — and a finished shared scan must leave no
// resident cache blocks or live file storages behind. The differential
// generalizes the parallel-sort oracle one layer up: from one operator
// to whole certified pipelines sharing a single input pass.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "conform/case_id.h"
#include "conform/shrink.h"
#include "conform/suites.h"
#include "extmem/residency.h"
#include "extmem/storage.h"
#include "query/engine/shared_scan.h"
#include "query/relalg.h"
#include "stmodel/st_context.h"
#include "stmodel/tape_io.h"
#include "util/bitstring.h"
#include "util/random.h"

namespace rstlab::conform {

namespace {

using query::engine::QueryOutcome;
using query::engine::QueryRequest;
using query::engine::SharedScanOptions;

/// The depth-d plan family shared with tests/query_engine_test.cc.
query::RelAlgExprPtr PlanForDepth(std::uint64_t depth) {
  using namespace query;  // NOLINT(build/namespaces): expr factories
  switch (depth) {
    case 1:
      return Rel("R1");
    case 2:
      return Difference(Rel("R1"), Rel("R2"));
    case 3:
      return SymmetricDifferenceQuery();
    case 4:
      return Project(Intersection(Union(Rel("R1"), Rel("R2")), Rel("R1")),
                     {0});
    default:
      return Union(Project(Difference(Rel("R1"), Rel("R2")), {0}),
                   Intersection(Rel("R2"), Rel("R1")));
  }
}

std::string JoinFields(const std::vector<std::string>& fields) {
  std::string out;
  for (const auto& f : fields) {
    out += f;
    out += stmodel::kFieldSeparator;
  }
  return out;
}

extmem::StorageOptions FileOptions() {
  extmem::StorageOptions options;
  options.backend = extmem::BackendKind::kFile;
  options.block_size = 64;
  options.cache_blocks = 4;
  options.readahead_blocks = 2;
  return options;
}

Result<QueryOutcome> RunVariant(const std::string& stream,
                                const query::RelAlgExprPtr& plan,
                                const extmem::StorageOptions& storage,
                                std::size_t threads) {
  stmodel::StContext ctx(1, storage);
  ctx.LoadInput(stream);
  SharedScanOptions options;
  options.config.threads = threads;
  Result<std::vector<QueryOutcome>> run =
      query::engine::ExecuteSharedScan(ctx, {QueryRequest{plan, ""}},
                                       options);
  if (!run.ok()) return run.status();
  return std::move(run.value()[0]);
}

/// "" when the engine conforms on (fields, depth): reference identity
/// on mem/1, then bill + result identity for mem/3, file/1 and file/3,
/// then resource-residency hygiene.
std::string CheckQueryCase(const std::vector<std::string>& fields,
                           std::uint64_t depth) {
  const std::uint64_t blocks = extmem::ResidentCacheBlocks();
  const std::uint64_t files = extmem::LiveFileStorages();

  // In-memory reference over the parsed fields.
  std::map<std::string, query::Relation> db;
  db["R1"] = query::Relation{"R1", 1, {}};
  db["R2"] = query::Relation{"R2", 1, {}};
  for (const std::string& field : fields) {
    const std::size_t comma = field.find(',');
    db[field.substr(0, comma)].Insert({field.substr(comma + 1)});
  }
  const query::RelAlgExprPtr plan = PlanForDepth(depth);
  Result<query::Relation> reference = query::EvaluateInMemory(plan, db);
  if (!reference.ok()) {
    return "reference evaluation failed: " + reference.status().ToString();
  }

  const std::string stream = JoinFields(fields);
  Result<QueryOutcome> baseline =
      RunVariant(stream, plan, extmem::StorageOptions{}, 1);
  if (!baseline.ok() || !baseline.value().status.ok()) {
    return "mem/1-thread run failed: " +
           (baseline.ok() ? baseline.value().status : baseline.status())
               .ToString();
  }
  if (!(baseline.value().result == reference.value())) {
    return "engine result differs from in-memory reference";
  }

  struct Variant {
    const char* label;
    extmem::StorageOptions storage;
    std::size_t threads;
  };
  const Variant variants[] = {{"mem/3-threads", extmem::StorageOptions{}, 3},
                              {"file/1-thread", FileOptions(), 1},
                              {"file/3-threads", FileOptions(), 3}};
  for (const Variant& variant : variants) {
    Result<QueryOutcome> run =
        RunVariant(stream, plan, variant.storage, variant.threads);
    if (!run.ok() || !run.value().status.ok()) {
      return std::string(variant.label) + " run failed: " +
             (run.ok() ? run.value().status : run.status()).ToString();
    }
    QueryOutcome outcome = std::move(run.value());
    // Self-test fault: a phantom reversal on the last variant — the bug
    // a backend- or thread-dependent billing path would introduce.
    if (FaultInjectionEnabled() &&
        std::string(variant.label) == "file/3-threads") {
      outcome.cost.scan_bound += 1;
    }
    if (!(outcome.result == baseline.value().result)) {
      return std::string(variant.label) +
             ": result differs from mem/1-thread";
    }
    if (!outcome.cost.SameBill(baseline.value().cost) ||
        outcome.cost.tuples_out != baseline.value().cost.tuples_out) {
      return std::string(variant.label) + ": (r, s) bill differs: [" +
             outcome.cost.ToString() + "] vs [" +
             baseline.value().cost.ToString() + "]";
    }
  }

  if (extmem::ResidentCacheBlocks() != blocks) {
    return "shared scan left cache blocks resident";
  }
  if (extmem::LiveFileStorages() != files) {
    return "shared scan leaked file storages";
  }
  return "";
}

class QueryEngineSuite final : public Suite {
 public:
  const char* name() const override { return "query-engine"; }
  const char* description() const override {
    return "streaming query plans vs in-memory reference: result and "
           "(r, s) identity across backends and thread counts";
  }

  CaseOutcome RunCase(std::uint64_t seed,
                      std::uint64_t index) const override {
    Rng rng(CaseRngSeed(CaseId{name(), seed, index}));
    const std::uint64_t depth = 1 + index % 5;
    const std::size_t m = rng.UniformBelow(40);
    std::vector<std::string> fields;
    for (std::size_t i = 0; i < m; ++i) {
      // ~half the fields land in each relation; duplicates are frequent
      // at short value lengths, exercising set semantics on a multiset
      // stream.
      const char* rel = rng.Bernoulli(0.5) ? "R1" : "R2";
      fields.push_back(
          std::string(rel) + "," +
          BitString::Random(1 + rng.UniformBelow(8), rng).ToString());
    }

    CaseOutcome outcome;
    std::string failure = CheckQueryCase(fields, depth);
    if (failure.empty()) return outcome;

    const std::function<bool(const std::vector<std::string>&)> still_fails =
        [depth](const std::vector<std::string>& candidate) {
          return !CheckQueryCase(candidate, depth).empty();
        };
    const std::function<std::vector<std::vector<std::string>>(
        const std::vector<std::string>&)>
        candidates = &SequenceRemovalCandidates<std::string>;
    ShrinkStats stats;
    fields = GreedyShrink(std::move(fields), still_fails, candidates,
                          /*max_attempts=*/200, &stats);

    outcome.passed = false;
    outcome.failure = CheckQueryCase(fields, depth);
    outcome.counterexample = JoinFields(fields) +
                             "  (depth=" + std::to_string(depth) +
                             " m=" + std::to_string(fields.size()) + ")";
    outcome.shrink_attempts = stats.attempts;
    return outcome;
  }
};

}  // namespace

std::unique_ptr<Suite> MakeQueryEngineSuite() {
  return std::make_unique<QueryEngineSuite>();
}

}  // namespace rstlab::conform
