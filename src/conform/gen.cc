#include "conform/gen.h"

#include <algorithm>
#include <memory>

#include "machine/machine_builder.h"
#include "permutation/phi.h"
#include "problems/generators.h"
#include "util/bitstring.h"

namespace rstlab::conform {

namespace {

/// A random 0/1 string of `length` characters.
std::string RandomBits(Rng& rng, std::size_t length) {
  std::string bits;
  bits.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    bits.push_back(rng.Bernoulli(0.5) ? '1' : '0');
  }
  return bits;
}

}  // namespace

std::string TapeOp::ToString() const {
  switch (kind) {
    case Kind::kWrite:
      return std::string("W(") + symbol + ")";
    case Kind::kMoveLeft:
      return "L";
    case Kind::kMoveRight:
      return "R";
    case Kind::kSeek:
      return "S(" + std::to_string(target) + ")";
    case Kind::kReset:
      return "T(\"" + content + "\")";
  }
  return "?";
}

std::string TapeOpsToString(const std::vector<TapeOp>& ops) {
  std::string out;
  for (const TapeOp& op : ops) {
    if (!out.empty()) out.push_back(' ');
    out += op.ToString();
  }
  return out;
}

std::size_t TapeOpsCellSpan(const std::vector<TapeOp>& ops) {
  std::size_t head = 0;
  std::size_t max_cell = 0;
  for (const TapeOp& op : ops) {
    switch (op.kind) {
      case TapeOp::Kind::kWrite:
        break;
      case TapeOp::Kind::kMoveLeft:
        if (head > 0) --head;
        break;
      case TapeOp::Kind::kMoveRight:
        ++head;
        break;
      case TapeOp::Kind::kSeek:
        head = op.target;
        break;
      case TapeOp::Kind::kReset:
        head = 0;
        max_cell = std::max(max_cell,
                            op.content.empty() ? std::size_t{0}
                                               : op.content.size() - 1);
        break;
    }
    max_cell = std::max(max_cell, head);
  }
  return max_cell + 1;
}

Gen<std::vector<TapeOp>> GenTapeOps() {
  return Gen<std::vector<TapeOp>>([](Rng& rng, std::size_t size) {
    const std::size_t count = static_cast<std::size_t>(
        rng.UniformInRange(1, 4 + 2 * size));
    std::vector<TapeOp> ops;
    ops.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      TapeOp op;
      switch (rng.UniformBelow(8)) {
        case 0:
        case 1:
          op.kind = TapeOp::Kind::kWrite;
          op.symbol = static_cast<char>('a' + rng.UniformBelow(4));
          break;
        case 2:
          op.kind = TapeOp::Kind::kMoveLeft;
          break;
        case 3:
        case 4:
        case 5:
          // Right-biased so sequences wander off cell 0 and back.
          op.kind = TapeOp::Kind::kMoveRight;
          break;
        case 6:
          op.kind = TapeOp::Kind::kSeek;
          op.target = static_cast<std::size_t>(
              rng.UniformBelow(size + 8));
          break;
        default:
          op.kind = TapeOp::Kind::kReset;
          op.content = RandomBits(rng, rng.UniformBelow(size + 4));
          break;
      }
      ops.push_back(std::move(op));
    }
    return ops;
  });
}

Gen<problems::Instance> GenInstance() {
  return Gen<problems::Instance>([](Rng& rng, std::size_t size) {
    const std::size_t m = static_cast<std::size_t>(
        rng.UniformInRange(1, 2 + size / 2));
    const std::size_t n = static_cast<std::size_t>(
        rng.UniformInRange(1, 2 + size / 2));
    switch (rng.UniformBelow(6)) {
      case 0:
        return problems::EqualMultisets(m, n, rng);
      case 1:
        return problems::EqualSets(std::min(m, std::size_t{1} << std::min(
                                                n, std::size_t{16})),
                                   n, rng);
      case 2:
        return problems::PerturbedMultisets(
            m, n, 1 + rng.UniformBelow(m), rng);
      case 3:
        return problems::SortedPair(m, n, rng);
      case 4:
        return problems::MisorderedPair(m, n, rng);
      default: {
        // Fully independent lists: the unstructured end of the space.
        problems::Instance instance;
        for (std::size_t i = 0; i < m; ++i) {
          instance.first.push_back(BitString::Random(n, rng));
          instance.second.push_back(BitString::Random(n, rng));
        }
        return instance;
      }
    }
  });
}

Gen<permutation::Permutation> GenPermutation() {
  return Gen<permutation::Permutation>([](Rng& rng, std::size_t size) {
    const std::size_t m = static_cast<std::size_t>(
        rng.UniformInRange(1, 2 + size));
    return permutation::RandomPermutation(m, rng);
  });
}

namespace {

/// Grows a random element subtree under `node`.
void GrowXml(query::XmlNode* node, Rng& rng, std::size_t depth,
             std::size_t size) {
  static const char* kNames[] = {"set", "value", "string", "item", "row"};
  const std::size_t fanout = rng.UniformBelow(1 + std::min(size, std::size_t{4}));
  for (std::size_t i = 0; i < fanout; ++i) {
    query::XmlNode* child = node->AddChild(
        kNames[rng.UniformBelow(std::size(kNames))]);
    if (depth > 0 && rng.Bernoulli(0.6)) {
      GrowXml(child, rng, depth - 1, size);
    } else {
      child->text = RandomBits(rng, rng.UniformBelow(6));
    }
  }
}

}  // namespace

Gen<query::XmlDocument> GenXmlDocument() {
  return Gen<query::XmlDocument>([](Rng& rng, std::size_t size) {
    auto root = std::make_unique<query::XmlNode>();
    root->name = "root";
    GrowXml(root.get(), rng, /*depth=*/3, size);
    if (root->children.empty()) root->text = RandomBits(rng, 3);
    return root;
  });
}

Gen<machine::MachineSpec> GenMachineSpec() {
  return Gen<machine::MachineSpec>([](Rng& rng, std::size_t size) {
    // States encode (layer, row): state = layer * rows + row. Every
    // action jumps to layer + 1, so runs halt after `layers` steps and
    // the static analyzer's longest-path bounds are finite — the
    // differential suites need termination to be structural, never a
    // step-budget race.
    const std::size_t rows = 1 + rng.UniformBelow(3);
    const std::size_t layers =
        2 + rng.UniformBelow(2 + std::min(size, std::size_t{8}));
    machine::MachineBuilder builder(/*external=*/1, /*internal=*/0);
    builder.SetStart(0);
    const int final_base = static_cast<int>(layers * rows);
    for (std::size_t row = 0; row < rows; ++row) {
      builder.AddFinal(final_base + static_cast<int>(row),
                       /*accepting=*/rng.Bernoulli(0.5));
    }
    const std::string alphabet = "01_";
    for (std::size_t layer = 0; layer < layers; ++layer) {
      for (std::size_t row = 0; row < rows; ++row) {
        const int state = static_cast<int>(layer * rows + row);
        for (const char read : alphabet) {
          const std::size_t next_row = rng.UniformBelow(rows);
          const int next =
              layer + 1 == layers
                  ? final_base + static_cast<int>(next_row)
                  : static_cast<int>((layer + 1) * rows + next_row);
          const char write =
              alphabet[rng.UniformBelow(alphabet.size())];
          const machine::Move move =
              rng.Bernoulli(0.25) ? machine::Move::kLeft
              : rng.Bernoulli(0.2) ? machine::Move::kStay
                                   : machine::Move::kRight;
          builder.On(state, std::string(1, read))
              .Go(next, std::string(1, write), {move});
        }
      }
    }
    return builder.Build();
  });
}

}  // namespace rstlab::conform
