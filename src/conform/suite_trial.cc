// The trial-tally oracle: the TrialRunner reproducibility contract —
// chunk layout depends only on the trial count, chunk tallies merge in
// ascending order — promises bit-identical tallies for any thread
// count, including non-associative double sums. This suite runs the
// same seeded workload on a 1-thread and an N-thread runner and
// compares every tally field exactly.

#include <cmath>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "conform/case_id.h"
#include "conform/shrink.h"
#include "conform/suites.h"
#include "parallel/seed_sequence.h"
#include "parallel/trial_runner.h"
#include "util/random.h"

namespace rstlab::conform {

namespace {

/// A tally with both order-sensitive (double sum) and order-insensitive
/// (xor, count) components. Any scheduling leak shows up in `sum`
/// first; `xor_hash` catches dropped or duplicated trials.
struct MixedTally {
  double sum = 0.0;
  std::uint64_t xor_hash = 0;
  std::uint64_t count = 0;

  void Merge(const MixedTally& other) {
    sum += other.sum;
    xor_hash ^= other.xor_hash;
    count += other.count;
  }
};

struct TrialCase {
  std::uint64_t trials = 1;
  std::uint64_t workload_seed = 0;
  std::size_t threads = 2;
  std::size_t draws = 1;  // rng draws per trial
};

MixedTally RunWorkload(const TrialCase& c, std::size_t threads) {
  parallel::TrialRunner runner(threads);
  const parallel::SeedSequence seeds(c.workload_seed);
  return runner.RunSeeded<MixedTally>(
      c.trials, seeds,
      [&c](std::uint64_t trial, Rng& rng, MixedTally& tally) {
        for (std::size_t d = 0; d < c.draws; ++d) {
          const std::uint64_t word = rng.Next64();
          // 1/(x+1) sums are famously non-associative in floating
          // point; equal tallies across thread counts mean the merge
          // order really is fixed.
          tally.sum += 1.0 / (1.0 + static_cast<double>(word >> 40));
          tally.xor_hash ^= word + trial;
        }
        tally.count += 1;
      });
}

/// "" when the two runners agree bit for bit.
std::string CheckTrialCase(const TrialCase& c) {
  const MixedTally serial = RunWorkload(c, 1);
  MixedTally parallel_run = RunWorkload(c, c.threads);
  // Self-test fault: a single flipped tally bit — the smallest
  // scheduling leak the oracle promises to catch.
  if (FaultInjectionEnabled()) parallel_run.xor_hash ^= 1;
  // Exact comparison is the point: the contract is bit-identity, not
  // tolerance.
  if (serial.sum != parallel_run.sum) {
    return "double sum: 1-thread=" + std::to_string(serial.sum) + " " +
           std::to_string(c.threads) +
           "-thread=" + std::to_string(parallel_run.sum);
  }
  if (serial.xor_hash != parallel_run.xor_hash) {
    return "xor hash: 1-thread=" + std::to_string(serial.xor_hash) +
           " vs " + std::to_string(parallel_run.xor_hash);
  }
  if (serial.count != parallel_run.count) {
    return "trial count: 1-thread=" + std::to_string(serial.count) +
           " vs " + std::to_string(parallel_run.count);
  }
  return "";
}

std::string RenderTrialCase(const TrialCase& c) {
  return "trials=" + std::to_string(c.trials) +
         " threads=" + std::to_string(c.threads) +
         " draws=" + std::to_string(c.draws) +
         " workload_seed=" + std::to_string(c.workload_seed);
}

class TrialTallySuite final : public Suite {
 public:
  const char* name() const override { return "trial-tally"; }
  const char* description() const override {
    return "1-thread vs N-thread TrialRunner tally bit-identity";
  }

  CaseOutcome RunCase(std::uint64_t seed,
                      std::uint64_t index) const override {
    Rng rng(CaseRngSeed(CaseId{name(), seed, index}));
    TrialCase c;
    c.trials = 1 + rng.UniformBelow(64 + 8 * (index % 16));
    c.workload_seed = rng.Next64();
    c.threads = static_cast<std::size_t>(rng.UniformInRange(2, 8));
    c.draws = static_cast<std::size_t>(rng.UniformInRange(1, 4));

    CaseOutcome outcome;
    std::string failure = CheckTrialCase(c);
    if (failure.empty()) return outcome;

    // Shrink the trial count (halving, then decrement) and the draw
    // count; threads and seed stay fixed — they name the failure, the
    // trial count is its size.
    const std::function<bool(const TrialCase&)> still_fails =
        [](const TrialCase& candidate) {
          return !CheckTrialCase(candidate).empty();
        };
    const std::function<std::vector<TrialCase>(const TrialCase&)>
        candidates = [](const TrialCase& current) {
          std::vector<TrialCase> out;
          if (current.trials > 1) {
            TrialCase half = current;
            half.trials = current.trials / 2;
            out.push_back(half);
            TrialCase less = current;
            less.trials = current.trials - 1;
            out.push_back(less);
          }
          if (current.draws > 1) {
            TrialCase fewer = current;
            fewer.draws = current.draws - 1;
            out.push_back(fewer);
          }
          return out;
        };
    ShrinkStats stats;
    const TrialCase shrunk = GreedyShrink(
        c, still_fails, candidates, /*max_attempts=*/200, &stats);

    outcome.passed = false;
    outcome.failure = CheckTrialCase(shrunk);
    outcome.counterexample = RenderTrialCase(shrunk);
    outcome.shrink_attempts = stats.attempts;
    return outcome;
  }
};

}  // namespace

std::unique_ptr<Suite> MakeTrialTallySuite() {
  return std::make_unique<TrialTallySuite>();
}

}  // namespace rstlab::conform
