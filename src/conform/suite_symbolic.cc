// The symbolic-certificate oracle (check-symbolic): `check::Analyze`
// now returns N-parametric `BoundExpr` envelopes, so the RST015
// contract is checkable at *every* input size, not just one. Each case
// seeds an instance at a swept size N (powers of two with jitter),
// runs either a registry machine or the parallel k-way sort, and
// asserts
//
//   1. the measured (r, s) bill stays inside the symbolic envelope
//      evaluated at the run's own N, and
//   2. `BoundExpr::Eval` is monotone in N across the full static sweep
//      2^8 .. 2^24 (no saturation artifact may ever make a larger
//      input look cheaper).
//
// The self-test fault adds a phantom bill one past the envelope — the
// exact violation the symbolic certificate must catch.

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "check/analyzer.h"
#include "check/registry.h"
#include "check/sort_certificate.h"
#include "conform/case_id.h"
#include "conform/shrink.h"
#include "conform/suites.h"
#include "machine/turing_machine.h"
#include "sorting/parallel_sort.h"
#include "sorting/sort_config.h"
#include "stmodel/st_context.h"
#include "tape/resource_meter.h"
#include "util/random.h"

namespace rstlab::conform {

namespace {

constexpr std::size_t kMaxSteps = 500000;

std::string JoinFields(const std::vector<std::string>& fields) {
  std::string out;
  for (const auto& f : fields) {
    out += f;
    out += '#';
  }
  return out;
}

/// One check-symbolic case: a registry machine replay (sort_fanout 0)
/// or a k-way sort run (sort_fanout >= 2), on seeded fields whose
/// joined size is the swept N.
struct SymbolicCase {
  std::string machine_name;  // registry name, or "kway-sort"
  std::vector<std::string> fields;
  std::uint64_t run_seed = 0;
  std::size_t sort_fanout = 0;
  std::size_t sort_run_length = 1;
};

std::string RenderSymbolicCase(const SymbolicCase& c) {
  return c.machine_name + " N=" + std::to_string(JoinFields(c.fields).size()) +
         " fields=" + std::to_string(c.fields.size()) +
         " run_seed=" + std::to_string(c.run_seed) +
         (c.sort_fanout >= 2
              ? " fanout=" + std::to_string(c.sort_fanout) +
                    " run_length=" + std::to_string(c.sort_run_length)
              : "");
}

/// "" when Eval is monotone across the static sweep 2^8 .. 2^24.
std::string CheckEvalMonotone(const check::BoundExpr& bound,
                              const char* what) {
  std::uint64_t prev = 0;
  for (std::size_t n = std::size_t{1} << 8; n <= (std::size_t{1} << 24);
       n <<= 1) {
    const std::uint64_t at_n = bound.Eval(n);
    if (at_n < prev) {
      return std::string(what) + " bound " + bound.ToString() +
             " is not monotone: Eval(" + std::to_string(n >> 1) + ")=" +
             std::to_string(prev) + " > Eval(" + std::to_string(n) + ")=" +
             std::to_string(at_n);
    }
    prev = at_n;
  }
  return "";
}

/// "" when the measured machine bill stays inside the symbolic
/// envelope at the case's own N.
std::string CheckMachineCase(const SymbolicCase& c) {
  // Keep the registry vector alive for the whole case — the factory
  // returns it by value.
  const std::vector<check::CheckedMachine> machines =
      check::AllCheckedMachines();
  const check::CheckedMachine* entry = nullptr;
  for (const check::CheckedMachine& m : machines) {
    if (m.name == c.machine_name) entry = &m;
  }
  if (entry == nullptr) {
    return "machine \"" + c.machine_name + "\" missing from registry";
  }
  const check::Analysis analysis = check::Analyze(entry->spec,
                                                  entry->options);
  for (const check::BoundExpr& b : analysis.resources.external_reversals) {
    const std::string bad = CheckEvalMonotone(b, "reversal");
    if (!bad.empty()) return bad;
  }
  const std::string bad = CheckEvalMonotone(
      analysis.resources.total_internal_cells, "internal-space");
  if (!bad.empty()) return bad;

  Result<machine::TuringMachine> tm =
      machine::TuringMachine::Create(entry->spec);
  if (!tm.ok()) {
    return "executor rejects spec: " + tm.status().ToString();
  }
  const std::string input = JoinFields(c.fields);
  Rng rng(c.run_seed);
  machine::RunResult run = tm.value().RunRandomized(input, rng, kMaxSteps);
  // Self-test fault: bill one phantom reversal past the per-tape
  // envelope — the violation the symbolic RST015 check must flag.
  if (FaultInjectionEnabled() && !run.costs.external_reversals.empty() &&
      !analysis.resources.external_reversals.empty() &&
      !analysis.resources.external_reversals[0].unbounded()) {
    run.costs.external_reversals[0] =
        check::SatAdd(
            analysis.resources.external_reversals[0].Eval(input.size()), 1);
  }
  const Status certified = check::CheckCostsAgainstCertificate(
      run.costs, analysis.resources, input.size());
  if (!certified.ok()) return certified.ToString();
  return "";
}

/// "" when the measured sort bill stays inside the symbolic k-way
/// certificate at the case's own N.
std::string CheckSortCase(const SymbolicCase& c) {
  sorting::SortConfig config;
  config.fanout = c.sort_fanout;
  config.run_length = c.sort_run_length;
  config.threads = 1;
  stmodel::StContext ctx(1);
  ctx.LoadInput(JoinFields(c.fields));
  sorting::ParallelSortStats stats;
  const Status sorted =
      sorting::ParallelSortFieldsOnTape(ctx, 0, config, &stats);
  if (!sorted.ok()) return "sort failed: " + sorted.ToString();

  const check::SymbolicSortCertificate cert =
      check::CertifyKWaySortSymbolic(stats.max_field_len, config.fanout,
                                     config.run_length);
  std::string bad = CheckEvalMonotone(cert.scan_bound, "sort scan");
  if (bad.empty()) {
    bad = CheckEvalMonotone(cert.internal_bits, "sort bits");
  }
  if (!bad.empty()) return bad;

  tape::ResourceReport report = ctx.Report();
  // Self-test fault: one phantom scan past the symbolic envelope.
  if (FaultInjectionEnabled()) {
    report.scan_bound =
        check::SatAdd(cert.scan_bound.Eval(ctx.input_size()), 1);
  }
  const Status certified = check::CheckSortCostsAgainstSymbolicCertificate(
      report, cert, ctx.input_size());
  if (!certified.ok()) return certified.ToString();
  return "";
}

std::string CheckSymbolicCase(const SymbolicCase& c) {
  return c.sort_fanout >= 2 ? CheckSortCase(c) : CheckMachineCase(c);
}

class SymbolicCheckSuite final : public Suite {
 public:
  const char* name() const override { return "check-symbolic"; }
  const char* description() const override {
    return "symbolic BoundExpr certificate dominates measured (r, s) at "
           "the run's own N, and Eval is monotone over the N sweep";
  }

  CaseOutcome RunCase(std::uint64_t seed,
                      std::uint64_t index) const override {
    Rng rng(CaseRngSeed(CaseId{name(), seed, index}));
    SymbolicCase c;
    c.run_seed = rng.Next64();

    // The swept instance size: powers of two 2^4 .. 2^11 with jitter,
    // so case sizes cover three decades while one case still runs in
    // milliseconds. (The static 2^8 .. 2^24 sweep needs no run and is
    // asserted in every case.)
    const std::size_t target =
        (std::size_t{1} << (4 + rng.UniformBelow(8))) + rng.UniformBelow(9);

    if (rng.Bernoulli(0.3)) {
      // Sort flavor: many short fields filling ~target cells.
      c.machine_name = "kway-sort";
      c.sort_fanout = 2 + rng.UniformBelow(15);
      c.sort_run_length = std::size_t{1} << rng.UniformBelow(4);
      std::size_t cells = 0;
      while (cells + 1 < target) {
        const std::size_t len =
            std::min<std::size_t>(1 + rng.UniformBelow(8),
                                  target - cells - 1);
        c.fields.push_back(RandomField(rng, len));
        cells += len + 1;
      }
      if (c.fields.empty()) c.fields.push_back("0");
    } else {
      // Machine flavor: a registry machine on fields sized to target.
      const std::vector<check::CheckedMachine> machines =
          check::AllCheckedMachines();
      const check::CheckedMachine& entry =
          machines[rng.UniformBelow(machines.size())];
      c.machine_name = entry.name;
      // Two equal-length fields for the two-tape comparators, one
      // otherwise; every registry alphabet covers {0, 1, #}.
      const std::size_t num_fields =
          entry.spec.num_external_tapes >= 2 ? 2 : 1;
      const std::size_t len =
          std::max<std::size_t>(1, target / num_fields - 1);
      for (std::size_t f = 0; f < num_fields; ++f) {
        c.fields.push_back(RandomField(rng, len));
      }
      if (num_fields == 2 && rng.Bernoulli(0.5)) {
        c.fields[1] = c.fields[0];
      }
    }

    CaseOutcome outcome;
    std::string failure = CheckSymbolicCase(c);
    if (failure.empty()) return outcome;

    const std::function<bool(const SymbolicCase&)> still_fails =
        [](const SymbolicCase& candidate) {
          return !CheckSymbolicCase(candidate).empty();
        };
    const std::function<std::vector<SymbolicCase>(const SymbolicCase&)>
        candidates = [](const SymbolicCase& current) {
          std::vector<SymbolicCase> out;
          // Halve the field list, then halve each field — the failing N
          // shrinks geometrically while staying a valid instance.
          if (current.fields.size() > 1) {
            SymbolicCase fewer = current;
            fewer.fields.resize(current.fields.size() / 2);
            out.push_back(std::move(fewer));
          }
          for (std::size_t f = 0; f < current.fields.size(); ++f) {
            if (current.fields[f].size() <= 1) continue;
            SymbolicCase shorter = current;
            shorter.fields[f].resize(current.fields[f].size() / 2);
            out.push_back(std::move(shorter));
          }
          return out;
        };
    ShrinkStats stats;
    const SymbolicCase shrunk = GreedyShrink(
        std::move(c), still_fails, candidates, /*max_attempts=*/300,
        &stats);

    outcome.passed = false;
    outcome.failure = CheckSymbolicCase(shrunk);
    outcome.counterexample = RenderSymbolicCase(shrunk);
    outcome.shrink_attempts = stats.attempts;
    return outcome;
  }

 private:
  static std::string RandomField(Rng& rng, std::size_t length) {
    std::string field;
    for (std::size_t i = 0; i < length; ++i) {
      field.push_back(rng.Bernoulli(0.5) ? '1' : '0');
    }
    return field;
  }
};

}  // namespace

std::unique_ptr<Suite> MakeSymbolicCheckSuite() {
  return std::make_unique<SymbolicCheckSuite>();
}

}  // namespace rstlab::conform
