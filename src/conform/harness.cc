#include "conform/harness.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <sstream>

#include "conform/suites.h"

namespace rstlab::conform {

namespace {
bool g_fault_injection = false;
}  // namespace

void SetFaultInjection(bool enabled) { g_fault_injection = enabled; }

bool FaultInjectionEnabled() { return g_fault_injection; }

const std::vector<const Suite*>& AllSuites() {
  // Fixed report order: cheap and broad first, so `conform all` output
  // reads top-down from storage to algorithms.
  static const auto* suites = [] {
    auto* owned = new std::vector<std::unique_ptr<Suite>>();
    owned->push_back(MakeTapeBackendSuite());
    owned->push_back(MakeTrialTallySuite());
    owned->push_back(MakeTmNlmSuite());
    owned->push_back(MakeCertificateSuite());
    owned->push_back(MakeSymbolicCheckSuite());
    owned->push_back(MakeDeciderSuite());
    owned->push_back(MakeSortSuite());
    owned->push_back(MakeXmlRoundTripSuite());
    owned->push_back(MakeFingerprintBatchSuite());
    owned->push_back(MakeServeShardSuite());
    owned->push_back(MakeQueryEngineSuite());
    auto* views = new std::vector<const Suite*>();
    for (const auto& suite : *owned) views->push_back(suite.get());
    return views;
  }();
  return *suites;
}

const Suite* FindSuite(const std::string& name) {
  for (const Suite* suite : AllSuites()) {
    if (name == suite->name()) return suite;
  }
  return nullptr;
}

std::string SuiteReport::ToString() const {
  std::ostringstream out;
  out << suite << ": " << (passed() ? "ok" : "FAIL") << "  (" << cases
      << " cases, seed " << seed << ", " << failures.size()
      << " failure(s))\n";
  for (const CaseFailure& f : failures) {
    out << "  [" << f.id.ToString() << "] " << f.failure << "\n"
        << "    counterexample: " << f.counterexample << "\n"
        << "    (shrunk in " << f.shrink_attempts << " attempts;"
        << " replay with --replay=" << f.id.ToString() << ")\n";
  }
  return out.str();
}

SuiteReport RunSuite(const Suite& suite, std::uint64_t seed,
                     std::uint64_t cases) {
  SuiteReport report;
  report.suite = suite.name();
  report.seed = seed;
  report.cases = cases;
  for (std::uint64_t index = 0; index < cases; ++index) {
    CaseOutcome outcome = suite.RunCase(seed, index);
    if (outcome.passed) continue;
    CaseFailure failure;
    failure.id = CaseId{suite.name(), seed, index};
    failure.failure = std::move(outcome.failure);
    failure.counterexample = std::move(outcome.counterexample);
    failure.shrink_attempts = outcome.shrink_attempts;
    report.failures.push_back(std::move(failure));
  }
  return report;
}

Result<CaseOutcome> ReplayCase(const CaseId& id) {
  const Suite* suite = FindSuite(id.suite);
  if (suite == nullptr) {
    return Status::NotFound("unknown conformance suite \"" + id.suite +
                            "\"");
  }
  return suite->RunCase(id.seed, id.index);
}

Result<std::vector<CaseId>> LoadCorpusFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return Status::NotFound("cannot open corpus file " + path);
  }
  std::vector<CaseId> cases;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(file, line)) {
    ++line_number;
    // Trim trailing CR (checked-in files may have CRLF endings).
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    if (line.empty() || line[0] == '#') continue;
    Result<CaseId> id = CaseId::Parse(line);
    if (!id.ok()) {
      return Status::InvalidArgument(
          path + ":" + std::to_string(line_number) + ": " +
          id.status().message());
    }
    cases.push_back(std::move(id).value());
  }
  return cases;
}

Result<std::vector<CaseId>> LoadCorpusDir(const std::string& dir) {
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) {
    return std::vector<CaseId>{};
  }
  std::vector<std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".case") {
      files.push_back(entry.path().string());
    }
  }
  if (ec) {
    return Status::Internal("cannot list corpus directory " + dir + ": " +
                            ec.message());
  }
  std::sort(files.begin(), files.end());
  std::vector<CaseId> cases;
  for (const std::string& file : files) {
    Result<std::vector<CaseId>> loaded = LoadCorpusFile(file);
    if (!loaded.ok()) return loaded.status();
    std::vector<CaseId> ids = std::move(loaded).value();
    cases.insert(cases.end(), std::make_move_iterator(ids.begin()),
                 std::make_move_iterator(ids.end()));
  }
  return cases;
}

std::size_t EnvTestCases(std::size_t fallback) {
  const char* env = std::getenv("RSTLAB_TEST_CASES");
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0' || value == 0) return fallback;
  return static_cast<std::size_t>(value);
}

}  // namespace rstlab::conform
