#ifndef RSTLAB_CONFORM_HARNESS_H_
#define RSTLAB_CONFORM_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "conform/case_id.h"
#include "conform/oracle.h"
#include "util/status.h"

namespace rstlab::conform {

/// One failed case inside a suite run, fully replayable.
struct CaseFailure {
  CaseId id;
  std::string failure;
  std::string counterexample;
  std::size_t shrink_attempts = 0;
};

/// The outcome of running one suite for `cases` indices under `seed`.
struct SuiteReport {
  std::string suite;
  std::uint64_t seed = 0;
  std::uint64_t cases = 0;
  std::vector<CaseFailure> failures;

  bool passed() const { return failures.empty(); }

  /// Deterministic human-readable rendering: one status line, then one
  /// block per failure with its replay triple. Byte-identical across
  /// runs at equal (suite, seed, cases).
  std::string ToString() const;
};

/// Runs cases `0..cases-1` of `suite`; failures are shrunk by the
/// suite before they land in the report.
SuiteReport RunSuite(const Suite& suite, std::uint64_t seed,
                     std::uint64_t cases);

/// Replays exactly one case. Fails (NotFound) on an unknown suite name.
Result<CaseOutcome> ReplayCase(const CaseId& id);

/// Parses one corpus file: `#`-comment and blank lines skipped, every
/// other line a replay triple.
Result<std::vector<CaseId>> LoadCorpusFile(const std::string& path);

/// Loads every `*.case` file under `dir` in lexicographic filename
/// order (deterministic corpus replay order). A missing directory is
/// an empty corpus, not an error.
Result<std::vector<CaseId>> LoadCorpusDir(const std::string& dir);

/// The per-suite case count for property tests: `RSTLAB_TEST_CASES`
/// when set to a positive integer, else `fallback`. Sanitizer CI jobs
/// dial this down instead of timing out.
std::size_t EnvTestCases(std::size_t fallback);

}  // namespace rstlab::conform

#endif  // RSTLAB_CONFORM_HARNESS_H_
