#ifndef RSTLAB_CONFORM_GEN_H_
#define RSTLAB_CONFORM_GEN_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "machine/turing_machine.h"
#include "permutation/sortedness.h"
#include "problems/instance.h"
#include "query/xml.h"
#include "util/random.h"

namespace rstlab::conform {

/// A sized random generator: a pure function of `(rng, size)` where
/// `size` scales how large the produced value may get. Every suite's
/// instance space is a `Gen<T>`; because the only randomness source is
/// the `Rng` derived from a case's replay triple, a generated value is
/// reproducible from `(suite, seed, index)` alone.
template <typename T>
class Gen {
 public:
  using Fn = std::function<T(Rng&, std::size_t)>;

  explicit Gen(Fn fn) : fn_(std::move(fn)) {}

  T operator()(Rng& rng, std::size_t size) const { return fn_(rng, size); }

  /// A generator producing `f(value)` for this generator's values.
  template <typename F>
  auto Map(F f) const -> Gen<decltype(f(std::declval<T>()))> {
    using U = decltype(f(std::declval<T>()));
    Fn fn = fn_;
    return Gen<U>([fn, f](Rng& rng, std::size_t size) -> U {
      return f(fn(rng, size));
    });
  }

 private:
  Fn fn_;
};

/// A generator that always yields `value`.
template <typename T>
Gen<T> GenConst(T value) {
  return Gen<T>([value](Rng&, std::size_t) { return value; });
}

/// Uniform choice between alternatives, re-drawn per call.
template <typename T>
Gen<T> GenOneOf(std::vector<Gen<T>> alternatives) {
  return Gen<T>([alternatives](Rng& rng, std::size_t size) {
    const std::size_t pick = static_cast<std::size_t>(
        rng.UniformBelow(alternatives.size()));
    return alternatives[pick](rng, size);
  });
}

/// A vector of `count_lo..count_hi` values of `element` (inclusive).
template <typename T>
Gen<std::vector<T>> GenVectorOf(Gen<T> element, std::size_t count_lo,
                                std::size_t count_hi) {
  return Gen<std::vector<T>>(
      [element, count_lo, count_hi](Rng& rng, std::size_t size) {
        const std::size_t count = static_cast<std::size_t>(
            rng.UniformInRange(count_lo, count_hi));
        std::vector<T> values;
        values.reserve(count);
        for (std::size_t i = 0; i < count; ++i) {
          values.push_back(element(rng, size));
        }
        return values;
      });
}

// ---------------------------------------------------------------------
// Concrete instance spaces. All are shaped so a `size` in the low tens
// keeps single-case cost at microseconds-to-milliseconds — `--cases=500`
// must stay a sub-minute CI step on every suite.
// ---------------------------------------------------------------------

/// One operation of a tape op sequence (the tape-backend suite's
/// instance alphabet). Targets and contents are kept small so shrunk
/// counterexamples naturally confine themselves to a few cells.
struct TapeOp {
  enum class Kind : std::uint8_t {
    kWrite,      // write `symbol` under the head
    kMoveLeft,   // one cell left (blocked and free at cell 0)
    kMoveRight,  // one cell right
    kSeek,       // absolute seek to `target`
    kReset,      // replace content with `content`, rewind
  };

  Kind kind = Kind::kMoveRight;
  char symbol = 'a';        // kWrite
  std::size_t target = 0;   // kSeek
  std::string content;      // kReset

  /// Compact rendering, e.g. "W(x)", "L", "R", "S(12)", "T(\"0101\")".
  std::string ToString() const;

  bool operator==(const TapeOp& other) const = default;
};

/// Renders an op sequence as a single line, e.g. "R R W(x) S(0) L".
std::string TapeOpsToString(const std::vector<TapeOp>& ops);

/// The highest cell index any op can touch: 1 + max over the sequence of
/// seek targets, reset lengths and net right-moves. The shrinker reports
/// this as the counterexample's cell footprint.
std::size_t TapeOpsCellSpan(const std::vector<TapeOp>& ops);

/// Random tape op sequences of up to `4 + 2 * size` ops; seeks stay
/// within [0, size + 8), resets within length < size + 4.
Gen<std::vector<TapeOp>> GenTapeOps();

/// Random problem instances: a mix of the structured workload
/// generators (equal/perturbed multisets, sorted/misordered pairs,
/// equal sets) and fully independent random lists, with
/// m in [1, 2 + size/2] and n in [1, 2 + size/2].
Gen<problems::Instance> GenInstance();

/// A uniformly random permutation of {0, ..., m-1} with
/// m in [1, 2 + size].
Gen<permutation::Permutation> GenPermutation();

/// Random XML documents: element trees of depth <= 3 over a small name
/// alphabet with digit-string leaf texts — the shape the paper's
/// Theorem 12/13 encodings produce, plus arbitrary nesting.
Gen<query::XmlDocument> GenXmlDocument();

/// Random *terminating* deterministic Turing machines with one external
/// tape over {0,1,_}: states encode (layer, row) pairs and every
/// transition strictly increases the layer, so any run halts within
/// `layers` steps regardless of the input. Suitable for differential
/// execution (certificate and simulation oracles) where a run budget
/// must never be the failure mode.
Gen<machine::MachineSpec> GenMachineSpec();

}  // namespace rstlab::conform

#endif  // RSTLAB_CONFORM_GEN_H_
