// The fingerprint-batch oracle: the batched SIMD engine promises
// tallies BIT-identical to the scalar reference path at every lane
// width, every thread count and every input — the gate that lets
// A1-A3/E1/E2 consume batches without changing a single recorded
// number. This suite drives three differentials per case:
//   1. engine sums/verdicts at {scalar, lanes4, lanes8} against each
//      other and against the per-lane AcceptsWithParams reference;
//   2. the batched Claim 1 estimator on a 1-thread vs an N-thread
//      runner (RunSeededBatches group layout must be schedule-free);
//   3. the hardened tape tester against Instance::Parse on possibly
//      corrupted encodings — the tape scan must accept exactly the
//      parseable non-empty encodings and replay its verdict on the
//      host.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "conform/case_id.h"
#include "conform/shrink.h"
#include "conform/suites.h"
#include "fingerprint/batch.h"
#include "fingerprint/fingerprint.h"
#include "parallel/trial_runner.h"
#include "problems/generators.h"
#include "problems/instance.h"
#include "stmodel/st_context.h"
#include "util/random.h"
#include "util/simd.h"

namespace rstlab::conform {

namespace {

using fingerprint::AcceptsWithParams;
using fingerprint::BatchFingerprintEngine;
using fingerprint::BatchTally;
using fingerprint::Claim1Estimate;
using fingerprint::FingerprintParamBatch;
using fingerprint::SampleFingerprintParamBatch;

struct BatchCase {
  std::size_t m = 2;
  std::size_t n = 4;
  std::size_t lanes = 4;
  std::size_t threads = 2;
  std::uint64_t workload_seed = 0;
  std::uint64_t claim_trials = 8;
  /// -1: well-formed encoding; otherwise one of the mutation kinds
  /// below applied to the encoding before the tape differential.
  int mutation = -1;
};

constexpr int kMutationKinds = 5;

/// Applies the case's mutation to a well-formed encoding.
std::string MutateEncoding(const std::string& encoded, int mutation,
                           Rng& rng) {
  std::string out = encoded;
  switch (mutation) {
    case 0:  // empty tape
      return "";
    case 1:  // lone separator (odd field count)
      return "#";
    case 2:  // truncate the final separator (unterminated field)
      if (!out.empty()) out.pop_back();
      return out.empty() ? "0" : out;
    case 3: {  // non-binary character inside a field
      const std::size_t pos =
          static_cast<std::size_t>(rng.UniformBelow(out.size()));
      out[pos] = '2';
      return out;
    }
    case 4: {  // blank cell inside the declared input
      const std::size_t pos =
          static_cast<std::size_t>(rng.UniformBelow(out.size()));
      out[pos] = '_';
      return out;
    }
    default:
      return out;
  }
}

std::string RenderTally(const BatchTally& tally) {
  std::string out = "sums=[";
  for (std::size_t i = 0; i < tally.sum_first.size(); ++i) {
    out += (i == 0 ? "" : ",") + std::to_string(tally.sum_first[i]) + "/" +
           std::to_string(tally.sum_second[i]);
  }
  return out + "]";
}

/// "" when every differential agrees bit for bit.
std::string CheckBatchCase(const BatchCase& c) {
  Rng rng(c.workload_seed);
  const problems::Instance instance =
      c.workload_seed % 2 == 0
          ? problems::EqualMultisets(c.m, c.n, rng)
          : problems::PerturbedMultisets(
                c.m, c.n, 1 + rng.UniformBelow(c.m), rng);

  Result<FingerprintParamBatch> batch_result =
      SampleFingerprintParamBatch(c.m, c.n, c.lanes, rng);
  if (!batch_result.ok()) {
    return "parameter sampling failed: " +
           std::string(batch_result.status().message());
  }
  const FingerprintParamBatch& batch = batch_result.value();

  // ---- 1. Lane-width bit-identity against the scalar reference. ----
  const BatchFingerprintEngine scalar_engine(batch,
                                             simd::SimdLevel::kScalar);
  const BatchTally reference = scalar_engine.Evaluate(instance);
  for (std::size_t lane = 0; lane < batch.lanes(); ++lane) {
    const bool expected = AcceptsWithParams(instance, batch.Lane(lane));
    if ((reference.lane_accepted[lane] != 0) != expected) {
      return "scalar engine lane " + std::to_string(lane) +
             " disagrees with AcceptsWithParams";
    }
  }
  const simd::SimdLevel wide_levels[] = {simd::SimdLevel::kLanes4,
                                         simd::SimdLevel::kLanes8};
  for (const simd::SimdLevel level : wide_levels) {
    const BatchFingerprintEngine engine(batch, level);
    BatchTally tally = engine.Evaluate(instance);
    // Self-test fault: one flipped sum bit on one lane — the smallest
    // divergence a broken kernel could produce.
    if (FaultInjectionEnabled() && level == simd::SimdLevel::kLanes4) {
      tally.sum_first[0] ^= 1;
    }
    if (tally.sum_first != reference.sum_first ||
        tally.sum_second != reference.sum_second ||
        tally.lane_accepted != reference.lane_accepted) {
      return std::string("lane-width mismatch at ") +
             simd::SimdLevelName(level) + ": " + RenderTally(tally) +
             " vs scalar " + RenderTally(reference);
    }
  }

  // ---- 2. Thread bit-identity of the batched trial path. ----
  parallel::TrialRunner serial_runner(1);
  parallel::TrialRunner parallel_runner(c.threads);
  const Claim1Estimate serial = fingerprint::EstimateClaim1CollisionRateBatched(
      instance, c.claim_trials, c.workload_seed, serial_runner, c.lanes,
      simd::SimdLevel::kLanes8);
  const Claim1Estimate threaded =
      fingerprint::EstimateClaim1CollisionRateBatched(
          instance, c.claim_trials, c.workload_seed, parallel_runner,
          c.lanes, simd::SimdLevel::kScalar);
  if (serial.collisions != threaded.collisions ||
      serial.trials != threaded.trials) {
    return "batched Claim 1 tally: 1-thread/lanes8 " +
           std::to_string(serial.collisions) + "/" +
           std::to_string(serial.trials) + " vs " +
           std::to_string(c.threads) + "-thread/scalar " +
           std::to_string(threaded.collisions) + "/" +
           std::to_string(threaded.trials);
  }

  // ---- 3. Tape tester vs Instance::Parse on (mutated) encodings. ----
  std::string encoded = instance.Encode();
  if (c.mutation >= 0) encoded = MutateEncoding(encoded, c.mutation, rng);
  const Result<problems::Instance> parsed = problems::Instance::Parse(encoded);
  const bool expected_ok = !encoded.empty() && parsed.ok();
  stmodel::StContext ctx(1);
  ctx.LoadInput(encoded);
  Rng tape_rng(c.workload_seed + 1);
  const Result<fingerprint::FingerprintOutcome> tape_outcome =
      fingerprint::TestMultisetEqualityOnTapes(ctx, tape_rng);
  if (tape_outcome.ok() != expected_ok) {
    return "tape tester " +
           std::string(tape_outcome.ok() ? "accepted" : "rejected") +
           " encoding '" + encoded + "' but Instance::Parse " +
           std::string(expected_ok ? "accepts" : "rejects") + " it";
  }
  if (tape_outcome.ok() &&
      tape_outcome.value().accepted !=
          AcceptsWithParams(parsed.value(), tape_outcome.value().params)) {
    return "tape verdict does not replay on host for '" + encoded + "'";
  }
  return "";
}

std::string RenderBatchCase(const BatchCase& c) {
  return "m=" + std::to_string(c.m) + " n=" + std::to_string(c.n) +
         " lanes=" + std::to_string(c.lanes) +
         " threads=" + std::to_string(c.threads) +
         " claim_trials=" + std::to_string(c.claim_trials) +
         " mutation=" + std::to_string(c.mutation) +
         " workload_seed=" + std::to_string(c.workload_seed);
}

class FingerprintBatchSuite final : public Suite {
 public:
  const char* name() const override { return "fingerprint-batch"; }
  const char* description() const override {
    return "scalar vs SIMD fingerprint tally bit-identity at every lane "
           "width and thread count";
  }

  CaseOutcome RunCase(std::uint64_t seed,
                      std::uint64_t index) const override {
    Rng rng(CaseRngSeed(CaseId{name(), seed, index}));
    BatchCase c;
    c.m = 1 + static_cast<std::size_t>(rng.UniformBelow(6));
    c.n = 1 + static_cast<std::size_t>(rng.UniformBelow(16));
    c.lanes = 1 + static_cast<std::size_t>(rng.UniformBelow(9));
    c.threads = static_cast<std::size_t>(rng.UniformInRange(2, 6));
    c.claim_trials = 1 + rng.UniformBelow(16);
    c.workload_seed = rng.Next64();
    // Every third case exercises the malformed-encoding differential.
    c.mutation = index % 3 == 0
                     ? static_cast<int>(rng.UniformBelow(kMutationKinds))
                     : -1;

    CaseOutcome outcome;
    std::string failure = CheckBatchCase(c);
    if (failure.empty()) return outcome;

    // Shrink workload size first (m, n, lanes, trials); the seed,
    // thread count and mutation kind name the failure and stay fixed.
    const std::function<bool(const BatchCase&)> still_fails =
        [](const BatchCase& candidate) {
          return !CheckBatchCase(candidate).empty();
        };
    const std::function<std::vector<BatchCase>(const BatchCase&)>
        candidates = [](const BatchCase& current) {
          std::vector<BatchCase> out;
          if (current.m > 1) {
            BatchCase smaller = current;
            smaller.m = current.m / 2;
            out.push_back(smaller);
          }
          if (current.n > 1) {
            BatchCase shorter = current;
            shorter.n = current.n / 2;
            out.push_back(shorter);
          }
          if (current.lanes > 1) {
            BatchCase fewer = current;
            fewer.lanes = current.lanes - 1;
            out.push_back(fewer);
          }
          if (current.claim_trials > 1) {
            BatchCase quicker = current;
            quicker.claim_trials = current.claim_trials / 2;
            out.push_back(quicker);
          }
          return out;
        };
    ShrinkStats stats;
    const BatchCase shrunk = GreedyShrink(
        c, still_fails, candidates, /*max_attempts=*/200, &stats);

    outcome.passed = false;
    outcome.failure = CheckBatchCase(shrunk);
    outcome.counterexample = RenderBatchCase(shrunk);
    outcome.shrink_attempts = stats.attempts;
    return outcome;
  }
};

}  // namespace

std::unique_ptr<Suite> MakeFingerprintBatchSuite() {
  return std::make_unique<FingerprintBatchSuite>();
}

}  // namespace rstlab::conform
