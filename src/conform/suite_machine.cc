// Machine-level oracles.
//
// tm-nlm: Lemma 16 operationalized — for any machine, input and choice
// sequence, the list-machine run produced by `SimulateTmAsNlm` must
// agree with the Turing machine run on halting, acceptance and the
// per-tape reversal counts. This is the invariant that lets Lemma 18
// transfer acceptance *probabilities*: it must hold per choice
// sequence, not just on average.
//
// certificate: the static analyzer's resource certificate (RST015
// contract) — `check::Analyze`'s per-tape reversal bounds and internal
// cell bounds are upper bounds over *every* run, so no measured
// `RunCosts` may ever exceed them, on shipped machines or on freshly
// generated random ones.

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "check/analyzer.h"
#include "check/registry.h"
#include "conform/case_id.h"
#include "conform/gen.h"
#include "conform/shrink.h"
#include "conform/suites.h"
#include "listmachine/simulation.h"
#include "machine/machine_builder.h"
#include "machine/turing_machine.h"
#include "util/random.h"

namespace rstlab::conform {

namespace {

constexpr std::size_t kMaxSteps = 20000;

/// The zoo machines paired with the input-field count their tape-0
/// encoding expects (fields are joined as v_1# ... v_k#).
struct PoolEntry {
  const char* name;
  machine::MachineSpec (*make)();
  std::size_t fields;
};

const PoolEntry kZooPool[] = {
    {"zoo.first-symbol-one", &machine::zoo::FirstSymbolOne, 1},
    {"zoo.even-ones", &machine::zoo::EvenOnes, 1},
    {"zoo.fair-coin", &machine::zoo::FairCoin, 1},
    {"zoo.guess-first-bit", &machine::zoo::GuessFirstBit, 1},
    {"zoo.two-field-equality", &machine::zoo::TwoFieldEquality, 2},
    {"zoo.palindrome", &machine::zoo::Palindrome, 1},
    {"zoo.balanced-zeros-ones", &machine::zoo::BalancedZerosOnes, 1},
};

struct TmNlmCase {
  std::string machine_name;
  machine::MachineSpec spec;
  std::vector<std::string> fields;
  std::vector<std::uint64_t> choices;
};

std::string JoinFields(const std::vector<std::string>& fields) {
  std::string input;
  for (const std::string& field : fields) {
    input += field;
    input += '#';
  }
  return input;
}

std::string RenderTmNlmCase(const TmNlmCase& c) {
  std::string out = c.machine_name + " input=\"" + JoinFields(c.fields) +
                    "\" choices=[";
  for (std::size_t i = 0; i < c.choices.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(c.choices[i]);
  }
  return out + "]";
}

/// "" when TM and simulated NLM agree on this case.
std::string CheckTmNlmCase(const TmNlmCase& c) {
  Result<machine::TuringMachine> tm =
      machine::TuringMachine::Create(c.spec);
  if (!tm.ok()) {
    return "executor rejects spec: " + tm.status().ToString();
  }
  const machine::RunResult tm_run =
      tm.value().RunWithChoices(JoinFields(c.fields), c.choices,
                                kMaxSteps);
  Result<listmachine::SimulationResult> sim = listmachine::SimulateTmAsNlm(
      tm.value(), c.fields, c.choices, kMaxSteps);
  if (!sim.ok()) {
    return "simulation failed: " + sim.status().ToString();
  }
  const listmachine::SimulationResult& s = sim.value();
  if (s.tm_halted != tm_run.halted) {
    return "halted: tm=" + std::to_string(tm_run.halted) +
           " sim=" + std::to_string(s.tm_halted);
  }
  if (!tm_run.halted) return "";  // both hit the budget; nothing to compare
  if (s.tm_accepted != tm_run.accepted) {
    return "tm accepted: direct=" + std::to_string(tm_run.accepted) +
           " via-sim=" + std::to_string(s.tm_accepted);
  }
  // Self-test fault: negate the simulated list machine's verdict — the
  // exact disagreement Lemma 16 forbids.
  const bool nlm_accepted = s.run.accepted != FaultInjectionEnabled();
  if (nlm_accepted != tm_run.accepted) {
    return "acceptance: tm=" + std::to_string(tm_run.accepted) +
           " nlm=" + std::to_string(nlm_accepted);
  }
  if (s.run.reversals.size() != tm_run.costs.external_reversals.size()) {
    return "reversal arity: tm=" +
           std::to_string(tm_run.costs.external_reversals.size()) +
           " nlm=" + std::to_string(s.run.reversals.size());
  }
  for (std::size_t i = 0; i < s.run.reversals.size(); ++i) {
    if (s.run.reversals[i] != tm_run.costs.external_reversals[i]) {
      return "reversals on tape " + std::to_string(i) +
             ": tm=" + std::to_string(tm_run.costs.external_reversals[i]) +
             " nlm=" + std::to_string(s.run.reversals[i]);
    }
  }
  return "";
}

class TmNlmSuite final : public Suite {
 public:
  const char* name() const override { return "tm-nlm"; }
  const char* description() const override {
    return "TM vs simulated NLM: acceptance and reversal agreement "
           "(Lemma 16)";
  }

  CaseOutcome RunCase(std::uint64_t seed,
                      std::uint64_t index) const override {
    Rng rng(CaseRngSeed(CaseId{name(), seed, index}));
    TmNlmCase c;
    // Mostly zoo machines (hand-written heads that turn mid-content),
    // sometimes a random layered machine.
    if (rng.Bernoulli(0.25)) {
      c.machine_name = "random-layered";
      c.spec = GenMachineSpec()(rng, 4 + index % 8);
      c.fields.push_back(RandomField(rng, 1 + rng.UniformBelow(7)));
    } else {
      const PoolEntry& entry =
          kZooPool[rng.UniformBelow(std::size(kZooPool))];
      c.machine_name = entry.name;
      c.spec = entry.make();
      for (std::size_t f = 0; f < entry.fields; ++f) {
        c.fields.push_back(RandomField(rng, 1 + rng.UniformBelow(7)));
      }
      // Equal fields half the time so equality/palindrome machines
      // exercise their accepting paths too.
      if (entry.fields == 2 && rng.Bernoulli(0.5)) {
        c.fields[1] = c.fields[0];
      }
    }
    c.choices.resize(64);
    for (std::uint64_t& choice : c.choices) {
      choice = rng.UniformBelow(4);
    }

    CaseOutcome outcome;
    std::string failure = CheckTmNlmCase(c);
    if (failure.empty()) return outcome;

    const std::function<bool(const TmNlmCase&)> still_fails =
        [](const TmNlmCase& candidate) {
          return !CheckTmNlmCase(candidate).empty();
        };
    const std::function<std::vector<TmNlmCase>(const TmNlmCase&)>
        candidates = [](const TmNlmCase& current) {
          std::vector<TmNlmCase> out;
          // Shorten each field (drop last bit, keeping fields
          // non-empty so the instance stays in the generated space and
          // the failure cannot morph into an encoding error), then
          // drop choices.
          for (std::size_t f = 0; f < current.fields.size(); ++f) {
            if (current.fields[f].size() <= 1) continue;
            TmNlmCase shorter = current;
            shorter.fields[f].pop_back();
            out.push_back(std::move(shorter));
          }
          if (current.choices.size() > 1) {
            TmNlmCase fewer = current;
            fewer.choices.resize(current.choices.size() / 2);
            out.push_back(std::move(fewer));
          }
          return out;
        };
    ShrinkStats stats;
    const TmNlmCase shrunk = GreedyShrink(
        std::move(c), still_fails, candidates, /*max_attempts=*/500,
        &stats);

    outcome.passed = false;
    outcome.failure = CheckTmNlmCase(shrunk);
    outcome.counterexample = RenderTmNlmCase(shrunk);
    outcome.shrink_attempts = stats.attempts;
    return outcome;
  }

 private:
  static std::string RandomField(Rng& rng, std::size_t length) {
    std::string field;
    for (std::size_t i = 0; i < length; ++i) {
      field.push_back(rng.Bernoulli(0.5) ? '1' : '0');
    }
    return field;
  }
};

// ---------------------------------------------------------------------

struct CertificateCase {
  std::string machine_name;
  machine::MachineSpec spec;
  check::AnalyzeOptions options;
  std::string input;
  std::uint64_t run_seed = 0;
  std::size_t runs = 4;
};

std::string RenderCertificateCase(const CertificateCase& c) {
  return c.machine_name + " input=\"" + c.input +
         "\" run_seed=" + std::to_string(c.run_seed) +
         " runs=" + std::to_string(c.runs);
}

/// "" when every measured run stays inside the static certificate.
std::string CheckCertificateCase(const CertificateCase& c) {
  const check::Analysis analysis = check::Analyze(c.spec, c.options);
  Result<machine::TuringMachine> tm =
      machine::TuringMachine::Create(c.spec);
  if (!tm.ok()) {
    return "executor rejects spec: " + tm.status().ToString();
  }
  Rng rng(c.run_seed);
  for (std::size_t i = 0; i < c.runs; ++i) {
    const machine::RunResult run =
        tm.value().RunRandomized(c.input, rng, kMaxSteps);
    const Status certified = check::CheckCostsAgainstCertificate(
        run.costs, analysis.resources, c.input.size());
    if (!certified.ok()) {
      return "run " + std::to_string(i) + ": " + certified.ToString();
    }
    // Internal consistency of the executor's own bill: the measured
    // scan bound is defined as 1 + sum of external reversals.
    std::uint64_t total = 1;
    for (const std::uint64_t rev : run.costs.external_reversals) {
      total += rev;
    }
    // Self-test fault: claim one extra scan, breaking Definition 1's
    // r = 1 + sum(reversals) identity the executor must maintain.
    const std::uint64_t scan_bound =
        run.costs.scan_bound + (FaultInjectionEnabled() ? 1 : 0);
    if (scan_bound != total) {
      return "run " + std::to_string(i) + ": scan_bound=" +
             std::to_string(scan_bound) +
             " != 1 + sum(reversals)=" + std::to_string(total);
    }
  }
  return "";
}

class CertificateSuite final : public Suite {
 public:
  const char* name() const override { return "certificate"; }
  const char* description() const override {
    return "static Analyze certificate dominates measured RunCosts "
           "(RST015)";
  }

  CaseOutcome RunCase(std::uint64_t seed,
                      std::uint64_t index) const override {
    Rng rng(CaseRngSeed(CaseId{name(), seed, index}));
    CertificateCase c;
    c.run_seed = rng.Next64();
    c.runs = 4;

    // Half the cases probe the shipped registry (sample inputs plus a
    // mutation of one), half probe fresh random machines.
    const std::vector<check::CheckedMachine> registry =
        check::AllCheckedMachines();
    if (!registry.empty() && rng.Bernoulli(0.5)) {
      const check::CheckedMachine& entry =
          registry[rng.UniformBelow(registry.size())];
      c.machine_name = "registry." + entry.name;
      c.spec = entry.spec;
      c.options = entry.options;
      if (!entry.sample_inputs.empty()) {
        c.input = entry.sample_inputs[rng.UniformBelow(
            entry.sample_inputs.size())];
        MutateInput(&c.input, rng);
      }
    } else {
      c.machine_name = "random-layered";
      c.spec = GenMachineSpec()(rng, 4 + index % 8);
      const std::size_t length = rng.UniformBelow(10);
      for (std::size_t i = 0; i < length; ++i) {
        c.input.push_back(rng.Bernoulli(0.5) ? '1' : '0');
      }
    }

    CaseOutcome outcome;
    std::string failure = CheckCertificateCase(c);
    if (failure.empty()) return outcome;

    const std::function<bool(const CertificateCase&)> still_fails =
        [](const CertificateCase& candidate) {
          return !CheckCertificateCase(candidate).empty();
        };
    const std::function<std::vector<CertificateCase>(
        const CertificateCase&)>
        candidates = [](const CertificateCase& current) {
          std::vector<CertificateCase> out;
          if (!current.input.empty()) {
            CertificateCase halved = current;
            halved.input.resize(current.input.size() / 2);
            out.push_back(std::move(halved));
            CertificateCase shorter = current;
            shorter.input.pop_back();
            out.push_back(std::move(shorter));
          }
          if (current.runs > 1) {
            CertificateCase fewer = current;
            fewer.runs = 1;
            out.push_back(std::move(fewer));
          }
          return out;
        };
    ShrinkStats stats;
    const CertificateCase shrunk = GreedyShrink(
        std::move(c), still_fails, candidates, /*max_attempts=*/300,
        &stats);

    outcome.passed = false;
    outcome.failure = CheckCertificateCase(shrunk);
    outcome.counterexample = RenderCertificateCase(shrunk);
    outcome.shrink_attempts = stats.attempts;
    return outcome;
  }

 private:
  /// Flips one 0/1 character or truncates — stays near the sample's
  /// format while probing inputs the author did not hand-pick.
  static void MutateInput(std::string* input, Rng& rng) {
    if (input->empty() || rng.Bernoulli(0.3)) return;
    const std::size_t at = rng.UniformBelow(input->size());
    char& c = (*input)[at];
    if (c == '0') {
      c = '1';
    } else if (c == '1') {
      c = '0';
    } else if (rng.Bernoulli(0.5)) {
      input->resize(at);
    }
  }
};

}  // namespace

std::unique_ptr<Suite> MakeTmNlmSuite() {
  return std::make_unique<TmNlmSuite>();
}

std::unique_ptr<Suite> MakeCertificateSuite() {
  return std::make_unique<CertificateSuite>();
}

}  // namespace rstlab::conform
