#ifndef RSTLAB_OBS_JSONL_SINK_H_
#define RSTLAB_OBS_JSONL_SINK_H_

#include <fstream>
#include <mutex>
#include <string>

#include "obs/trace.h"

namespace rstlab::obs {

/// Formats one event as a single-line JSON object, e.g.
/// `{"ev":"reversal","tape":0,"trial":0,"scan":1,"pos":12,"dir":-1}`.
/// Every event carries the fixed keys ev/tape/trial/scan/pos/dir/value;
/// kScanEnd adds lo/hi and labelled events add "label". Keys appear in
/// that order, so the output is byte-deterministic for a fixed stream.
std::string FormatEventJson(const TraceEvent& event);

/// Streams trace events to a file, one JSON object per line (the
/// `--trace=FILE` exporter). Thread-safe; events arriving from trial-
/// engine workers interleave at line granularity, each line stamped
/// with its trial id so a post-processor can re-group them.
class JsonlSink : public TraceSink {
 public:
  /// Opens (truncates) `path`. Check `ok()` before relying on output.
  explicit JsonlSink(const std::string& path);

  /// True iff the file opened and every write so far succeeded.
  bool ok() const;

  /// The path given at construction.
  const std::string& path() const { return path_; }

  /// Lines written so far.
  std::uint64_t lines() const;

  void OnEvent(const TraceEvent& event) override;

  /// Flushes buffered lines to the file.
  void Flush();

 private:
  const std::string path_;
  mutable std::mutex mutex_;
  std::ofstream out_;
  std::uint64_t lines_ = 0;
};

}  // namespace rstlab::obs

#endif  // RSTLAB_OBS_JSONL_SINK_H_
