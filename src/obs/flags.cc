#include "obs/flags.h"

#include <cstring>

namespace rstlab::obs {

ObsOptions ParseObsFlags(int* argc, char** argv) {
  ObsOptions options;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--trace=", 8) == 0) {
      options.trace_path = arg + 8;
      continue;
    }
    if (std::strcmp(arg, "--metrics") == 0) {
      options.metrics = true;
      continue;
    }
    argv[out++] = argv[i];
  }
  for (int i = out; i < *argc; ++i) argv[i] = nullptr;
  *argc = out;
  return options;
}

ObsSession::ObsSession(const ObsOptions& options, std::string bench_name)
    : bench_name_(std::move(bench_name)) {
  if (!options.trace_path.empty()) {
    jsonl_ = std::make_unique<JsonlSink>(options.trace_path);
  }
  if (options.metrics) {
    registry_ = std::make_unique<MetricsRegistry>();
    counting_ = std::make_unique<CountingSink>(*registry_, jsonl_.get());
  }
  if (TraceSink* s = sink()) {
    s->OnEvent(MakeRunEvent(EventKind::kRunBegin, 0, bench_name_));
  }
}

TraceSink* ObsSession::sink() {
  if (counting_ != nullptr) return counting_.get();
  return jsonl_.get();
}

MetricsRegistry* ObsSession::metrics() { return registry_.get(); }

void ObsSession::Finish(std::ostream& os) {
  if (finished_) return;
  finished_ = true;
  if (TraceSink* s = sink()) {
    s->OnEvent(MakeRunEvent(EventKind::kRunEnd, 0, bench_name_));
  }
  if (jsonl_ != nullptr) {
    jsonl_->Flush();
    if (jsonl_->ok()) {
      os << "trace -> " << jsonl_->path() << " (" << jsonl_->lines()
         << " events)\n";
    } else {
      os << "warning: trace file " << jsonl_->path()
         << " could not be written\n";
    }
  }
  if (registry_ != nullptr) {
    os << "metrics (" << bench_name_ << "):\n";
    registry_->Print(os);
  }
  os << "\n";
}

}  // namespace rstlab::obs
