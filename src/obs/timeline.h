#ifndef RSTLAB_OBS_TIMELINE_H_
#define RSTLAB_OBS_TIMELINE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace rstlab::obs {

/// Renders a captured event stream as a human-readable per-tape scan
/// timeline: one line per scan segment showing its head-position
/// envelope as a bar scaled to the largest position in the stream,
/// e.g.
///
///   tape 0: scans=2 reversals=1 span=[0,12]
///     scan 0 -> 0..12 |===========>|
///     scan 1 <- 12..0 |<===========|
///
/// Segments still open at the end of the stream (no kScanEnd — call
/// `Tape::FlushTrace()` to close them) are listed as `(open)`. A final
/// line reports the arena high-water mark when the stream contains
/// kArenaHighWater events. `width` is the bar width in characters.
std::string RenderScanTimeline(const std::vector<TraceEvent>& events,
                               std::size_t width = 48);

}  // namespace rstlab::obs

#endif  // RSTLAB_OBS_TIMELINE_H_
