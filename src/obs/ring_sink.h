#ifndef RSTLAB_OBS_RING_SINK_H_
#define RSTLAB_OBS_RING_SINK_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "obs/trace.h"

namespace rstlab::obs {

/// In-memory bounded trace sink for tests and post-run analysis.
///
/// Keeps the most recent `capacity` events; older events are dropped
/// (and counted) rather than growing without bound, so a ring can be
/// left attached to a long run. Thread-safe.
class RingSink : public TraceSink {
 public:
  /// A ring holding at most `capacity` events (0 is clamped to 1).
  explicit RingSink(std::size_t capacity = 4096);

  void OnEvent(const TraceEvent& event) override;

  /// The retained events, oldest first.
  std::vector<TraceEvent> Snapshot() const;

  /// Total events ever delivered.
  std::uint64_t total() const;

  /// Events discarded because the ring was full.
  std::uint64_t dropped() const;

  /// Forgets all retained events and resets the counters.
  void Clear();

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> ring_;
  std::size_t next_ = 0;  // insertion cursor once the ring is full
  std::uint64_t total_ = 0;
};

}  // namespace rstlab::obs

#endif  // RSTLAB_OBS_RING_SINK_H_
