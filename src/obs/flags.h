#ifndef RSTLAB_OBS_FLAGS_H_
#define RSTLAB_OBS_FLAGS_H_

#include <memory>
#include <ostream>
#include <string>

#include "obs/jsonl_sink.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rstlab::obs {

/// Observability options shared by every bench binary.
struct ObsOptions {
  /// Destination for the JSON-lines trace (empty = no trace file).
  std::string trace_path;
  /// Whether to tally trace-derived metrics and print/record them.
  bool metrics = false;
};

/// Extracts `--trace=FILE` and `--metrics` from argv (removing them, so
/// downstream flag parsers — e.g. google-benchmark — never see them).
ObsOptions ParseObsFlags(int* argc, char** argv);

/// Owns a bench binary's observability plumbing for one invocation:
/// the JSON-lines exporter behind `--trace=FILE`, the metrics registry
/// behind `--metrics`, and the run begin/end markers. With neither flag
/// given, `sink()` is nullptr and every emitter stays on its null-sink
/// fast path.
class ObsSession {
 public:
  /// Builds the sink chain for `options` and emits the kRunBegin
  /// marker labelled `bench_name`.
  ObsSession(const ObsOptions& options, std::string bench_name);

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  /// The sink to install on runners/contexts, or nullptr when the
  /// invocation is untraced.
  TraceSink* sink();

  /// The metrics registry, or nullptr unless `--metrics` was given.
  MetricsRegistry* metrics();

  /// True iff `--trace=FILE` was given (whether or not it opened).
  bool tracing() const { return jsonl_ != nullptr; }

  /// Emits the kRunEnd marker, flushes the trace file, and prints the
  /// metrics summary (when enabled) plus the trace destination to `os`.
  void Finish(std::ostream& os);

 private:
  std::string bench_name_;
  std::unique_ptr<JsonlSink> jsonl_;
  std::unique_ptr<MetricsRegistry> registry_;
  std::unique_ptr<CountingSink> counting_;
  bool finished_ = false;
};

}  // namespace rstlab::obs

#endif  // RSTLAB_OBS_FLAGS_H_
