#include "obs/jsonl_sink.h"

#include <sstream>

namespace rstlab::obs {

namespace {

/// Minimal JSON string escaping for the labels we emit (bench names).
std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

std::string FormatEventJson(const TraceEvent& event) {
  std::ostringstream os;
  os << "{\"ev\":\"" << EventKindName(event.kind) << "\""
     << ",\"tape\":" << event.tape_id << ",\"trial\":" << event.trial
     << ",\"scan\":" << event.scan << ",\"pos\":" << event.position;
  if (event.kind == EventKind::kScanEnd) {
    os << ",\"lo\":" << event.lo << ",\"hi\":" << event.hi;
  }
  os << ",\"dir\":" << event.direction << ",\"value\":" << event.value;
  if (!event.label.empty()) {
    os << ",\"label\":\"" << EscapeJson(event.label) << "\"";
  }
  os << "}";
  return os.str();
}

JsonlSink::JsonlSink(const std::string& path)
    : path_(path), out_(path, std::ios::trunc) {}

bool JsonlSink::ok() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return out_.good();
}

std::uint64_t JsonlSink::lines() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lines_;
}

void JsonlSink::OnEvent(const TraceEvent& event) {
  const std::string line = FormatEventJson(event);
  std::lock_guard<std::mutex> lock(mutex_);
  if (!out_.is_open()) return;
  out_ << line << "\n";
  ++lines_;
}

void JsonlSink::Flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (out_.is_open()) out_.flush();
}

}  // namespace rstlab::obs
