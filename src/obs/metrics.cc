#include "obs/metrics.h"

#include <sstream>

namespace rstlab::obs {

void MetricsRegistry::Add(const std::string& name, std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_[name] += delta;
}

void MetricsRegistry::SetGauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  gauges_[name] = value;
}

std::uint64_t MetricsRegistry::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

double MetricsRegistry::gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::Snapshot()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(counters_.size() + gauges_.size());
  for (const auto& [name, value] : counters_) {
    out.emplace_back(name, static_cast<double>(value));
  }
  for (const auto& [name, value] : gauges_) out.emplace_back(name, value);
  return out;
}

std::string MetricsRegistry::ToJsonObject() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  os << "{";
  bool first = true;
  // counters_ and gauges_ are each name-sorted; emit counters first to
  // keep the rendering deterministic without merging the key spaces.
  for (const auto& [name, value] : counters_) {
    os << (first ? "" : ",") << "\"" << name << "\":" << value;
    first = false;
  }
  for (const auto& [name, value] : gauges_) {
    std::ostringstream num;
    num.precision(9);
    num << value;
    os << (first ? "" : ",") << "\"" << name << "\":" << num.str();
    first = false;
  }
  os << "}";
  return os.str();
}

void MetricsRegistry::Print(std::ostream& os) const {
  for (const auto& [name, value] : Snapshot()) {
    os << "  " << name << " = " << value << "\n";
  }
}

void CountingSink::OnEvent(const TraceEvent& event) {
  registry_.Add("trace.events");
  registry_.Add(std::string("trace.") + EventKindName(event.kind));
  if (event.kind == EventKind::kArenaHighWater) {
    registry_.SetGauge("arena.high_water_bits",
                       static_cast<double>(event.value));
  }
  if (inner_ != nullptr) inner_->OnEvent(event);
}

}  // namespace rstlab::obs
