#include "obs/timeline.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace rstlab::obs {

namespace {

struct Segment {
  std::uint64_t scan = 0;
  std::uint64_t begin_pos = 0;
  std::uint64_t end_pos = 0;
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  int direction = +1;
  bool open = false;
};

struct TapeTimeline {
  std::vector<Segment> segments;
  std::uint64_t reversals = 0;
  bool has_open = false;
  Segment pending;
};

/// One envelope bar: '=' across [lo, hi] scaled to [0, max_pos], with
/// an arrowhead on the side the head ended on.
std::string Bar(const Segment& seg, std::uint64_t max_pos,
                std::size_t width) {
  std::string bar(width, ' ');
  const double scale =
      max_pos == 0 ? 0.0
                   : static_cast<double>(width - 1) /
                         static_cast<double>(max_pos);
  auto col = [&](std::uint64_t pos) {
    return static_cast<std::size_t>(static_cast<double>(pos) * scale);
  };
  const std::size_t from = col(seg.lo);
  const std::size_t to = col(seg.hi);
  for (std::size_t i = from; i <= to && i < width; ++i) bar[i] = '=';
  const std::size_t head = col(seg.end_pos);
  if (head < width) bar[head] = seg.direction > 0 ? '>' : '<';
  return "|" + bar + "|";
}

}  // namespace

std::string RenderScanTimeline(const std::vector<TraceEvent>& events,
                               std::size_t width) {
  width = std::max<std::size_t>(8, width);
  std::map<std::int32_t, TapeTimeline> tapes;
  std::uint64_t max_pos = 0;
  std::uint64_t high_water = 0;
  bool saw_high_water = false;
  std::uint64_t trials = 0;

  for (const TraceEvent& event : events) {
    max_pos = std::max({max_pos, event.position, event.hi});
    switch (event.kind) {
      case EventKind::kScanBegin: {
        TapeTimeline& tl = tapes[event.tape_id];
        // A re-begin of the same segment index is a reset (AttachTrace
        // followed by LoadInput), not a new segment: replace the
        // pending one instead of emitting a phantom zero-length scan.
        if (tl.has_open && tl.pending.scan != event.scan) {
          tl.segments.push_back(tl.pending);
        }
        tl.pending = Segment{event.scan,     event.position,
                             event.position, event.position,
                             event.position, event.direction,
                             /*open=*/true};
        tl.has_open = true;
        break;
      }
      case EventKind::kScanEnd: {
        TapeTimeline& tl = tapes[event.tape_id];
        // The begin position comes from the matching kScanBegin when we
        // saw it; a lone kScanEnd (begin outside the capture window)
        // starts at whichever envelope end the direction implies.
        std::uint64_t begin_pos = event.direction > 0 ? event.lo : event.hi;
        if (tl.has_open && tl.pending.scan == event.scan) {
          begin_pos = tl.pending.begin_pos;
        }
        tl.segments.push_back(Segment{event.scan, begin_pos,
                                      event.position, event.lo, event.hi,
                                      event.direction, /*open=*/false});
        tl.has_open = false;
        break;
      }
      case EventKind::kReversal:
        tapes[event.tape_id].reversals += 1;
        break;
      case EventKind::kArenaHighWater:
        high_water = std::max(high_water, event.value);
        saw_high_water = true;
        break;
      case EventKind::kTrialBegin:
        ++trials;
        break;
      default:
        break;
    }
  }

  std::ostringstream os;
  if (trials > 0) os << "trials traced: " << trials << "\n";
  for (auto& [tape_id, tl] : tapes) {
    if (tl.has_open) {
      tl.pending.end_pos = tl.pending.begin_pos;
      tl.segments.push_back(tl.pending);
      tl.has_open = false;
    }
    std::uint64_t span_lo = 0;
    std::uint64_t span_hi = 0;
    if (!tl.segments.empty()) {
      span_lo = tl.segments.front().lo;
      span_hi = tl.segments.front().hi;
      for (const Segment& seg : tl.segments) {
        span_lo = std::min(span_lo, seg.lo);
        span_hi = std::max(span_hi, seg.hi);
      }
    }
    os << "tape " << tape_id << ": scans=" << tl.segments.size()
       << " reversals=" << tl.reversals << " span=[" << span_lo << ","
       << span_hi << "]\n";
    for (const Segment& seg : tl.segments) {
      os << "  scan " << seg.scan << " "
         << (seg.direction > 0 ? "->" : "<-") << " " << seg.begin_pos
         << ".." << seg.end_pos << " " << Bar(seg, max_pos, width)
         << (seg.open ? " (open)" : "") << "\n";
    }
  }
  if (saw_high_water) {
    os << "arena high-water: " << high_water << " bits\n";
  }
  return os.str();
}

}  // namespace rstlab::obs
