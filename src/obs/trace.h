#ifndef RSTLAB_OBS_TRACE_H_
#define RSTLAB_OBS_TRACE_H_

#include <cstdint>
#include <string>

namespace rstlab::obs {

/// The typed run-trace events the metered substrates emit.
///
/// A trace is the event-level counterpart of a `ResourceReport`: where
/// the report gives the final Definition-1 bill `(r, s, t)`, the trace
/// says *where* each unit was spent — which tape reversed at which head
/// position, how each scan segment's head-position envelope evolved,
/// when the internal arena reached a new high-water mark. Downstream
/// consumers replay the stream (compliance pinpointing, the scan
/// timeline renderer) or export it (JSON lines).
enum class EventKind : std::uint8_t {
  /// An StContext run started (`value` = input size N) or a bench
  /// binary's whole invocation started (`label` = binary name).
  kRunBegin,
  /// Matching end marker for kRunBegin.
  kRunEnd,
  /// A Monte-Carlo trial started on the trial engine (`trial` set).
  kTrialBegin,
  /// Matching end marker for kTrialBegin.
  kTrialEnd,
  /// A tape began scan segment `scan` at `position`, heading
  /// `direction`.
  kScanBegin,
  /// A tape finished scan segment `scan` at `position`; `lo`/`hi` give
  /// the segment's head-position envelope.
  kScanEnd,
  /// A tape's head flipped direction at `position`; `direction` is the
  /// new direction. One kReversal == one unit of rev(rho, i).
  kReversal,
  /// The internal arena reached a new high-water mark of `value` bits.
  kArenaHighWater,
};

/// Short stable name for `kind` (used by the JSON exporter and tests).
const char* EventKindName(EventKind kind);

/// One trace event. A single flat struct covers every kind; fields not
/// listed for a kind above are zero / empty.
struct TraceEvent {
  EventKind kind = EventKind::kRunBegin;
  /// Tape index within the emitting context, or -1 when the event is
  /// not tape-scoped.
  std::int32_t tape_id = -1;
  /// Trial number for kTrialBegin/kTrialEnd (0 outside the engine).
  std::uint64_t trial = 0;
  /// Scan-segment index on the emitting tape (segment 0 starts at
  /// reset; each reversal opens the next).
  std::uint64_t scan = 0;
  /// Head position at the event.
  std::uint64_t position = 0;
  /// Lowest / highest head position of a finished segment (kScanEnd).
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  /// Head direction after the event: +1 right, -1 left.
  int direction = +1;
  /// Kind-specific payload (input size N, high-water bits, ...).
  std::uint64_t value = 0;
  /// Optional free-form label (bench name on the run markers).
  std::string label;
};

/// Receiver of trace events.
///
/// The null sink is represented by a plain `nullptr`: every emitter
/// guards with `if (sink != nullptr)`, so an untraced run pays one
/// predictable branch per *reversal* (not per move) and nothing else.
/// Sinks installed on a `TrialRunner` receive events from worker
/// threads concurrently and must be thread-safe; the sinks shipped in
/// this module all are.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// Delivers one event. Implementations must not re-enter the emitter.
  virtual void OnEvent(const TraceEvent& event) = 0;
};

/// Forwards every event to two downstream sinks (either may be null),
/// e.g. a JSON-lines file plus an in-memory ring for rendering.
class TeeSink : public TraceSink {
 public:
  TeeSink(TraceSink* first, TraceSink* second)
      : first_(first), second_(second) {}

  void OnEvent(const TraceEvent& event) override {
    if (first_ != nullptr) first_->OnEvent(event);
    if (second_ != nullptr) second_->OnEvent(event);
  }

 private:
  TraceSink* first_;
  TraceSink* second_;
};

/// Convenience constructors for the non-tape-scoped events.
TraceEvent MakeTrialEvent(EventKind kind, std::uint64_t trial);
TraceEvent MakeRunEvent(EventKind kind, std::uint64_t value,
                        std::string label = {});

}  // namespace rstlab::obs

#endif  // RSTLAB_OBS_TRACE_H_
