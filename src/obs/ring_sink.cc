#include "obs/ring_sink.h"

#include <algorithm>

namespace rstlab::obs {

RingSink::RingSink(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {
  ring_.reserve(std::min<std::size_t>(capacity_, 1024));
}

void RingSink::OnEvent(const TraceEvent& event) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
    return;
  }
  ring_[next_] = event;
  next_ = (next_ + 1) % capacity_;
}

std::vector<TraceEvent> RingSink::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  // Oldest first: the slice [next_, end) precedes [0, next_) once the
  // ring has wrapped; before wrapping next_ is 0 and this is a copy.
  out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(next_),
             ring_.end());
  out.insert(out.end(), ring_.begin(),
             ring_.begin() + static_cast<std::ptrdiff_t>(next_));
  return out;
}

std::uint64_t RingSink::total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

std::uint64_t RingSink::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_ - ring_.size();
}

void RingSink::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  next_ = 0;
  total_ = 0;
}

}  // namespace rstlab::obs
