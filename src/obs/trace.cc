#include "obs/trace.h"

namespace rstlab::obs {

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kRunBegin:
      return "run_begin";
    case EventKind::kRunEnd:
      return "run_end";
    case EventKind::kTrialBegin:
      return "trial_begin";
    case EventKind::kTrialEnd:
      return "trial_end";
    case EventKind::kScanBegin:
      return "scan_begin";
    case EventKind::kScanEnd:
      return "scan_end";
    case EventKind::kReversal:
      return "reversal";
    case EventKind::kArenaHighWater:
      return "arena_high_water";
  }
  return "unknown";
}

TraceEvent MakeTrialEvent(EventKind kind, std::uint64_t trial) {
  TraceEvent event;
  event.kind = kind;
  event.trial = trial;
  return event;
}

TraceEvent MakeRunEvent(EventKind kind, std::uint64_t value,
                        std::string label) {
  TraceEvent event;
  event.kind = kind;
  event.value = value;
  event.label = std::move(label);
  return event;
}

}  // namespace rstlab::obs
