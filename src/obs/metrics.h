#ifndef RSTLAB_OBS_METRICS_H_
#define RSTLAB_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace.h"

namespace rstlab::obs {

/// Thread-safe registry of named counters (monotone uint64) and gauges
/// (last-written double). The `--metrics` plumbing of the bench
/// binaries writes trace-derived totals here and `BenchRecorder` folds
/// a snapshot into its JSON rows; anything else (tests, tools) can use
/// it directly.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Adds `delta` to counter `name` (creating it at 0).
  void Add(const std::string& name, std::uint64_t delta = 1);

  /// Sets gauge `name` to `value`.
  void SetGauge(const std::string& name, double value);

  /// Current value of counter `name` (0 when absent).
  std::uint64_t counter(const std::string& name) const;

  /// Current value of gauge `name` (0.0 when absent).
  double gauge(const std::string& name) const;

  /// All counters then all gauges, each name-sorted.
  std::vector<std::pair<std::string, double>> Snapshot() const;

  /// Renders `{"name":value,...}` with names sorted (counters as
  /// integers, gauges with 9 significant digits); `{}` when empty.
  std::string ToJsonObject() const;

  /// Pretty-prints one `name = value` line per metric.
  void Print(std::ostream& os) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
};

/// A TraceSink that tallies events into a MetricsRegistry — one
/// `trace.<kind>` counter per event kind plus `trace.events` — and
/// forwards to an optional inner sink. Lets `--metrics` ride the same
/// wiring as `--trace` with no per-bench bookkeeping.
class CountingSink : public TraceSink {
 public:
  /// Counts into `registry`, forwarding to `inner` (may be null).
  CountingSink(MetricsRegistry& registry, TraceSink* inner = nullptr)
      : registry_(registry), inner_(inner) {}

  void OnEvent(const TraceEvent& event) override;

 private:
  MetricsRegistry& registry_;
  TraceSink* inner_;
};

}  // namespace rstlab::obs

#endif  // RSTLAB_OBS_METRICS_H_
