#ifndef RSTLAB_LISTMACHINE_MACHINES_H_
#define RSTLAB_LISTMACHINE_MACHINES_H_

#include <cstddef>
#include <optional>

#include "listmachine/list_machine.h"

namespace rstlab::listmachine {

/// The first input symbol of a cell, if any. By construction of the trace
/// strings y = a <x_1> ... <x_t> <c>, the first input symbol of a cell
/// written while scanning list 1 is the symbol of the original cell the
/// machine was reading — the "primary value" of the cell. Concrete
/// machines below use it to compare input values.
std::optional<Symbol> FirstInputSymbol(const CellContent& cell);

/// Structured access to a trace string y = a <x_1> ... <x_t> <c>: the
/// content of the `component`-th top-level bracket group (0-based, so
/// component i returns what was under head i+1 when y was written).
/// Returns nullopt for cells that are not trace strings (e.g. initial
/// <v> cells) or when the component is missing. This is the code-level
/// counterpart of the paper's remark that cell contents allow the
/// reconstruction of what they replaced.
std::optional<CellContent> TraceComponent(const CellContent& cell,
                                          std::size_t component);

/// The input symbol a cell "carries" for list `list_index` (0-based):
/// for an initial cell, its own input symbol; for a trace string, the
/// carried symbol of its x_{list_index+1} component, recursively. This
/// survives arbitrary re-writing: a cell on list j always carries the
/// input value that resided there before any trace strings piled up.
std::optional<Symbol> CarriedInputSymbol(const CellContent& cell,
                                         std::size_t list_index);

/// A deterministic machine that performs `num_sweeps` full alternating
/// sweeps over its input list, moving all `t` heads together
/// (move = true everywhere), then accepts.
///
/// Exercises the growth dynamics the paper bounds in Lemma 30: every
/// step writes the trace string onto every list, auxiliary lists grow by
/// insertion, and cell contents nest. Experiment E6 measures total list
/// length against (t+1)^r * m and cell size against 11 * max(t,2)^r.
class ZigZagMachine : public ListMachineProgram {
 public:
  /// `t` lists, `num_sweeps` sweeps over an input of `m` values.
  ZigZagMachine(std::size_t t, std::size_t num_sweeps, std::size_t m);

  std::size_t num_lists() const override { return t_; }
  std::size_t num_choices() const override { return 1; }
  StateId initial_state() const override;
  bool IsFinal(StateId state) const override;
  bool IsAccepting(StateId state) const override { return IsFinal(state); }
  TransitionResult Step(StateId state,
                        const std::vector<const CellContent*>& reads,
                        ChoiceId choice) const override;

 private:
  std::size_t t_;
  std::size_t num_sweeps_;
  std::size_t m_;
  std::size_t moves_per_sweep_;
};

/// The comparison machine of the fooling-pair experiment (E8).
///
/// Input: 2m values (v_0..v_{m-1}, v'_0..v'_{m-1}) on list 1 (positions
/// 0..2m-1). The machine has 2 lists and works in two phases:
///   * Phase A (m steps): head 1 sweeps right over the first half; each
///     step's trace string is inserted before the stationary head 2, so
///     list 2 accumulates cells whose primary values are v_0..v_{m-1} in
///     order.
///   * Phase C (`budget` steps, budget <= m): head 1 continues right over
///     the second half while head 2 sweeps left over the accumulated
///     stack; step j >= 1 compares v'_j with v_{m-j}. A mismatch rejects;
///     surviving all comparisons accepts.
///
/// The machine therefore decides "v'_j == v_{m-j} for 1 <= j < budget"
/// with 1 + 1 = 2 scans — but it can never compare positions 0 and m
/// (v_0 and v'_0): they travel in the same direction and never meet.
/// Lemma 34 turns that blind spot into an accepted "no" instance of the
/// full reverse-equality predicate; experiment E8 constructs it.
class ReverseCompareMachine : public ListMachineProgram {
 public:
  ReverseCompareMachine(std::size_t m, std::size_t budget);

  std::size_t num_lists() const override { return 2; }
  std::size_t num_choices() const override { return 1; }
  StateId initial_state() const override { return 0; }
  bool IsFinal(StateId state) const override;
  bool IsAccepting(StateId state) const override;
  TransitionResult Step(StateId state,
                        const std::vector<const CellContent*>& reads,
                        ChoiceId choice) const override;

  /// The predicate the machine *attempts* to decide, including the pair
  /// (v_0, v'_0) it cannot reach: true iff v'_j == v_{m-j} for all
  /// 1 <= j <= m-1 and v'_0 == v_0.
  static bool ReferencePredicate(const std::vector<std::uint64_t>& input,
                                 std::size_t m);

 private:
  std::size_t m_;
  std::size_t budget_;
};

/// The constructive counterpart of the ReverseCompareMachine's blind
/// spot: comparing v_i with v'_i (identity alignment) IS possible with
/// a constant number of scans, because the identity permutation has
/// sortedness m (Lemma 38 permits t^{2r} * m >= m comparisons).
///
/// Input: 2m values on list 1. Three phases:
///   * Phase A (m steps): head 1 sweeps the first half, head 2
///     stationary — list 2 accumulates cells carrying v_0..v_{m-1};
///   * Phase B (m steps): head 2 sweeps back to the left end of its
///     stack (head 1 holds);
///   * Phase C (m steps): both heads sweep right in lockstep, comparing
///     v'_j (list 1) against the carried v_j (list 2, via
///     CarriedInputSymbol — phase B buried the stack cells under trace
///     strings, so the structured extraction is what makes this machine
///     possible).
/// Accepts iff v_j == v'_j for all j. Uses 2 reversals on list 2 and
/// none on list 1: scan bound 3.
class IdentityCompareMachine : public ListMachineProgram {
 public:
  explicit IdentityCompareMachine(std::size_t m);

  std::size_t num_lists() const override { return 2; }
  std::size_t num_choices() const override { return 1; }
  StateId initial_state() const override;
  bool IsFinal(StateId state) const override;
  bool IsAccepting(StateId state) const override;
  TransitionResult Step(StateId state,
                        const std::vector<const CellContent*>& reads,
                        ChoiceId choice) const override;

  /// The predicate the machine decides: v'_j == v_j for all j.
  static bool ReferencePredicate(const std::vector<std::uint64_t>& input,
                                 std::size_t m);

 private:
  std::size_t m_;
};

/// A two-choice randomized machine: flips one coin; accepts iff the coin
/// shows 0. Used to validate the probability semantics (Lemma 25) and
/// the averaging argument (Lemma 26).
class CoinListMachine : public ListMachineProgram {
 public:
  std::size_t num_lists() const override { return 1; }
  std::size_t num_choices() const override { return 2; }
  StateId initial_state() const override { return 0; }
  bool IsFinal(StateId state) const override { return state != 0; }
  bool IsAccepting(StateId state) const override { return state == 1; }
  TransitionResult Step(StateId state,
                        const std::vector<const CellContent*>& reads,
                        ChoiceId choice) const override;
};

}  // namespace rstlab::listmachine

#endif  // RSTLAB_LISTMACHINE_MACHINES_H_
