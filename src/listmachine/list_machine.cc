#include "listmachine/list_machine.h"

#include <cassert>
#include <sstream>

namespace rstlab::listmachine {

std::uint64_t ListMachineRun::ScanBound() const {
  std::uint64_t bound = 1;
  for (std::uint64_t rev : reversals) bound += rev;
  return bound;
}

ListMachineExecutor::ListMachineExecutor(const ListMachineProgram* program)
    : program_(program) {
  assert(program != nullptr);
}

ListMachineConfig ListMachineExecutor::InitialConfiguration(
    const std::vector<std::uint64_t>& input) const {
  const std::size_t t = program_->num_lists();
  ListMachineConfig config;
  config.state = program_->initial_state();
  config.heads.assign(t, 0);
  config.directions.assign(t, +1);
  config.lists.resize(t);
  // List 1 holds <v_1> ... <v_m>; input symbols remember their position.
  std::vector<CellContent>& input_list = config.lists[0];
  if (input.empty()) {
    input_list.push_back({Symbol::Open(), Symbol::Close()});
  } else {
    for (std::size_t i = 0; i < input.size(); ++i) {
      input_list.push_back(
          {Symbol::Open(), Symbol::Input(input[i], i), Symbol::Close()});
    }
  }
  // All other lists hold a single cell containing the empty string <>.
  for (std::size_t i = 1; i < t; ++i) {
    config.lists[i].push_back({Symbol::Open(), Symbol::Close()});
  }
  return config;
}

bool ListMachineExecutor::StepOnce(
    ListMachineConfig& config, ChoiceId choice, StepRecord* record,
    std::vector<std::uint64_t>* reversals) const {
  if (program_->IsFinal(config.state)) return false;
  const std::size_t t = program_->num_lists();

  std::vector<const CellContent*> reads(t);
  for (std::size_t i = 0; i < t; ++i) {
    reads[i] = &config.lists[i][config.heads[i]];
  }

  TransitionResult tr = program_->Step(config.state, reads, choice);
  assert(tr.movements.size() == t);

  // Clamp movements at the list ends (Definition 24(c)).
  std::vector<Movement> effective(t);
  for (std::size_t i = 0; i < t; ++i) {
    Movement e = tr.movements[i];
    const std::size_t mi = config.lists[i].size();
    if (config.heads[i] == 0 && e.head_direction == -1 && e.move) {
      e = {-1, false};
    } else if (config.heads[i] == mi - 1 && e.head_direction == +1 &&
               e.move) {
      e = {+1, false};
    }
    effective[i] = e;
  }

  bool any_f = false;
  for (std::size_t i = 0; i < t; ++i) {
    if (effective[i].move ||
        effective[i].head_direction != config.directions[i]) {
      any_f = true;
      break;
    }
  }

  if (record != nullptr) {
    record->state_before = config.state;
    record->directions_before = config.directions;
    record->reads.clear();
    for (std::size_t i = 0; i < t; ++i) record->reads.push_back(*reads[i]);
    record->choice = choice;
    record->cell_moves.assign(t, 0);
  }

  if (!any_f) {
    // Only the state changes.
    config.state = tr.next_state;
    return true;
  }

  // The trace string y = a <x_1,p1> ... <x_t,pt> <c>.
  CellContent y;
  y.push_back(Symbol::State(config.state));
  for (std::size_t i = 0; i < t; ++i) {
    y.push_back(Symbol::Open());
    y.insert(y.end(), reads[i]->begin(), reads[i]->end());
    y.push_back(Symbol::Close());
  }
  y.push_back(Symbol::Open());
  y.push_back(Symbol::Choice(choice));
  y.push_back(Symbol::Close());

  for (std::size_t i = 0; i < t; ++i) {
    std::vector<CellContent>& list = config.lists[i];
    const std::size_t h = config.heads[i];
    const int d = config.directions[i];
    const Movement e = effective[i];

    int cell_move = 0;
    if (e.move) {
      list[h] = y;
      cell_move = e.head_direction;  // lands on the neighbouring cell
    } else if (d == +1) {
      list.insert(list.begin() + static_cast<std::ptrdiff_t>(h), y);
      // Old cell is now at h+1; a (+1,false) head stays on it (0), a
      // (-1,false) head lands on y, the left neighbour (-1).
      cell_move = e.head_direction == +1 ? 0 : -1;
    } else {
      list.insert(list.begin() + static_cast<std::ptrdiff_t>(h) + 1, y);
      // Old cell keeps index h; a (+1,false) head lands on y, the right
      // neighbour (+1), a (-1,false) head stays (0).
      cell_move = e.head_direction == +1 ? +1 : 0;
    }

    // New head position (Definition 24(c) table, 0-based).
    std::size_t new_head = h;
    if (e.move) {
      new_head = e.head_direction == +1 ? h + 1 : h - 1;
    } else {
      new_head = e.head_direction == +1 ? h + 1 : h;
    }
    assert(new_head < config.lists[i].size());
    config.heads[i] = new_head;

    if (e.head_direction != d) {
      if (reversals != nullptr) ++(*reversals)[i];
      config.directions[i] = e.head_direction;
    }
    if (record != nullptr) record->cell_moves[i] = cell_move;
  }

  config.state = tr.next_state;
  return true;
}

ListMachineRun ListMachineExecutor::RunWithChoices(
    const std::vector<std::uint64_t>& input,
    const std::vector<ChoiceId>& choices, std::size_t max_steps) const {
  ListMachineRun run;
  run.reversals.assign(program_->num_lists(), 0);
  ListMachineConfig config = InitialConfiguration(input);
  std::size_t step = 0;
  while (step < max_steps) {
    if (program_->IsFinal(config.state)) break;
    if (step >= choices.size()) break;
    StepRecord record;
    if (!StepOnce(config, choices[step], &record, &run.reversals)) break;
    run.steps.push_back(std::move(record));
    ++step;
  }
  run.halted = program_->IsFinal(config.state);
  run.accepted = run.halted && program_->IsAccepting(config.state);
  run.final_config = std::move(config);
  return run;
}

ListMachineRun ListMachineExecutor::RunRandomized(
    const std::vector<std::uint64_t>& input, Rng& rng,
    std::size_t max_steps) const {
  ListMachineRun run;
  run.reversals.assign(program_->num_lists(), 0);
  ListMachineConfig config = InitialConfiguration(input);
  std::size_t step = 0;
  while (step < max_steps && !program_->IsFinal(config.state)) {
    const ChoiceId c = static_cast<ChoiceId>(
        rng.UniformBelow(program_->num_choices()));
    StepRecord record;
    if (!StepOnce(config, c, &record, &run.reversals)) break;
    run.steps.push_back(std::move(record));
    ++step;
  }
  run.halted = program_->IsFinal(config.state);
  run.accepted = run.halted && program_->IsAccepting(config.state);
  run.final_config = std::move(config);
  return run;
}

Result<ListMachineRun> ListMachineExecutor::RunDeterministic(
    const std::vector<std::uint64_t>& input, std::size_t max_steps) const {
  if (program_->num_choices() != 1) {
    return Status::FailedPrecondition("machine is not deterministic");
  }
  return RunWithChoices(input, std::vector<ChoiceId>(max_steps, 0),
                        max_steps);
}

double ListMachineExecutor::AcceptanceProbability(
    const std::vector<std::uint64_t>& input, std::size_t max_steps,
    bool* truncated) const {
  if (truncated != nullptr) *truncated = false;
  const std::size_t num_choices = program_->num_choices();

  // Iterative weighted DFS over the choice tree.
  struct Frame {
    ListMachineConfig config;
    double weight;
    std::size_t steps_left;
  };
  std::vector<Frame> stack;
  stack.push_back({InitialConfiguration(input), 1.0, max_steps});
  double total = 0.0;
  while (!stack.empty()) {
    Frame frame = std::move(stack.back());
    stack.pop_back();
    if (program_->IsFinal(frame.config.state)) {
      if (program_->IsAccepting(frame.config.state)) total += frame.weight;
      continue;
    }
    if (frame.steps_left == 0) {
      if (truncated != nullptr) *truncated = true;
      continue;
    }
    const double w = frame.weight / static_cast<double>(num_choices);
    for (std::size_t c = 0; c < num_choices; ++c) {
      ListMachineConfig next = frame.config;
      if (!StepOnce(next, static_cast<ChoiceId>(c), nullptr, nullptr)) {
        continue;
      }
      stack.push_back({std::move(next), w, frame.steps_left - 1});
    }
  }
  return total;
}

std::string CellToString(const CellContent& cell) {
  std::ostringstream os;
  for (const Symbol& s : cell) {
    switch (s.kind) {
      case Symbol::Kind::kInput:
        os << "v" << s.payload << "@" << s.origin;
        break;
      case Symbol::Kind::kChoice:
        os << "c" << s.payload;
        break;
      case Symbol::Kind::kState:
        os << "a" << s.payload;
        break;
      case Symbol::Kind::kOpen:
        os << "<";
        break;
      case Symbol::Kind::kClose:
        os << ">";
        break;
    }
  }
  return os.str();
}

}  // namespace rstlab::listmachine
