#include "listmachine/skeleton.h"

#include <algorithm>
#include <sstream>

namespace rstlab::listmachine {

namespace {

/// Serializes skel(lv) = (a, d, ind(y)) for one local view.
std::string SerializeView(StateId state, const std::vector<int>& directions,
                          const std::vector<CellContent>& reads) {
  std::ostringstream os;
  os << "a" << state << "|d";
  for (int d : directions) os << (d > 0 ? '+' : '-');
  os << "|";
  for (const CellContent& cell : reads) {
    os << "[" << IndexString(cell) << "]";
  }
  return os.str();
}

/// The local view of the run's final configuration.
std::string SerializeFinalView(const ListMachineConfig& config) {
  std::vector<CellContent> reads;
  reads.reserve(config.lists.size());
  for (std::size_t i = 0; i < config.lists.size(); ++i) {
    reads.push_back(config.lists[i][config.heads[i]]);
  }
  return SerializeView(config.state, config.directions, reads);
}

bool AnyCellMove(const std::vector<int>& moves) {
  return std::any_of(moves.begin(), moves.end(),
                     [](int m) { return m != 0; });
}

void CollectPositions(const CellContent& cell,
                      std::set<std::size_t>& positions) {
  for (const Symbol& s : cell) {
    if (s.kind == Symbol::Kind::kInput) positions.insert(s.origin);
  }
}

}  // namespace

std::string IndexString(const CellContent& cell) {
  std::ostringstream os;
  for (const Symbol& s : cell) {
    switch (s.kind) {
      case Symbol::Kind::kInput:
        os << "i" << s.origin << ";";
        break;
      case Symbol::Kind::kChoice:
        os << "?;";
        break;
      case Symbol::Kind::kState:
        os << "a" << s.payload << ";";
        break;
      case Symbol::Kind::kOpen:
        os << "<";
        break;
      case Symbol::Kind::kClose:
        os << ">";
        break;
    }
  }
  return os.str();
}

RunSkeleton BuildSkeleton(const ListMachineRun& run) {
  RunSkeleton skeleton;
  const std::size_t num_steps = run.steps.size();
  skeleton.views.reserve(num_steps + 1);
  skeleton.moves.reserve(num_steps);

  auto view_at = [&](std::size_t config_index) -> std::string {
    if (config_index < num_steps) {
      const StepRecord& rec = run.steps[config_index];
      return SerializeView(rec.state_before, rec.directions_before,
                           rec.reads);
    }
    return SerializeFinalView(run.final_config);
  };

  // s_1 is always retained.
  skeleton.views.push_back(view_at(0));
  for (std::size_t step = 0; step < num_steps; ++step) {
    skeleton.moves.push_back(run.steps[step].cell_moves);
    if (AnyCellMove(run.steps[step].cell_moves)) {
      skeleton.views.push_back(view_at(step + 1));
    } else {
      skeleton.views.push_back("?");
    }
  }
  return skeleton;
}

std::string RunSkeleton::Serialize() const {
  std::ostringstream os;
  for (const std::string& v : views) os << v << "\n";
  os << "moves:";
  for (const std::vector<int>& mv : moves) {
    os << " (";
    for (int m : mv) os << (m == 0 ? '0' : (m > 0 ? '+' : '-'));
    os << ")";
  }
  return os.str();
}

std::vector<std::set<std::size_t>> RetainedViewPositions(
    const ListMachineRun& run) {
  std::vector<std::set<std::size_t>> out;
  const std::size_t num_steps = run.steps.size();

  auto positions_at = [&](std::size_t config_index) {
    std::set<std::size_t> positions;
    if (config_index < num_steps) {
      for (const CellContent& cell : run.steps[config_index].reads) {
        CollectPositions(cell, positions);
      }
    } else {
      const ListMachineConfig& fc = run.final_config;
      for (std::size_t i = 0; i < fc.lists.size(); ++i) {
        CollectPositions(fc.lists[i][fc.heads[i]], positions);
      }
    }
    return positions;
  };

  out.push_back(positions_at(0));
  for (std::size_t step = 0; step < num_steps; ++step) {
    if (AnyCellMove(run.steps[step].cell_moves)) {
      out.push_back(positions_at(step + 1));
    }
  }
  return out;
}

std::set<std::pair<std::size_t, std::size_t>> ComparedPairs(
    const ListMachineRun& run) {
  std::set<std::pair<std::size_t, std::size_t>> pairs;
  for (const std::set<std::size_t>& view : RetainedViewPositions(run)) {
    for (auto it = view.begin(); it != view.end(); ++it) {
      for (auto jt = std::next(it); jt != view.end(); ++jt) {
        pairs.emplace(*it, *jt);
      }
    }
  }
  return pairs;
}

bool ArePositionsCompared(const ListMachineRun& run, std::size_t i,
                          std::size_t j) {
  if (i == j) return true;
  if (i > j) std::swap(i, j);
  for (const std::set<std::size_t>& view : RetainedViewPositions(run)) {
    if (view.count(i) > 0 && view.count(j) > 0) return true;
  }
  return false;
}

}  // namespace rstlab::listmachine
