#include "listmachine/simulation.h"

#include <cassert>
#include <map>
#include <sstream>

namespace rstlab::listmachine {

namespace {

/// One list cell plus the tape-block boundaries it represents
/// ([begin, end), host-side bookkeeping corresponding to the paper's
/// tape_config functions).
struct BlockCell {
  CellContent content;
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// Mutable simulation state for one external tape / list.
struct ListState {
  std::vector<BlockCell> cells;
  std::size_t head = 0;  // cell index
  int direction = +1;
};

/// Serializes the abstract state of the NLM: TM state, internal tape
/// contents and heads, external head positions and current block
/// boundaries (the components enumerated below Lemma 16).
std::string AbstractStateKey(const machine::Configuration& config,
                             std::size_t num_external,
                             const std::vector<ListState>& lists) {
  std::ostringstream os;
  os << "q" << config.state << ";";
  for (std::size_t i = num_external; i < config.tapes.size(); ++i) {
    os << "i" << config.heads[i] << ":" << config.tapes[i] << ";";
  }
  for (std::size_t i = 0; i < num_external; ++i) {
    const ListState& ls = lists[i];
    const BlockCell& cur = ls.cells[ls.head];
    os << "e" << config.heads[i] << "[" << cur.begin << "," << cur.end
       << ")" << (ls.direction > 0 ? '+' : '-') << ";";
  }
  return os.str();
}

/// Value of a 0/1 field for Symbol payloads (exact for <= 64 bits, a
/// truncated prefix beyond — the payload is informational, positions are
/// what skeleton analyses use).
std::uint64_t FieldValue(const std::string& field) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < field.size() && i < 64; ++i) {
    v = (v << 1) | (field[i] == '1' ? 1u : 0u);
  }
  return v;
}

}  // namespace

Result<SimulationResult> SimulateTmAsNlm(
    const machine::TuringMachine& tm,
    const std::vector<std::string>& input_fields,
    const std::vector<std::uint64_t>& tm_choices, std::size_t max_steps) {
  const machine::MachineSpec& spec = tm.spec();
  const std::size_t t = spec.num_external_tapes;
  if (t == 0) {
    return Status::InvalidArgument("machine has no external tapes");
  }
  for (const std::string& f : input_fields) {
    for (char c : f) {
      if (c != '0' && c != '1') {
        return Status::InvalidArgument("input fields must be 0/1 strings");
      }
    }
  }

  // Input word w = v_1 # v_2 # ... v_m #.
  std::string input_word;
  for (const std::string& f : input_fields) {
    input_word += f;
    input_word += '#';
  }
  const std::size_t N = input_word.size();
  // Upper bound on tape length over the run (Lemma 3 supplies the
  // theoretical bound; operationally the TM can visit at most one new
  // cell per step).
  const std::size_t tape_cap = N + max_steps + 2;

  SimulationResult result;

  // ---- Initial lists: tape 1 split into m input blocks. ----
  std::vector<ListState> lists(t);
  {
    const std::size_t m = input_fields.size();
    ListState& first = lists[0];
    if (m == 0) {
      first.cells.push_back(
          {{Symbol::Open(), Symbol::Close()}, 0, tape_cap});
    } else {
      std::size_t offset = 0;
      for (std::size_t j = 0; j < m; ++j) {
        const std::size_t len = input_fields[j].size() + 1;  // v_j '#'
        BlockCell cell;
        cell.content = {Symbol::Open(),
                        Symbol::Input(FieldValue(input_fields[j]), j),
                        Symbol::Close()};
        cell.begin = offset;
        cell.end = (j + 1 == m) ? tape_cap : offset + len;
        offset += len;
        first.cells.push_back(std::move(cell));
      }
    }
    for (std::size_t i = 1; i < t; ++i) {
      lists[i].cells.push_back(
          {{Symbol::Open(), Symbol::Close()}, 0, tape_cap});
    }
  }

  std::map<std::string, StateId> state_ids;
  auto intern = [&state_ids](const std::string& key) {
    auto [it, inserted] =
        state_ids.emplace(key, static_cast<StateId>(state_ids.size()));
    (void)inserted;
    return it->second;
  };

  machine::Configuration config = tm.InitialConfiguration(input_word);
  std::vector<int> tm_directions(t, +1);
  StateId current_state =
      intern(AbstractStateKey(config, t, lists));

  ListMachineRun& run = result.run;
  run.reversals.assign(t, 0);

  std::size_t step = 0;
  bool stuck = false;
  while (step < max_steps && !spec.IsFinal(config.state)) {
    std::vector<machine::Configuration> next =
        tm.NextConfigurations(config);
    if (next.empty()) {
      stuck = true;
      break;
    }
    const std::uint64_t choice =
        step < tm_choices.size() ? tm_choices[step] : 0;
    machine::Configuration succ =
        next[static_cast<std::size_t>(choice % next.size())];

    // Detect external-head events in this TM step. Machines need not be
    // normalized: several heads may move (and event) simultaneously; the
    // NLM step then carries all their movements at once.
    std::vector<bool> has_event(t, false);
    std::vector<bool> is_cross(t, false);
    std::vector<int> event_dirs(t, 0);
    bool any_event = false;
    for (std::size_t i = 0; i < t; ++i) {
      if (succ.heads[i] == config.heads[i]) continue;
      const int dir = succ.heads[i] > config.heads[i] ? +1 : -1;
      const BlockCell& cur = lists[i].cells[lists[i].head];
      if (dir != tm_directions[i]) {
        has_event[i] = true;
        is_cross[i] = false;
        event_dirs[i] = dir;
        tm_directions[i] = dir;
      }
      if (succ.heads[i] < cur.begin || succ.heads[i] >= cur.end) {
        // A crossing (possibly combined with a turn in the same step).
        has_event[i] = true;
        is_cross[i] = true;
        event_dirs[i] = dir;
      }
      any_event = any_event || has_event[i];
    }

    if (any_event) {
      // ---- Perform one NLM step. ----
      StepRecord record;
      record.state_before = current_state;
      record.directions_before.clear();
      record.reads.clear();
      record.cell_moves.assign(t, 0);
      record.choice = static_cast<ChoiceId>(step % 1000000);
      for (std::size_t i = 0; i < t; ++i) {
        record.directions_before.push_back(lists[i].direction);
        record.reads.push_back(lists[i].cells[lists[i].head].content);
      }

      // Trace string y = a <x_1> ... <x_t> <c>.
      CellContent y;
      y.push_back(Symbol::State(current_state));
      for (std::size_t i = 0; i < t; ++i) {
        y.push_back(Symbol::Open());
        const CellContent& x = lists[i].cells[lists[i].head].content;
        y.insert(y.end(), x.begin(), x.end());
        y.push_back(Symbol::Close());
      }
      y.push_back(Symbol::Open());
      y.push_back(Symbol::Choice(record.choice));
      y.push_back(Symbol::Close());

      for (std::size_t i = 0; i < t; ++i) {
        ListState& ls = lists[i];
        const std::size_t h = ls.head;
        const std::size_t tm_head = succ.heads[i];
        const int event_dir = event_dirs[i];
        if (has_event[i] && is_cross[i]) {
          // Head leaves its block: the exited cell is overwritten with
          // y; the head moves to the adjacent cell.
          ls.cells[h].content = y;
          if (event_dir > 0) {
            assert(h + 1 < ls.cells.size());
            ls.head = h + 1;
            record.cell_moves[i] = +1;
          } else {
            assert(h > 0);
            ls.head = h - 1;
            record.cell_moves[i] = -1;
          }
          if (event_dir != ls.direction) {
            ++run.reversals[i];
            ls.direction = event_dir;
          }
          continue;
        }

        // Split the current block behind the head and insert the
        // behind-part as a new cell carrying y (Definition 24
        // insertion semantics, driven by the *old* direction).
        const int d_old = ls.direction;
        BlockCell& cur = ls.cells[h];
        const std::size_t p = has_event[i] ? tm_head : config.heads[i];
        BlockCell behind;
        behind.content = y;
        if (d_old > 0) {
          behind.begin = cur.begin;
          behind.end = std::max(cur.begin, std::min(p, cur.end));
          cur.begin = behind.end;
          ls.cells.insert(
              ls.cells.begin() + static_cast<std::ptrdiff_t>(h), behind);
          // Head cell index shifted by the insertion.
          const bool turning =
              has_event[i] && !is_cross[i];
          if (turning) {
            // (-1,false) with d=+1: head lands on the inserted cell.
            // Swap roles: the inserted cell must contain the head.
            // Re-derive boundaries: head keeps positions <= p.
            ls.cells[h].end =
                std::min(ls.cells[h + 1].end,
                         std::max(ls.cells[h].end, p + 1));
            ls.cells[h + 1].begin = ls.cells[h].end;
            ls.head = h;  // on the inserted cell
            record.cell_moves[i] = -1;
            ++run.reversals[i];
            ls.direction = event_dir;
          } else {
            ls.head = h + 1;  // still on the old cell
            record.cell_moves[i] = 0;
          }
        } else {
          behind.begin = std::max(cur.begin, std::min(p + 1, cur.end));
          behind.end = cur.end;
          cur.end = behind.begin;
          ls.cells.insert(
              ls.cells.begin() + static_cast<std::ptrdiff_t>(h) + 1,
              behind);
          const bool turning =
              has_event[i] && !is_cross[i];
          if (turning) {
            // (+1,false) with d=-1: head lands on the inserted cell.
            ls.cells[h + 1].begin =
                std::max(ls.cells[h].begin, std::min(p, cur.begin));
            ls.cells[h].end = ls.cells[h + 1].begin;
            ls.head = h + 1;
            record.cell_moves[i] = +1;
            ++run.reversals[i];
            ls.direction = event_dir;
          } else {
            ls.head = h;
            record.cell_moves[i] = 0;
          }
        }
      }

      config = std::move(succ);
      current_state = intern(AbstractStateKey(config, t, lists));
      run.steps.push_back(std::move(record));
    } else {
      config = std::move(succ);
      // Abstract state evolves silently (internal memory / in-block
      // movement); the NLM performs the corresponding state-only step
      // when the next event materializes. Interning here keeps the
      // distinct-state census faithful.
      current_state = intern(AbstractStateKey(config, t, lists));
    }
    ++step;
  }

  result.tm_steps = step;
  result.tm_halted = spec.IsFinal(config.state) || stuck;
  result.tm_accepted = spec.IsAccepting(config.state);
  result.distinct_states = state_ids.size();

  run.halted = result.tm_halted;
  run.accepted = result.tm_accepted;
  run.final_config.state = current_state;
  run.final_config.heads.resize(t);
  run.final_config.directions.resize(t);
  run.final_config.lists.resize(t);
  for (std::size_t i = 0; i < t; ++i) {
    run.final_config.heads[i] = lists[i].head;
    run.final_config.directions[i] = lists[i].direction;
    for (const BlockCell& cell : lists[i].cells) {
      run.final_config.lists[i].push_back(cell.content);
    }
  }
  return result;
}

}  // namespace rstlab::listmachine
