#ifndef RSTLAB_LISTMACHINE_LIST_MACHINE_H_
#define RSTLAB_LISTMACHINE_LIST_MACHINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/random.h"
#include "util/status.h"

namespace rstlab::listmachine {

/// Abstract state identifier (the paper's set A of abstract states).
using StateId = int;
/// Nondeterministic choice identifier (an element of C).
using ChoiceId = int;

/// One symbol of the list machine alphabet
/// A = I (input numbers) + C (choices) + A (states) + { '<', '>' }
/// (Definition 14). Input symbols carry both their value and their input
/// *position*, which is what skeletons (Definition 28) abstract to.
struct Symbol {
  enum class Kind : std::uint8_t {
    kInput,   // an input number from I
    kChoice,  // a nondeterministic choice from C
    kState,   // an abstract state from A
    kOpen,    // '<'
    kClose,   // '>'
  };

  Kind kind = Kind::kOpen;
  /// Input value (kInput), choice id (kChoice) or state id (kState).
  std::uint64_t payload = 0;
  /// Input position of a kInput symbol (0-based index into the input
  /// tuple); meaningless otherwise.
  std::size_t origin = 0;

  static Symbol Input(std::uint64_t value, std::size_t origin) {
    return Symbol{Kind::kInput, value, origin};
  }
  static Symbol Choice(ChoiceId c) {
    return Symbol{Kind::kChoice, static_cast<std::uint64_t>(c), 0};
  }
  static Symbol State(StateId a) {
    return Symbol{Kind::kState, static_cast<std::uint64_t>(a), 0};
  }
  static Symbol Open() { return Symbol{Kind::kOpen, 0, 0}; }
  static Symbol Close() { return Symbol{Kind::kClose, 0, 0}; }

  bool operator==(const Symbol& other) const = default;
};

/// The content of one list cell: a string over the alphabet A.
using CellContent = std::vector<Symbol>;

/// Head directive for one list: `head_direction` in {-1, +1} and whether
/// the head moves off its cell (Definition 14's Movement).
struct Movement {
  int head_direction = +1;
  bool move = false;

  bool operator==(const Movement& other) const = default;
};

/// The outcome of one application of the transition function alpha.
struct TransitionResult {
  StateId next_state = 0;
  std::vector<Movement> movements;  // one per list
};

/// A list machine program: the static part (t, C, A, a_0, alpha, B,
/// B_acc) of Definition 14, with alpha supplied as a virtual function so
/// concrete machines are ordinary C++ classes. `num_choices` is |C|; a
/// machine is deterministic iff |C| == 1.
class ListMachineProgram {
 public:
  virtual ~ListMachineProgram() = default;

  /// Number of lists t.
  virtual std::size_t num_lists() const = 0;
  /// |C|, the number of nondeterministic choices.
  virtual std::size_t num_choices() const = 0;
  /// The initial state a_0.
  virtual StateId initial_state() const = 0;
  /// True iff `state` is in B.
  virtual bool IsFinal(StateId state) const = 0;
  /// True iff `state` is in B_acc.
  virtual bool IsAccepting(StateId state) const = 0;
  /// alpha(state, reads, choice); `reads` holds the cell under each head.
  virtual TransitionResult Step(
      StateId state, const std::vector<const CellContent*>& reads,
      ChoiceId choice) const = 0;
};

/// A full configuration (Definition 24(a)).
struct ListMachineConfig {
  StateId state = 0;
  std::vector<std::size_t> heads;                 // 0-based positions p
  std::vector<int> directions;                    // d in {-1,+1}^t
  std::vector<std::vector<CellContent>> lists;    // X
};

/// What the run recorder keeps about one step, enough to rebuild local
/// views, skeletons (Definition 28) and moves(rho) (Definition 27).
struct StepRecord {
  StateId state_before = 0;
  std::vector<int> directions_before;
  /// The cells under the heads before the step (the local view's y).
  std::vector<CellContent> reads;
  /// moves(rho) entry: -1 / 0 / +1 per list (cell-level head movement).
  std::vector<int> cell_moves;
  ChoiceId choice = 0;
};

/// A complete finite run.
struct ListMachineRun {
  std::vector<StepRecord> steps;
  ListMachineConfig final_config;
  bool halted = false;
  bool accepted = false;
  /// rev(rho, tau) per list: number of head-direction changes.
  std::vector<std::uint64_t> reversals;

  /// The measured scan bound 1 + sum of reversals.
  std::uint64_t ScanBound() const;
};

/// Executes list machine programs under the exact semantics of
/// Definition 24 (insertion of the trace string y behind the heads, end
/// clamping, etc.).
class ListMachineExecutor {
 public:
  /// Wraps `program` (not owned; must outlive the executor).
  explicit ListMachineExecutor(const ListMachineProgram* program);

  /// The initial configuration for `input` (Definition 24(b)): list 1
  /// holds <v_1> ... <v_m>, all other lists hold a single empty cell.
  /// Input values are tagged with their positions for skeleton tracking.
  ListMachineConfig InitialConfiguration(
      const std::vector<std::uint64_t>& input) const;

  /// The run rho_M(v, c) (Definition 15): step i uses choice c[i]. If the
  /// machine does not halt within max_steps (or choices run out first),
  /// the run reports halted = false.
  ListMachineRun RunWithChoices(const std::vector<std::uint64_t>& input,
                                const std::vector<ChoiceId>& choices,
                                std::size_t max_steps) const;

  /// Samples a run with uniform choices.
  ListMachineRun RunRandomized(const std::vector<std::uint64_t>& input,
                               Rng& rng, std::size_t max_steps) const;

  /// Runs a deterministic machine (|C| == 1).
  Result<ListMachineRun> RunDeterministic(
      const std::vector<std::uint64_t>& input,
      std::size_t max_steps) const;

  /// Exact acceptance probability by weighted exhaustive traversal
  /// (Lemma 25 semantics). All runs must halt within max_steps; when one
  /// does not, `*truncated` (if given) is set and the truncated branch
  /// contributes 0.
  double AcceptanceProbability(const std::vector<std::uint64_t>& input,
                               std::size_t max_steps,
                               bool* truncated = nullptr) const;

 private:
  /// Applies one step in place, appending to `record` (if non-null).
  /// Returns false when `config` is final (no step applied).
  bool StepOnce(ListMachineConfig& config, ChoiceId choice,
                StepRecord* record,
                std::vector<std::uint64_t>* reversals) const;

  const ListMachineProgram* program_;
};

/// Renders a cell content like "a3<v@2><>"; for diagnostics.
std::string CellToString(const CellContent& cell);

}  // namespace rstlab::listmachine

#endif  // RSTLAB_LISTMACHINE_LIST_MACHINE_H_
