#include "listmachine/analysis.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace rstlab::listmachine {

std::uint64_t SaturatingPow(std::uint64_t base, std::uint64_t exponent) {
  std::uint64_t result = 1;
  for (std::uint64_t i = 0; i < exponent; ++i) {
    if (base != 0 && result > (~std::uint64_t{0}) / base) {
      return ~std::uint64_t{0};
    }
    result *= base;
  }
  return result;
}

GrowthCheck CheckGrowth(const ListMachineRun& run, std::size_t m) {
  GrowthCheck check;
  const std::size_t t = run.final_config.lists.size();
  const std::uint64_t r = run.ScanBound();

  for (const auto& list : run.final_config.lists) {
    check.measured_total_list_length += list.size();
    for (const CellContent& cell : list) {
      check.measured_max_cell_size =
          std::max<std::uint64_t>(check.measured_max_cell_size,
                                  cell.size());
    }
  }
  for (const StepRecord& step : run.steps) {
    for (const CellContent& cell : step.reads) {
      check.measured_max_cell_size = std::max<std::uint64_t>(
          check.measured_max_cell_size, cell.size());
    }
  }

  check.bound_total_list_length =
      SaturatingPow(t + 1, r) * std::max<std::uint64_t>(1, m);
  check.bound_max_cell_size =
      11 * SaturatingPow(std::max<std::uint64_t>(t, 2), r);
  check.within_bounds =
      check.measured_total_list_length <= check.bound_total_list_length &&
      check.measured_max_cell_size <= check.bound_max_cell_size;
  return check;
}

RunShapeCheck CheckRunShape(const ListMachineRun& run, std::size_t m,
                            std::size_t k) {
  RunShapeCheck check;
  const std::size_t t = run.final_config.lists.size();
  const std::uint64_t r = run.ScanBound();
  check.run_length = run.steps.size() + 1;  // configurations
  for (const StepRecord& step : run.steps) {
    if (std::any_of(step.cell_moves.begin(), step.cell_moves.end(),
                    [](int mv) { return mv != 0; })) {
      ++check.moving_steps;
    }
  }
  check.bound_moving_steps =
      SaturatingPow(t + 1, r + 1) * std::max<std::uint64_t>(1, m);
  check.bound_run_length =
      static_cast<std::uint64_t>(k) +
      static_cast<std::uint64_t>(k) * check.bound_moving_steps;
  check.within_bounds =
      check.run_length <= check.bound_run_length &&
      check.moving_steps <= check.bound_moving_steps;
  return check;
}

double Lemma32LogBound(std::size_t m, std::size_t k, std::size_t t,
                       std::uint64_t r) {
  const double base = static_cast<double>(m + k + 3);
  const double exponent =
      12.0 * static_cast<double>(m) *
          std::pow(static_cast<double>(t + 1),
                   static_cast<double>(2 * r + 2)) +
      24.0 * std::pow(static_cast<double>(t + 1), static_cast<double>(r));
  return exponent * std::log2(base);
}

MergeLemmaCheck CheckMergeLemma(const ListMachineRun& run,
                                const permutation::Permutation& phi) {
  MergeLemmaCheck check;
  const std::size_t m = phi.size();
  const std::size_t t = run.final_config.lists.size();
  const std::uint64_t r = run.ScanBound();
  for (std::size_t i = 0; i < m; ++i) {
    if (ArePositionsCompared(run, i, m + phi[i])) ++check.compared_count;
  }
  check.sortedness = permutation::Sortedness(phi);
  check.bound = SaturatingPow(t, 2 * r) *
                static_cast<std::uint64_t>(check.sortedness);
  check.within_bounds = check.compared_count <= check.bound;
  return check;
}

CompositionOutcome TestComposition(const ListMachineExecutor& executor,
                                   const std::vector<std::uint64_t>& v,
                                   const std::vector<std::uint64_t>& w,
                                   std::size_t pos_i, std::size_t pos_j,
                                   const std::vector<ChoiceId>& choices,
                                   std::size_t max_steps) {
  CompositionOutcome outcome;
  assert(v.size() == w.size());
  assert(pos_i < v.size() && pos_j < v.size() && pos_i != pos_j);
  for (std::size_t p = 0; p < v.size(); ++p) {
    if (p != pos_i && p != pos_j) assert(v[p] == w[p]);
  }

  const ListMachineRun run_v =
      executor.RunWithChoices(v, choices, max_steps);
  const ListMachineRun run_w =
      executor.RunWithChoices(w, choices, max_steps);
  const RunSkeleton skel_v = BuildSkeleton(run_v);
  const RunSkeleton skel_w = BuildSkeleton(run_w);

  outcome.preconditions_met =
      run_v.halted && run_w.halted && skel_v == skel_w &&
      run_v.accepted == run_w.accepted &&
      !ArePositionsCompared(run_v, pos_i, pos_j);
  if (!outcome.preconditions_met) return outcome;
  outcome.accepted = run_v.accepted;

  // u takes pos_i from v and pos_j from w; u' the other way round.
  outcome.input_u = v;
  outcome.input_u[pos_j] = w[pos_j];
  outcome.input_u_prime = v;
  outcome.input_u_prime[pos_i] = w[pos_i];

  const ListMachineRun run_u =
      executor.RunWithChoices(outcome.input_u, choices, max_steps);
  const ListMachineRun run_u_prime =
      executor.RunWithChoices(outcome.input_u_prime, choices, max_steps);

  outcome.prediction_holds =
      run_u.halted && run_u_prime.halted &&
      BuildSkeleton(run_u) == skel_v &&
      BuildSkeleton(run_u_prime) == skel_v &&
      run_u.accepted == run_v.accepted &&
      run_u_prime.accepted == run_v.accepted;
  return outcome;
}

Lemma21Regime ComputeLemma21Regime(std::size_t t, std::uint64_t r) {
  Lemma21Regime regime;
  const std::uint64_t pow = SaturatingPow(t + 1, 4 * r);
  if (pow == ~std::uint64_t{0} || pow > ((~std::uint64_t{0}) - 1) / 24) {
    regime.m_overflowed = true;
    return regime;
  }
  const std::uint64_t m_min = 24 * pow + 1;
  // Round up to a power of two.
  std::uint64_t m = 1;
  while (m < m_min) {
    if (m > (~std::uint64_t{0}) / 2) {
      regime.m_overflowed = true;
      return regime;
    }
    m *= 2;
  }
  regime.m = m;
  regime.k = 2 * m + 3;
  const double md = static_cast<double>(m);
  regime.log2_n_required = std::log2(
      1.0 + (md * md + 1.0) * std::log2(2.0 * static_cast<double>(regime.k)));
  return regime;
}

std::optional<std::vector<ChoiceId>> FindGoodChoiceSequence(
    const ListMachineExecutor& executor, const ListMachineProgram& program,
    const std::vector<std::vector<std::uint64_t>>& inputs,
    std::size_t length, std::size_t max_steps) {
  const std::size_t num_choices = program.num_choices();
  std::vector<ChoiceId> seq(length, 0);
  const std::size_t needed = (inputs.size() + 1) / 2;
  while (true) {
    std::size_t accepted = 0;
    for (const auto& input : inputs) {
      if (executor.RunWithChoices(input, seq, max_steps).accepted) {
        ++accepted;
      }
    }
    if (accepted >= needed) return seq;
    // Lexicographically next sequence.
    std::size_t pos = 0;
    while (pos < length) {
      if (static_cast<std::size_t>(seq[pos]) + 1 < num_choices) {
        ++seq[pos];
        break;
      }
      seq[pos] = 0;
      ++pos;
    }
    if (pos == length) return std::nullopt;
  }
}

}  // namespace rstlab::listmachine
