#ifndef RSTLAB_LISTMACHINE_SKELETON_H_
#define RSTLAB_LISTMACHINE_SKELETON_H_

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "listmachine/list_machine.h"

namespace rstlab::listmachine {

/// The skeleton of a run (Definition 28): the sequence of local-view
/// skeletons — with views after a no-cell-movement step collapsed to "?"
/// — together with moves(rho). Skeletons abstract input *values* to input
/// *positions* and nondeterministic choices to a wildcard, so two runs on
/// different inputs can have equal skeletons; counting distinct skeletons
/// across inputs is experiment E16 (Lemma 32), and skeleton equality is
/// the precondition of the composition lemma (Lemma 34).
struct RunSkeleton {
  /// Serialized skel(lv(rho_i)) per configuration, or "?" for views
  /// following a stationary step.
  std::vector<std::string> views;
  /// moves(rho): one {-1,0,+1}^t entry per step.
  std::vector<std::vector<int>> moves;

  bool operator==(const RunSkeleton& other) const = default;

  /// One-line canonical serialization (usable as a hash key).
  std::string Serialize() const;
};

/// ind(cell) of Definition 28(a): input numbers replaced by their input
/// positions, choices by '?'.
std::string IndexString(const CellContent& cell);

/// Builds the skeleton of `run`.
RunSkeleton BuildSkeleton(const ListMachineRun& run);

/// The set of input positions occurring in the reads of one retained
/// (non-"?") local view, in configuration order. Retained views are view
/// 1 plus every view directly following a step whose moves entry is
/// nonzero.
std::vector<std::set<std::size_t>> RetainedViewPositions(
    const ListMachineRun& run);

/// All pairs {i, i'} of input positions compared in the run's skeleton
/// (Definition 33: both occur in the ind(y) of some retained view).
/// Pairs are returned with first < second.
std::set<std::pair<std::size_t, std::size_t>> ComparedPairs(
    const ListMachineRun& run);

/// True iff positions i and j are compared in the run's skeleton.
bool ArePositionsCompared(const ListMachineRun& run, std::size_t i,
                          std::size_t j);

}  // namespace rstlab::listmachine

#endif  // RSTLAB_LISTMACHINE_SKELETON_H_
