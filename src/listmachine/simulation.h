#ifndef RSTLAB_LISTMACHINE_SIMULATION_H_
#define RSTLAB_LISTMACHINE_SIMULATION_H_

#include <cstddef>
#include <string>
#include <vector>

#include "listmachine/list_machine.h"
#include "machine/turing_machine.h"
#include "util/status.h"

namespace rstlab::listmachine {

/// Result of simulating one Turing machine run as a list machine run
/// (the Simulation Lemma, Lemma 16).
struct SimulationResult {
  /// The induced list machine run: one NLM step per maximal segment of
  /// TM steps during which no external head changes direction or leaves
  /// its current tape block. Cells carry the trace strings
  /// y = a <x_1> ... <x_t> <c> exactly as in Definition 24, so skeleton
  /// and merge-lemma analyses apply to it directly.
  ListMachineRun run;
  /// Whether the underlying TM run accepted (the lemma's probability
  /// preservation: the NLM accepts iff the TM run does, for every choice
  /// sequence, which is how Lemma 18 transfers acceptance probabilities).
  bool tm_accepted = false;
  /// Whether the TM halted within the step budget.
  bool tm_halted = false;
  /// Number of TM steps executed.
  std::size_t tm_steps = 0;
  /// Number of distinct abstract NLM states the simulation used
  /// (interned (q, internal memory, head positions, block boundaries)
  /// tuples). Lemma 16 bounds log2 of this by
  /// d*t^2*r*s + 3t*log(m(n+1)).
  std::size_t distinct_states = 0;
};

/// Simulates the (r,s,t)-bounded NTM `tm` on input v_1# ... v_m# (the
/// `input_fields`, each a 0/1 string) under the choice sequence
/// `tm_choices` (Definition 17 semantics), producing the corresponding
/// list machine run per the construction of Lemma 16: external tapes
/// become lists, tape blocks become cells, blocks split when heads turn
/// or cross block boundaries.
///
/// Fails if the TM has no external tapes or the input contains
/// non-binary characters.
Result<SimulationResult> SimulateTmAsNlm(
    const machine::TuringMachine& tm,
    const std::vector<std::string>& input_fields,
    const std::vector<std::uint64_t>& tm_choices, std::size_t max_steps);

}  // namespace rstlab::listmachine

#endif  // RSTLAB_LISTMACHINE_SIMULATION_H_
