#ifndef RSTLAB_LISTMACHINE_ANALYSIS_H_
#define RSTLAB_LISTMACHINE_ANALYSIS_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "listmachine/list_machine.h"
#include "listmachine/skeleton.h"
#include "permutation/sortedness.h"

namespace rstlab::listmachine {

/// b^e with saturation at UINT64_MAX.
std::uint64_t SaturatingPow(std::uint64_t base, std::uint64_t exponent);

/// Measured vs predicted growth quantities of one run (Lemma 30):
/// total list length <= (t+1)^r * m and cell size <= 11 * max(t,2)^r,
/// where r is the run's scan bound and m its input length.
struct GrowthCheck {
  std::uint64_t measured_total_list_length = 0;
  std::uint64_t bound_total_list_length = 0;
  std::uint64_t measured_max_cell_size = 0;
  std::uint64_t bound_max_cell_size = 0;
  bool within_bounds = false;
};

/// Checks Lemma 30 on a completed run with input length `m`.
/// (List lengths never shrink and trace strings embed what they replace,
/// so the final configuration realizes the run maxima.)
GrowthCheck CheckGrowth(const ListMachineRun& run, std::size_t m);

/// Measured vs predicted run-shape quantities (Lemma 31): run length
/// <= k + k*(t+1)^{r+1}*m and number of moving steps <= (t+1)^{r+1}*m,
/// for a machine with k abstract states.
struct RunShapeCheck {
  std::size_t run_length = 0;
  std::uint64_t bound_run_length = 0;
  std::size_t moving_steps = 0;
  std::uint64_t bound_moving_steps = 0;
  bool within_bounds = false;
};

/// Checks Lemma 31 on a completed run; `k` is the machine's state count.
RunShapeCheck CheckRunShape(const ListMachineRun& run, std::size_t m,
                            std::size_t k);

/// log2 of the Lemma 32 skeleton-count bound
/// (m+k+3)^(12*m*(t+1)^{2r+2} + 24*(t+1)^r). The bound itself is
/// astronomical; experiments compare log2(#distinct skeletons observed)
/// against it and — more tellingly — verify the count is independent
/// of the value length n.
double Lemma32LogBound(std::size_t m, std::size_t k, std::size_t t,
                       std::uint64_t r);

/// Measured vs predicted comparison counts (Lemma 38): the number of
/// indices i with positions (i, m + phi(i)) compared in the run's
/// skeleton is at most t^{2r} * sortedness(phi). The run must be on an
/// input of 2m values, phi a permutation of {0..m-1}.
struct MergeLemmaCheck {
  std::size_t compared_count = 0;
  std::uint64_t bound = 0;
  std::size_t sortedness = 0;
  bool within_bounds = false;
};

/// Checks Lemma 38 on a completed run.
MergeLemmaCheck CheckMergeLemma(const ListMachineRun& run,
                                const permutation::Permutation& phi);

/// Outcome of a composition test (Lemma 34).
struct CompositionOutcome {
  /// Preconditions held: equal skeletons, equal acceptance, and the two
  /// designated positions are not compared in the common skeleton.
  bool preconditions_met = false;
  /// Lemma 34's conclusion held: the two crossed-over inputs produced
  /// the same skeleton and the same acceptance as the originals.
  bool prediction_holds = false;
  /// Acceptance of the original runs (and, when the lemma holds, of the
  /// crossed-over runs).
  bool accepted = false;
  /// The crossed-over inputs u = v[pos_i <- v], [pos_j <- w] and u'.
  std::vector<std::uint64_t> input_u;
  std::vector<std::uint64_t> input_u_prime;
};

/// Tests the composition lemma: `v` and `w` must differ exactly at
/// positions pos_i and pos_j. Runs all four inputs with the fixed choice
/// sequence `choices` and checks Lemma 34's conclusion.
CompositionOutcome TestComposition(const ListMachineExecutor& executor,
                                   const std::vector<std::uint64_t>& v,
                                   const std::vector<std::uint64_t>& w,
                                   std::size_t pos_i, std::size_t pos_j,
                                   const std::vector<ChoiceId>& choices,
                                   std::size_t max_steps);

/// The parameter regime of Lemma 21: for machine parameters t (lists)
/// and r (scan bound), the smallest power-of-two m with
/// m >= 24*(t+1)^{4r} + 1, the matching k >= 2m + 3, and the value
/// length requirement n >= 1 + (m^2 + 1)*log2(2k). These are the
/// hypotheses under which NO (r, t)-bounded NLM with <= k states can
/// decide CHECK-phi; the n requirement explains the paper's choice
/// n = m^3 in Lemma 22 (m^3 >= the bound for large m). The quantities
/// explode quickly — the regime table in bench_fooling makes the scale
/// of the statement visible.
struct Lemma21Regime {
  std::uint64_t m = 0;        // minimal admissible power of two
  std::uint64_t k = 0;        // 2m + 3
  double log2_n_required = 0;  // log2 of the minimal n
  bool m_overflowed = false;  // (t+1)^{4r} exceeded 64 bits
};

/// Computes the Lemma 21 regime for (t, r).
Lemma21Regime ComputeLemma21Regime(std::size_t t, std::uint64_t r);

/// The averaging step (Lemma 26): searches choice sequences of length
/// `length` (exhaustively, |C|^length of them) for one under which at
/// least half of `inputs` is accepted. Returns the first such sequence.
std::optional<std::vector<ChoiceId>> FindGoodChoiceSequence(
    const ListMachineExecutor& executor, const ListMachineProgram& program,
    const std::vector<std::vector<std::uint64_t>>& inputs,
    std::size_t length, std::size_t max_steps);

}  // namespace rstlab::listmachine

#endif  // RSTLAB_LISTMACHINE_ANALYSIS_H_
