#include "listmachine/machines.h"

#include <cassert>

namespace rstlab::listmachine {

namespace {
constexpr StateId kAccept = 1000000;
constexpr StateId kReject = 1000001;
}  // namespace

std::optional<Symbol> FirstInputSymbol(const CellContent& cell) {
  for (const Symbol& s : cell) {
    if (s.kind == Symbol::Kind::kInput) return s;
  }
  return std::nullopt;
}

std::optional<CellContent> TraceComponent(const CellContent& cell,
                                          std::size_t component) {
  // A trace string starts with a state symbol; its top-level bracket
  // groups are <x_1> ... <x_t> <c>.
  if (cell.empty() || cell.front().kind != Symbol::Kind::kState) {
    return std::nullopt;
  }
  std::size_t group = 0;
  std::size_t depth = 0;
  CellContent content;
  for (std::size_t i = 1; i < cell.size(); ++i) {
    const Symbol& s = cell[i];
    if (s.kind == Symbol::Kind::kOpen) {
      if (depth > 0 && group == component) content.push_back(s);
      ++depth;
    } else if (s.kind == Symbol::Kind::kClose) {
      --depth;
      if (depth > 0 && group == component) {
        content.push_back(s);
      } else if (depth == 0) {
        if (group == component) return content;
        ++group;
      }
    } else if (depth > 0 && group == component) {
      content.push_back(s);
    }
  }
  return std::nullopt;
}

std::optional<Symbol> CarriedInputSymbol(const CellContent& cell,
                                         std::size_t list_index) {
  // Initial cells carry their own input symbol.
  if (cell.empty() || cell.front().kind != Symbol::Kind::kState) {
    return FirstInputSymbol(cell);
  }
  // Trace string: prefer what the x_{list_index+1} component carries;
  // when that component is empty (the value arrived from another list,
  // as in a copy phase), fall back to the first input symbol anywhere
  // in the trace.
  std::optional<CellContent> component =
      TraceComponent(cell, list_index);
  if (component.has_value()) {
    std::optional<Symbol> carried =
        CarriedInputSymbol(*component, list_index);
    if (carried.has_value()) return carried;
  }
  return FirstInputSymbol(cell);
}

// ---------------------------------------------------------------------
// ZigZagMachine
// ---------------------------------------------------------------------

ZigZagMachine::ZigZagMachine(std::size_t t, std::size_t num_sweeps,
                             std::size_t m)
    : t_(t), num_sweeps_(num_sweeps), m_(m) {
  assert(t >= 1);
  moves_per_sweep_ = m >= 2 ? m - 1 : 0;
}

StateId ZigZagMachine::initial_state() const {
  if (moves_per_sweep_ == 0 || num_sweeps_ == 0) return kAccept;
  return 0;
}

bool ZigZagMachine::IsFinal(StateId state) const {
  return state >= static_cast<StateId>(num_sweeps_ * moves_per_sweep_) ||
         state == kAccept;
}

TransitionResult ZigZagMachine::Step(
    StateId state, const std::vector<const CellContent*>& reads,
    ChoiceId choice) const {
  (void)reads;
  (void)choice;
  const std::size_t sweep =
      static_cast<std::size_t>(state) / moves_per_sweep_;
  const int direction = sweep % 2 == 0 ? +1 : -1;
  TransitionResult tr;
  tr.next_state = state + 1;
  tr.movements.assign(t_, Movement{direction, true});
  return tr;
}

// ---------------------------------------------------------------------
// ReverseCompareMachine
// ---------------------------------------------------------------------

ReverseCompareMachine::ReverseCompareMachine(std::size_t m,
                                             std::size_t budget)
    : m_(m), budget_(budget) {
  assert(budget <= m);
}

bool ReverseCompareMachine::IsFinal(StateId state) const {
  return state == kAccept || state == kReject;
}

bool ReverseCompareMachine::IsAccepting(StateId state) const {
  return state == kAccept;
}

TransitionResult ReverseCompareMachine::Step(
    StateId state, const std::vector<const CellContent*>& reads,
    ChoiceId choice) const {
  (void)choice;
  TransitionResult tr;
  const std::size_t s = static_cast<std::size_t>(state);
  if (m_ == 0) {
    tr.next_state = kAccept;
    tr.movements.assign(2, Movement{+1, false});
    return tr;
  }
  if (s < m_) {
    // Phase A: head 1 sweeps the first half; head 2 accumulates.
    tr.movements = {Movement{+1, true}, Movement{+1, false}};
    tr.next_state =
        (s + 1 == m_ && budget_ == 0) ? kAccept : static_cast<StateId>(s + 1);
    return tr;
  }
  // Phase C: lockstep comparison sweep.
  const std::size_t j = s - m_;
  tr.movements = {Movement{+1, true}, Movement{-1, true}};
  StateId next =
      (j + 1 == budget_) ? kAccept : static_cast<StateId>(s + 1);
  if (j >= 1) {
    const std::optional<Symbol> a = FirstInputSymbol(*reads[0]);
    const std::optional<Symbol> b = FirstInputSymbol(*reads[1]);
    if (a.has_value() && b.has_value() && a->payload != b->payload) {
      next = kReject;
    }
  }
  tr.next_state = next;
  return tr;
}

bool ReverseCompareMachine::ReferencePredicate(
    const std::vector<std::uint64_t>& input, std::size_t m) {
  assert(input.size() == 2 * m);
  if (m == 0) return true;
  if (input[m] != input[0]) return false;
  for (std::size_t j = 1; j < m; ++j) {
    if (input[m + j] != input[m - j]) return false;
  }
  return true;
}

// ---------------------------------------------------------------------
// IdentityCompareMachine
// ---------------------------------------------------------------------

IdentityCompareMachine::IdentityCompareMachine(std::size_t m) : m_(m) {}

StateId IdentityCompareMachine::initial_state() const {
  return m_ == 0 ? kAccept : 0;
}

bool IdentityCompareMachine::IsFinal(StateId state) const {
  return state == kAccept || state == kReject;
}

bool IdentityCompareMachine::IsAccepting(StateId state) const {
  return state == kAccept;
}

TransitionResult IdentityCompareMachine::Step(
    StateId state, const std::vector<const CellContent*>& reads,
    ChoiceId choice) const {
  (void)choice;
  TransitionResult tr;
  const std::size_t s = static_cast<std::size_t>(state);
  if (s < m_) {
    // Phase A: accumulate the first half onto list 2.
    tr.movements = {Movement{+1, true}, Movement{+1, false}};
    tr.next_state = static_cast<StateId>(s + 1);
    return tr;
  }
  if (s < 2 * m_) {
    // Phase B: walk head 2 back to the left end of its stack.
    tr.movements = {Movement{+1, false}, Movement{-1, true}};
    tr.next_state = static_cast<StateId>(s + 1);
    return tr;
  }
  // Phase C: lockstep comparison of v'_k (list 1) vs carried v_k
  // (list 2).
  tr.movements = {Movement{+1, true}, Movement{+1, true}};
  const std::optional<Symbol> prime = FirstInputSymbol(*reads[0]);
  const std::optional<Symbol> original =
      CarriedInputSymbol(*reads[1], 1);
  StateId next = (s + 1 == 3 * m_) ? kAccept
                                   : static_cast<StateId>(s + 1);
  if (!prime.has_value() || !original.has_value() ||
      prime->payload != original->payload) {
    next = kReject;
  }
  tr.next_state = next;
  return tr;
}

bool IdentityCompareMachine::ReferencePredicate(
    const std::vector<std::uint64_t>& input, std::size_t m) {
  assert(input.size() == 2 * m);
  for (std::size_t j = 0; j < m; ++j) {
    if (input[j] != input[m + j]) return false;
  }
  return true;
}

// ---------------------------------------------------------------------
// CoinListMachine
// ---------------------------------------------------------------------

TransitionResult CoinListMachine::Step(
    StateId state, const std::vector<const CellContent*>& reads,
    ChoiceId choice) const {
  (void)state;
  (void)reads;
  TransitionResult tr;
  tr.next_state = choice == 0 ? 1 : 2;
  tr.movements.assign(1, Movement{+1, false});
  return tr;
}

}  // namespace rstlab::listmachine
