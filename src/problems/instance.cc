#include "problems/instance.h"

namespace rstlab::problems {

std::size_t Instance::N() const {
  std::size_t n = 0;
  for (const auto& v : first) n += v.size() + 1;
  for (const auto& v : second) n += v.size() + 1;
  return n;
}

std::string Instance::Encode() const {
  std::string out;
  out.reserve(N());
  for (const auto& v : first) {
    out += v.ToString();
    out += '#';
  }
  for (const auto& v : second) {
    out += v.ToString();
    out += '#';
  }
  return out;
}

Result<Instance> Instance::Parse(const std::string& encoded) {
  std::vector<BitString> fields;
  BitString current;
  for (char c : encoded) {
    switch (c) {
      case '0':
        current.PushBack(false);
        break;
      case '1':
        current.PushBack(true);
        break;
      case '#':
        fields.push_back(std::move(current));
        current = BitString();
        break;
      default:
        return Status::InvalidArgument(
            std::string("unexpected character '") + c + "' in instance");
    }
  }
  if (!current.empty()) {
    return Status::InvalidArgument("instance must end with '#'");
  }
  if (fields.size() % 2 != 0) {
    return Status::InvalidArgument("instance must have 2m fields");
  }
  Instance instance;
  const std::size_t m = fields.size() / 2;
  instance.first.assign(fields.begin(),
                        fields.begin() + static_cast<std::ptrdiff_t>(m));
  instance.second.assign(fields.begin() + static_cast<std::ptrdiff_t>(m),
                         fields.end());
  return instance;
}

const char* ProblemName(Problem p) {
  switch (p) {
    case Problem::kSetEquality:
      return "SET-EQUALITY";
    case Problem::kMultisetEquality:
      return "MULTISET-EQUALITY";
    case Problem::kCheckSort:
      return "CHECK-SORT";
  }
  return "UNKNOWN";
}

}  // namespace rstlab::problems
