#ifndef RSTLAB_PROBLEMS_DISJOINT_SETS_H_
#define RSTLAB_PROBLEMS_DISJOINT_SETS_H_

#include "problems/instance.h"
#include "util/random.h"
#include "util/status.h"

namespace rstlab::problems {

/// The DISJOINT-SETS problem of the paper's Section 9 (concluding
/// remarks): given v_1#...#v_m#v'_1#...#v'_m#, decide whether
/// {v_1,...,v_m} and {v'_1,...,v'_m} are disjoint. The paper states it
/// as an open problem: despite looking like SET-EQUALITY, their
/// lower-bound technique does not apply to it (and no fingerprint-style
/// upper bound is known either — `fingerprint_disjointness` experiments
/// with why).

/// Reference oracle: true iff the two sets share no element.
bool RefDisjoint(const Instance& instance);

/// A "yes" (disjoint) instance: values drawn from disjoint halves of
/// the value space (top bit 0 vs top bit 1). Requires n >= 1.
Instance DisjointSets(std::size_t m, std::size_t n, Rng& rng);

/// A "no" instance: DisjointSets with `overlaps` elements of the second
/// list replaced by elements of the first. Requires 1 <= overlaps <= m.
Instance OverlappingSets(std::size_t m, std::size_t n,
                         std::size_t overlaps, Rng& rng);

/// (The deterministic tape decider lives in sorting/deciders.h as
/// DecideDisjointOnTapes, next to the Corollary 7 deciders it shares
/// machinery with.)

/// What goes wrong with fingerprinting: sums of x^{e_i} detect
/// *aggregate* differences, but disjointness is about *individual*
/// collisions, so no polynomial identity separates the cases. This
/// demonstrator computes the Theorem 8(a)-style fingerprints of both
/// halves and guesses "intersecting" iff some residue e_i collides
/// between the halves — which has false positives AND false negatives
/// (residue collisions of distinct values, experiment E17 measures
/// both), i.e. it falls outside the paper's one-sided-error classes.
struct DisjointnessGuess {
  bool guessed_disjoint = false;
};
DisjointnessGuess GuessDisjointnessByResidues(const Instance& instance,
                                              std::uint64_t prime);

}  // namespace rstlab::problems

#endif  // RSTLAB_PROBLEMS_DISJOINT_SETS_H_
