#ifndef RSTLAB_PROBLEMS_GENERATORS_H_
#define RSTLAB_PROBLEMS_GENERATORS_H_

#include <cstddef>

#include "problems/instance.h"
#include "util/random.h"

namespace rstlab::problems {

/// Workload generators for the experiments. All values have a common
/// length `n`, matching the regime the paper's proofs consider
/// (N = 2m(n+1)).

/// A "yes" instance of MULTISET-EQUALITY: random values (duplicates
/// possible), second list a random permutation of the first.
Instance EqualMultisets(std::size_t m, std::size_t n, Rng& rng);

/// A "yes" instance of SET-EQUALITY with pairwise distinct values.
Instance EqualSets(std::size_t m, std::size_t n, Rng& rng);

/// A "no" instance: starts from EqualMultisets and re-randomizes
/// `num_changes` values of the second list (each change flips at least
/// one bit, so the multisets differ). Requires 1 <= num_changes <= m.
Instance PerturbedMultisets(std::size_t m, std::size_t n,
                            std::size_t num_changes, Rng& rng);

/// A "yes" instance of CHECK-SORT: random first list, second list its
/// ascending sorted version.
Instance SortedPair(std::size_t m, std::size_t n, Rng& rng);

/// A "no" instance of CHECK-SORT in which the second list has the right
/// multiset but two adjacent distinct elements swapped (still a multiset
/// match, so only the order is wrong). Falls back to a value perturbation
/// when all elements are equal.
Instance MisorderedPair(std::size_t m, std::size_t n, Rng& rng);

}  // namespace rstlab::problems

#endif  // RSTLAB_PROBLEMS_GENERATORS_H_
