#include "problems/reference.h"

#include <algorithm>
#include <unordered_set>

namespace rstlab::problems {

bool RefSetEquality(const Instance& instance) {
  std::unordered_set<BitString, BitStringHash> a(instance.first.begin(),
                                                 instance.first.end());
  std::unordered_set<BitString, BitStringHash> b(instance.second.begin(),
                                                 instance.second.end());
  return a == b;
}

bool RefMultisetEquality(const Instance& instance) {
  std::vector<BitString> a = instance.first;
  std::vector<BitString> b = instance.second;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

bool RefCheckSort(const Instance& instance) {
  if (!std::is_sorted(instance.second.begin(), instance.second.end())) {
    return false;
  }
  return RefMultisetEquality(instance);
}

bool RefDecide(Problem problem, const Instance& instance) {
  switch (problem) {
    case Problem::kSetEquality:
      return RefSetEquality(instance);
    case Problem::kMultisetEquality:
      return RefMultisetEquality(instance);
    case Problem::kCheckSort:
      return RefCheckSort(instance);
  }
  return false;
}

}  // namespace rstlab::problems
