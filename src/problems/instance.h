#ifndef RSTLAB_PROBLEMS_INSTANCE_H_
#define RSTLAB_PROBLEMS_INSTANCE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "util/bitstring.h"
#include "util/status.h"

namespace rstlab::problems {

/// One input instance of the paper's decision problems (Section 3):
/// two lists (v_1, ..., v_m) and (v'_1, ..., v'_m) of 0-1 strings,
/// encoded on tape as v1#v2#...#vm#v'1#...#v'm#.
struct Instance {
  std::vector<BitString> first;   // v_1 ... v_m
  std::vector<BitString> second;  // v'_1 ... v'_m

  /// Number of pairs m.
  std::size_t m() const { return first.size(); }

  /// The encoded input size N = 2m + sum |v_i| + sum |v'_i| (each value
  /// contributes its length plus one separator).
  std::size_t N() const;

  /// Tape encoding "v1#...#vm#v'1#...#v'm#".
  std::string Encode() const;

  /// Parses a tape encoding; fails unless the string has an even number
  /// of '#'-terminated 0-1 fields.
  static Result<Instance> Parse(const std::string& encoded);

  bool operator==(const Instance& other) const = default;
};

/// The three decision problems of Section 3.
enum class Problem {
  kSetEquality,
  kMultisetEquality,
  kCheckSort,
};

/// Human-readable problem name.
const char* ProblemName(Problem p);

}  // namespace rstlab::problems

#endif  // RSTLAB_PROBLEMS_INSTANCE_H_
