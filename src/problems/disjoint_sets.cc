#include "problems/disjoint_sets.h"

#include <cassert>
#include <unordered_set>

namespace rstlab::problems {

bool RefDisjoint(const Instance& instance) {
  std::unordered_set<BitString, BitStringHash> first(
      instance.first.begin(), instance.first.end());
  for (const BitString& v : instance.second) {
    if (first.count(v) > 0) return false;
  }
  return true;
}

Instance DisjointSets(std::size_t m, std::size_t n, Rng& rng) {
  assert(n >= 1);
  Instance instance;
  for (std::size_t i = 0; i < m; ++i) {
    BitString a = BitString::Random(n, rng);
    a.set_bit(0, false);
    instance.first.push_back(std::move(a));
    BitString b = BitString::Random(n, rng);
    b.set_bit(0, true);
    instance.second.push_back(std::move(b));
  }
  return instance;
}

Instance OverlappingSets(std::size_t m, std::size_t n,
                         std::size_t overlaps, Rng& rng) {
  assert(overlaps >= 1 && overlaps <= m);
  Instance instance = DisjointSets(m, n, rng);
  std::vector<std::size_t> positions(m);
  for (std::size_t i = 0; i < m; ++i) positions[i] = i;
  rng.Shuffle(positions);
  for (std::size_t c = 0; c < overlaps; ++c) {
    instance.second[positions[c]] =
        instance.first[rng.UniformBelow(m)];
  }
  return instance;
}

DisjointnessGuess GuessDisjointnessByResidues(const Instance& instance,
                                              std::uint64_t prime) {
  assert(prime > 0);
  DisjointnessGuess guess;
  std::unordered_set<std::uint64_t> residues;
  for (const BitString& v : instance.first) {
    residues.insert(v.ModUint64(prime));
  }
  guess.guessed_disjoint = true;
  for (const BitString& v : instance.second) {
    if (residues.count(v.ModUint64(prime)) > 0) {
      guess.guessed_disjoint = false;  // residue collision
      break;
    }
  }
  return guess;
}

}  // namespace rstlab::problems
