#include "problems/check_phi.h"

#include <bit>
#include <cassert>

#include "problems/reference.h"

namespace rstlab::problems {

CheckPhi::CheckPhi(std::size_t m, std::size_t n,
                   permutation::Permutation phi)
    : m_(m), n_(n), phi_(std::move(phi)) {
  assert(m > 0 && std::has_single_bit(m));
  assert(phi_.size() == m);
  assert(permutation::IsPermutation(phi_));
  interval_bits_ = static_cast<std::size_t>(std::bit_width(m) - 1);
  assert(n >= interval_bits_);
}

std::size_t CheckPhi::IntervalOf(const BitString& value) const {
  assert(value.size() == n_);
  return static_cast<std::size_t>(value.TopBits(interval_bits_));
}

bool CheckPhi::IsValidInstance(const Instance& instance) const {
  if (instance.m() != m_) return false;
  for (std::size_t i = 0; i < m_; ++i) {
    if (instance.first[i].size() != n_ ||
        instance.second[i].size() != n_) {
      return false;
    }
    if (IntervalOf(instance.first[i]) != phi_[i]) return false;
    if (IntervalOf(instance.second[i]) != i) return false;
  }
  return true;
}

bool CheckPhi::Decide(const Instance& instance) const {
  assert(IsValidInstance(instance));
  for (std::size_t i = 0; i < m_; ++i) {
    if (instance.first[i] != instance.second[phi_[i]]) return false;
  }
  return true;
}

BitString CheckPhi::RandomValueIn(std::size_t j, Rng& rng) const {
  BitString value = BitString::Random(n_, rng);
  // Overwrite the top log2(m) bits with the interval index j.
  for (std::size_t b = 0; b < interval_bits_; ++b) {
    value.set_bit(b, (j >> (interval_bits_ - 1 - b)) & 1);
  }
  return value;
}

Instance CheckPhi::RandomYesInstance(Rng& rng) const {
  Instance instance;
  instance.second.reserve(m_);
  for (std::size_t j = 0; j < m_; ++j) {
    instance.second.push_back(RandomValueIn(j, rng));
  }
  instance.first.reserve(m_);
  for (std::size_t i = 0; i < m_; ++i) {
    instance.first.push_back(instance.second[phi_[i]]);
  }
  return instance;
}

Instance CheckPhi::RandomNoInstance(Rng& rng) const {
  assert(n_ > interval_bits_);
  Instance instance = RandomYesInstance(rng);
  const std::size_t i =
      static_cast<std::size_t>(rng.UniformBelow(m_));
  BitString& victim = instance.first[i];
  // Flip a random non-interval bit so the value stays in I_{phi(i)} but
  // no longer matches v'_{phi(i)}.
  const std::size_t pos =
      interval_bits_ +
      static_cast<std::size_t>(rng.UniformBelow(n_ - interval_bits_));
  victim.set_bit(pos, !victim.bit(pos));
  return instance;
}

bool CheckPhi::CoincidesOnInstance(const Instance& instance) const {
  const bool check_phi = Decide(instance);
  const bool set_eq = RefSetEquality(instance);
  const bool multiset_eq = RefMultisetEquality(instance);
  const bool check_sort = RefCheckSort(instance);
  return check_phi == set_eq && set_eq == multiset_eq &&
         multiset_eq == check_sort;
}

}  // namespace rstlab::problems
