#ifndef RSTLAB_PROBLEMS_REFERENCE_H_
#define RSTLAB_PROBLEMS_REFERENCE_H_

#include "problems/instance.h"

namespace rstlab::problems {

/// Reference (oracle) deciders: straightforward in-memory implementations
/// used as ground truth for the resource-bounded algorithms and in tests.
/// These deliberately ignore the ST cost model.

/// True iff {v_1,...,v_m} = {v'_1,...,v'_m} as sets.
bool RefSetEquality(const Instance& instance);

/// True iff the two multisets are equal (same elements with the same
/// multiplicities).
bool RefMultisetEquality(const Instance& instance);

/// True iff (v'_1,...,v'_m) is the ascending lexicographically sorted
/// version of (v_1,...,v_m).
bool RefCheckSort(const Instance& instance);

/// Dispatches on `problem`.
bool RefDecide(Problem problem, const Instance& instance);

}  // namespace rstlab::problems

#endif  // RSTLAB_PROBLEMS_REFERENCE_H_
