#ifndef RSTLAB_PROBLEMS_SHORT_REDUCTION_H_
#define RSTLAB_PROBLEMS_SHORT_REDUCTION_H_

#include <cstddef>

#include "problems/check_phi.h"
#include "problems/instance.h"
#include "stmodel/st_context.h"
#include "util/status.h"

namespace rstlab::problems {

/// The Appendix E reduction f(v) from CHECK-phi to the SHORT versions of
/// SET-EQUALITY / MULTISET-EQUALITY / CHECK-SORT.
///
/// Every n-bit value is cut into mu = ceil(n / log m) consecutive blocks
/// of log m bits (the last block padded with leading zeros); block j of
/// value v_i becomes the record BIN(phi(i)) BIN'(j) v_{i,j} and block j of
/// v'_i becomes BIN(i) BIN'(j) v'_{i,j}, where BIN is a log m-bit line
/// index and BIN' a block index. The paper fixes n = m^3, making BIN'
/// exactly 3 log m bits and records at most 5 log m <= 2 log m' bits for
/// m' = mu * m record pairs; for general n we size BIN' as the number of
/// bits needed for mu.
///
/// Key properties (verified by tests / experiment E14):
///   * f(v) is a "yes" SHORT-(MULTI)SET-EQUALITY / SHORT-CHECK-SORT
///     instance iff v is a "yes" CHECK-phi instance;
///   * |f(v)| = Theta(|v|);
///   * f is computable in ST(O(1), O(log N), 2) — `ReduceOnTapes` runs it
///     on a metered context with a constant number of scans.
class ShortReduction {
 public:
  /// Prepares the reduction for instances of `problem_shape`
  /// (m = problem_shape.m() pairs of problem_shape.n()-bit values).
  explicit ShortReduction(const CheckPhi& problem_shape);

  /// Bits per block (= log2 m).
  std::size_t block_bits() const { return block_bits_; }
  /// Blocks per value mu.
  std::size_t blocks_per_value() const { return blocks_per_value_; }
  /// Bits of the BIN'(j) block index field.
  std::size_t index_bits() const { return index_bits_; }
  /// Record length of the produced SHORT instance.
  std::size_t record_bits() const {
    return 2 * block_bits_ + index_bits_;
  }

  /// The reduced instance f(v), computed in host memory.
  Instance Reduce(const Instance& instance) const;

  /// Runs the reduction on a metered ST context: the encoded CHECK-phi
  /// instance must be loaded on tape 0; the encoded f(v) is produced on
  /// tape 1. Uses a constant number of scans and O(log N) internal bits.
  /// Requires a context with at least 2 tapes.
  Status ReduceOnTapes(stmodel::StContext& ctx) const;

 private:
  std::size_t m_;
  std::size_t n_;
  std::size_t block_bits_;
  std::size_t blocks_per_value_;
  std::size_t index_bits_;
  permutation::Permutation phi_;
};

}  // namespace rstlab::problems

#endif  // RSTLAB_PROBLEMS_SHORT_REDUCTION_H_
