#include "problems/short_reduction.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <string>

#include "stmodel/internal_arena.h"
#include "stmodel/tape_io.h"

namespace rstlab::problems {

namespace {

/// Appends the `width`-bit binary representation of `value` to `out`.
void AppendBinary(std::size_t value, std::size_t width, BitString& out) {
  for (std::size_t b = 0; b < width; ++b) {
    out.PushBack((value >> (width - 1 - b)) & 1);
  }
}

}  // namespace

ShortReduction::ShortReduction(const CheckPhi& problem_shape)
    : m_(problem_shape.m()),
      n_(problem_shape.n()),
      phi_(problem_shape.phi()) {
  assert(m_ >= 1 && std::has_single_bit(m_));
  // m = 1 has log2 m = 0 bits of line index; clamp the block width to
  // one bit so the degenerate single-line shape still cuts values into
  // well-formed records.
  block_bits_ =
      m_ >= 2 ? static_cast<std::size_t>(std::bit_width(m_) - 1) : 1;
  blocks_per_value_ =
      std::max<std::size_t>(1, (n_ + block_bits_ - 1) / block_bits_);
  index_bits_ = stmodel::BitsFor(blocks_per_value_ - 1);
}

Instance ShortReduction::Reduce(const Instance& instance) const {
  // f(empty) = empty: a zero-pair instance is (trivially) a "yes" of
  // every problem on both sides of the reduction.
  if (instance.first.empty() && instance.second.empty()) {
    return Instance{};
  }
  assert(instance.m() == m_);
  Instance out;
  out.first.reserve(m_ * blocks_per_value_);
  out.second.reserve(m_ * blocks_per_value_);

  // Block j of an n-bit value: bits [n - (mu - j) * L, ...), i.e. we pad
  // the *first* block with leading zeros so every block has exactly L
  // bits and the value is the concatenation of blocks read left to right.
  // (The paper pads the last sub-block; padding position is immaterial as
  // long as it is applied uniformly to both lists.)
  const std::size_t total_bits = blocks_per_value_ * block_bits_;
  const std::size_t pad = total_bits - n_;
  auto block_of = [&](const BitString& value, std::size_t j) {
    BitString block;
    for (std::size_t b = 0; b < block_bits_; ++b) {
      const std::size_t global = j * block_bits_ + b;
      block.PushBack(global < pad ? false : value.bit(global - pad));
    }
    return block;
  };

  auto make_record = [&](std::size_t line_index, std::size_t j,
                         const BitString& block) {
    BitString record;
    AppendBinary(line_index, block_bits_, record);
    AppendBinary(j, index_bits_, record);
    for (std::size_t b = 0; b < block.size(); ++b) {
      record.PushBack(block.bit(b));
    }
    return record;
  };

  for (std::size_t i = 0; i < m_; ++i) {
    for (std::size_t j = 0; j < blocks_per_value_; ++j) {
      out.first.push_back(
          make_record(phi_[i], j, block_of(instance.first[i], j)));
    }
  }
  for (std::size_t i = 0; i < m_; ++i) {
    for (std::size_t j = 0; j < blocks_per_value_; ++j) {
      out.second.push_back(
          make_record(i, j, block_of(instance.second[i], j)));
    }
  }
  return out;
}

Status ShortReduction::ReduceOnTapes(stmodel::StContext& ctx) const {
  if (ctx.num_tapes() < 2) {
    return Status::InvalidArgument("reduction needs 2 external tapes");
  }
  tape::Tape& in = ctx.tape(0);
  tape::Tape& out = ctx.tape(1);
  stmodel::InternalArena& arena = ctx.arena();
  const std::size_t N = ctx.input_size();

  // All internal state is O(log N) bits: a handful of counters plus one
  // block buffer of log m < log N bits.
  const std::size_t ctr_bits = stmodel::BitsFor(N);
  stmodel::MeteredUint64 field_index(arena, ctr_bits);
  stmodel::MeteredUint64 block_index(arena, ctr_bits);
  stmodel::MeteredUint64 bit_in_block(arena, ctr_bits);
  stmodel::MeteredUint64 emitted(arena, ctr_bits);
  auto block_buffer = arena.Allocate(block_bits_);

  const std::size_t total_bits = blocks_per_value_ * block_bits_;
  const std::size_t pad = total_bits - n_;

  // Writes the `width`-bit binary representation of `value` to `out`.
  auto emit_binary = [&out](std::size_t value, std::size_t width) {
    for (std::size_t b = 0; b < width; ++b) {
      out.Write(((value >> (width - 1 - b)) & 1) ? '1' : '0');
      out.MoveRight();
    }
  };

  // One forward scan of the input; m and n are known from the problem
  // shape (the paper's variant derives them in a preliminary scan, which
  // CountFields supports; we accept them as parameters of the reduction).
  stmodel::Rewind(in);
  field_index = 0;
  while (!stmodel::AtEnd(in)) {
    const bool first_half = field_index.get() < m_;
    const std::size_t i = first_half
                              ? static_cast<std::size_t>(field_index.get())
                              : static_cast<std::size_t>(field_index.get()) -
                                    m_;
    const std::size_t line_index = first_half ? phi_[i] : i;

    // Stream the field block by block. The block buffer holds the
    // current log m payload bits; pad bits are synthesized.
    char buffer[64];  // host storage for the metered block buffer
    assert(block_bits_ <= 64);
    block_index = 0;
    bit_in_block = 0;
    emitted = 0;
    // Leading pad zeros belong to block 0.
    for (std::size_t p = 0; p < pad; ++p) {
      buffer[bit_in_block.get()] = '0';
      bit_in_block = bit_in_block.get() + 1;
    }
    while (in.Read() != stmodel::kFieldSeparator &&
           in.Read() != tape::kBlank) {
      buffer[bit_in_block.get()] = in.Read();
      bit_in_block = bit_in_block.get() + 1;
      in.MoveRight();
      emitted = emitted.get() + 1;
      if (bit_in_block.get() == block_bits_) {
        emit_binary(line_index, block_bits_);
        emit_binary(block_index.get(), index_bits_);
        for (std::size_t b = 0; b < block_bits_; ++b) {
          out.Write(buffer[b]);
          out.MoveRight();
        }
        out.Write(stmodel::kFieldSeparator);
        out.MoveRight();
        block_index = block_index.get() + 1;
        bit_in_block = 0;
      }
    }
    if (emitted.get() != n_) {
      return Status::InvalidArgument("field length differs from n");
    }
    if (bit_in_block.get() != 0) {
      return Status::Internal("padding did not align blocks");
    }
    if (in.Read() == stmodel::kFieldSeparator) in.MoveRight();
    field_index = field_index.get() + 1;
  }
  if (field_index.get() != 2 * m_) {
    return Status::InvalidArgument("instance does not have 2m fields");
  }
  return Status::OK();
}

}  // namespace rstlab::problems
