#include "problems/generators.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "problems/reference.h"

namespace rstlab::problems {

Instance EqualMultisets(std::size_t m, std::size_t n, Rng& rng) {
  Instance instance;
  instance.first.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    instance.first.push_back(BitString::Random(n, rng));
  }
  instance.second = instance.first;
  rng.Shuffle(instance.second);
  return instance;
}

Instance EqualSets(std::size_t m, std::size_t n, Rng& rng) {
  assert(n >= 64 || m <= (std::size_t{1} << n));
  Instance instance;
  std::unordered_set<BitString, BitStringHash> seen;
  while (instance.first.size() < m) {
    BitString v = BitString::Random(n, rng);
    if (seen.insert(v).second) instance.first.push_back(std::move(v));
  }
  instance.second = instance.first;
  rng.Shuffle(instance.second);
  return instance;
}

Instance PerturbedMultisets(std::size_t m, std::size_t n,
                            std::size_t num_changes, Rng& rng) {
  assert(num_changes >= 1 && num_changes <= m);
  Instance instance = EqualMultisets(m, n, rng);
  std::vector<std::size_t> positions(m);
  for (std::size_t i = 0; i < m; ++i) positions[i] = i;
  rng.Shuffle(positions);
  for (std::size_t c = 0; c < num_changes; ++c) {
    BitString& victim = instance.second[positions[c]];
    const std::size_t pos = rng.UniformBelow(n);
    victim.set_bit(pos, !victim.bit(pos));
  }
  // Independent flips can in principle cancel each other out; re-flip one
  // extra bit until the multisets genuinely differ (a single flip always
  // suffices, so this terminates immediately in practice).
  while (RefMultisetEquality(instance)) {
    BitString& victim = instance.second[positions[0]];
    const std::size_t pos = rng.UniformBelow(n);
    victim.set_bit(pos, !victim.bit(pos));
  }
  return instance;
}

Instance SortedPair(std::size_t m, std::size_t n, Rng& rng) {
  Instance instance = EqualMultisets(m, n, rng);
  std::sort(instance.second.begin(), instance.second.end());
  return instance;
}

Instance MisorderedPair(std::size_t m, std::size_t n, Rng& rng) {
  Instance instance = SortedPair(m, n, rng);
  for (std::size_t i = 0; i + 1 < m; ++i) {
    if (instance.second[i] != instance.second[i + 1]) {
      std::swap(instance.second[i], instance.second[i + 1]);
      return instance;
    }
  }
  // All elements equal: flip a bit instead (a multiset mismatch).
  if (m > 0 && n > 0) {
    instance.second[0].set_bit(0, !instance.second[0].bit(0));
  }
  return instance;
}

}  // namespace rstlab::problems
