#ifndef RSTLAB_PROBLEMS_CHECK_PHI_H_
#define RSTLAB_PROBLEMS_CHECK_PHI_H_

#include <cstddef>

#include "permutation/sortedness.h"
#include "problems/instance.h"
#include "util/random.h"

namespace rstlab::problems {

/// The CHECK-phi problem of Lemma 22, the hard core of Theorem 6.
///
/// For m a power of two, the value domain I = {0,1}^n is split into m
/// consecutive intervals I_0, ..., I_{m-1} (interval membership is
/// determined by a value's top log2(m) bits). A valid instance has
/// v_i in I_{phi(i)} and v'_j in I_j; the question is whether
/// (v_1, ..., v_m) = (v'_{phi(1)}, ..., v'_{phi(m)}).
///
/// On valid instances CHECK-phi, SET-EQUALITY, MULTISET-EQUALITY and
/// CHECK-SORT all coincide (each interval holds exactly one value of each
/// list, and the second list is automatically sorted) — that coincidence
/// is how Theorem 6 follows from Lemma 22, and `CoincidesOnInstance`
/// lets tests verify it.
class CheckPhi {
 public:
  /// Sets up the problem for `m` pairs (power of two) of `n`-bit values
  /// under permutation `phi` (typically the bit-reversal permutation of
  /// Remark 20). Requires n >= log2(m).
  CheckPhi(std::size_t m, std::size_t n, permutation::Permutation phi);

  std::size_t m() const { return m_; }
  std::size_t n() const { return n_; }
  const permutation::Permutation& phi() const { return phi_; }

  /// The interval index j with value in I_j (the top log2(m) bits).
  std::size_t IntervalOf(const BitString& value) const;

  /// True iff `instance` satisfies the CHECK-phi domain constraints
  /// (all lengths n, v_i in I_{phi(i)}, v'_j in I_j).
  bool IsValidInstance(const Instance& instance) const;

  /// Decides CHECK-phi: (v_1,...,v_m) = (v'_{phi(1)},...,v'_{phi(m)}).
  /// Requires a valid instance.
  bool Decide(const Instance& instance) const;

  /// A uniformly random "yes" instance: v'_j random in I_j,
  /// v_i = v'_{phi(i)}.
  Instance RandomYesInstance(Rng& rng) const;

  /// A "no" instance: a yes instance with one v_i replaced by a different
  /// value of the same interval. Requires the intervals to have at least
  /// two values (n > log2(m)).
  Instance RandomNoInstance(Rng& rng) const;

  /// True iff all four problems agree on `instance` (sanity check for the
  /// Theorem 6 coincidence argument).
  bool CoincidesOnInstance(const Instance& instance) const;

 private:
  /// A uniformly random value in interval I_j.
  BitString RandomValueIn(std::size_t j, Rng& rng) const;

  std::size_t m_;
  std::size_t n_;
  std::size_t interval_bits_;  // log2(m)
  permutation::Permutation phi_;
};

}  // namespace rstlab::problems

#endif  // RSTLAB_PROBLEMS_CHECK_PHI_H_
