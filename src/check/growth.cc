#include "check/growth.h"

#include <algorithm>
#include <functional>
#include <map>
#include <vector>

namespace rstlab::check {

namespace {

using machine::Action;
using machine::MachineSpec;
using machine::Move;

/// One resource-graph edge with the transition metadata the SCC
/// classifiers inspect. `weight` is the pass-specific cost (reversal
/// count or right-move count) charged when the edge is traversed.
struct MEdge {
  std::size_t from = 0;
  std::size_t to = 0;
  std::uint32_t weight = 0;
  const std::string* key = nullptr;  // transition key symbols
  const Action* act = nullptr;
};

struct EdgeGraph {
  std::size_t num_nodes = 0;
  std::vector<MEdge> edges;
};

/// Per-tape: true iff no well-formed action in the whole machine
/// writes a non-blank symbol over a blank one on that tape — the
/// tape's non-blank region can never grow past its initial extent
/// (the input on tape 0, nothing elsewhere).
std::vector<bool> BlankPreservedTapes(const MachineSpec& spec) {
  std::vector<bool> preserved(spec.num_tapes(), true);
  for (const auto& [key, actions] : spec.transitions) {
    if (!KeyWellFormed(spec, key.second, actions)) continue;
    for (const Action& a : actions) {
      for (std::size_t t = 0; t < spec.num_tapes(); ++t) {
        if (key.second[t] == machine::kBlank &&
            a.write[t] != machine::kBlank) {
          preserved[t] = false;
        }
      }
    }
  }
  return preserved;
}

/// Everything a classifier needs to know about one strongly-connected
/// component with a positive-weight internal edge.
struct SccContext {
  const MachineSpec* spec = nullptr;
  const std::vector<bool>* blank_preserved = nullptr;
  std::vector<std::size_t> nodes;            // graph node ids of the SCC
  std::vector<const MEdge*> internal;        // edges inside the SCC
  std::vector<const MEdge*> entries;         // edges entering the SCC
  bool contains_start = false;
};

/// Longest path (by `weight_of`) over the subgraph of `ctx`'s nodes
/// induced by the edges `include` admits, started anywhere; nullopt
/// when a positive-weight edge sits on a cycle of that subgraph.
std::optional<std::uint64_t> MaxPathWeight(
    const SccContext& ctx,
    const std::function<bool(const MEdge&)>& include,
    const std::function<std::uint32_t(const MEdge&)>& weight_of) {
  std::map<std::size_t, std::size_t> remap;
  for (std::size_t v : ctx.nodes) remap.emplace(v, remap.size());
  Graph g(remap.size() + 1);  // extra node: virtual root
  const std::size_t root = remap.size();
  for (const auto& [node, idx] : remap) {
    (void)node;
    g.AddEdge(root, idx, 0);
  }
  for (const MEdge* e : ctx.internal) {
    if (!include(*e)) continue;
    g.AddEdge(remap.at(e->from), remap.at(e->to), weight_of(*e));
  }
  return NumericLongestPath(g, root);
}

/// Scan-gated classification: the component is one-directional
/// ({Right, Stay}) on external tape g, every right-move on g reads
/// non-blank, g's non-blank region never grows (machine-wide), and the
/// Stay-subgraph carries no positive-weight cycle. The head on g then
/// advances at most N+1 times during any single residency in the
/// component (component = SCC of the condensation, so a run resides in
/// it exactly once), and between two advances the path follows the
/// acyclic Stay-subgraph. Total weight <= (N + 2) * W with
/// W = (longest Stay-path weight) + (heaviest single edge).
std::optional<BoundExpr> ScanGatedBound(const SccContext& ctx) {
  const MachineSpec& spec = *ctx.spec;
  for (std::size_t g = 0; g < spec.num_external_tapes; ++g) {
    if (!(*ctx.blank_preserved)[g]) continue;
    bool one_directional = true;
    std::uint64_t heaviest = 0;
    for (const MEdge* e : ctx.internal) {
      const Move m = e->act->moves[g];
      if (m == Move::kLeft ||
          (m == Move::kRight && (*e->key)[g] == machine::kBlank)) {
        one_directional = false;
        break;
      }
      heaviest = std::max<std::uint64_t>(heaviest, e->weight);
    }
    if (!one_directional) continue;
    const std::optional<std::uint64_t> stay_weight = MaxPathWeight(
        ctx,
        [g](const MEdge& e) { return e.act->moves[g] == Move::kStay; },
        [](const MEdge& e) { return e.weight; });
    if (!stay_weight.has_value()) continue;  // reversal cycle without advance
    const std::uint64_t per_segment = SatAdd(*stay_weight, heaviest);
    return BoundExpr::Linear(per_segment) +
           BoundExpr::Constant(SatMul(2, per_segment));
  }
  return std::nullopt;
}

/// Non-growing scan (cell pass): every right-move on `tape` inside the
/// component reads non-blank, and the component never writes non-blank
/// over blank on `tape`. The head can never pass the frontier written
/// before entry, so residency grows the tape by at most one cell.
std::optional<BoundExpr> NonGrowingScanBound(const SccContext& ctx,
                                             std::size_t tape) {
  for (const MEdge* e : ctx.internal) {
    const char read = (*e->key)[tape];
    if (e->act->moves[tape] == Move::kRight && read == machine::kBlank) {
      return std::nullopt;
    }
    if (read == machine::kBlank &&
        e->act->write[tape] != machine::kBlank) {
      return std::nullopt;
    }
  }
  return BoundExpr::Constant(1);
}

/// LSB abstract values: a node is `kRun` when every path reaching it
/// holds the head one cell past a contiguous block of this-excursion
/// consume steps above a marker (so the next consume or hi-write is
/// value-disciplined), `kUnknown` otherwise.
enum class LsbValue { kUnset, kRun, kUnknown };

LsbValue Join(LsbValue a, LsbValue b) {
  return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

/// Binary-counter classification for internal tape `tape`; see
/// growth.h. Returns the component's cell contribution (O(log N)), or
/// nullopt when the discipline cannot be established.
std::optional<BoundExpr> CounterBound(const SccContext& ctx,
                                      std::size_t tape) {
  const MachineSpec& spec = *ctx.spec;

  // 1. Right-moves must be consume steps (hi -> lo) or marker steps
  //    (mark -> mark), with the three symbols pairwise distinct and
  //    non-blank. A right-move over blank walks off the frontier.
  char hi = 0;
  char lo = 0;
  char mark = 0;
  bool has_consume = false;
  for (const MEdge* e : ctx.internal) {
    if (e->act->moves[tape] != Move::kRight) continue;
    const char read = (*e->key)[tape];
    const char write = e->act->write[tape];
    if (read == machine::kBlank) return std::nullopt;
    if (write == read) {
      if (mark != 0 && mark != read) return std::nullopt;
      mark = read;
    } else {
      if (has_consume && (hi != read || lo != write)) return std::nullopt;
      hi = read;
      lo = write;
      has_consume = true;
    }
  }
  if (!has_consume) return std::nullopt;
  if (mark != 0 && (mark == hi || mark == lo)) return std::nullopt;

  // 2. The component must never create a marker (a marker written
  //    mid-excursion would let later excursions anchor arbitrarily
  //    deep), and every frontier extension must be a hi-write (the
  //    canonical carry-out increment).
  for (const MEdge* e : ctx.internal) {
    const char read = (*e->key)[tape];
    const char write = e->act->write[tape];
    if (mark != 0 && write == mark && read != mark) return std::nullopt;
    if (read == machine::kBlank && write != machine::kBlank &&
        write != hi) {
      return std::nullopt;
    }
  }

  // 3. LSB discipline: consume steps and hi-writes may only fire from
  //    kRun nodes. Entry edges anchor kRun only when they are a marker
  //    plant (blank -> mark, moving right: the head lands on the LSB)
  //    or a marker step; everything else enters kUnknown.
  const auto is_hi_write = [&](const MEdge& e) {
    return e.act->write[tape] == hi && (*e.key)[tape] != hi;
  };
  const auto is_consume = [&](const MEdge& e) {
    return e.act->moves[tape] == Move::kRight && (*e.key)[tape] == hi;
  };
  const auto is_marker_step = [&](const MEdge& e) {
    return mark != 0 && e.act->moves[tape] == Move::kRight &&
           (*e.key)[tape] == mark;
  };
  std::map<std::size_t, LsbValue> val;
  for (std::size_t v : ctx.nodes) val[v] = LsbValue::kUnset;
  if (ctx.contains_start) return std::nullopt;  // blank-tape entry state
  for (const MEdge* e : ctx.entries) {
    const bool plants = mark != 0 && e->act->moves[tape] == Move::kRight &&
                        (*e->key)[tape] == machine::kBlank &&
                        e->act->write[tape] == mark;
    val[e->to] = Join(val[e->to], (plants || is_marker_step(*e))
                                      ? LsbValue::kRun
                                      : LsbValue::kUnknown);
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const MEdge* e : ctx.internal) {
      const LsbValue from = val[e->from];
      if (from == LsbValue::kUnset) continue;
      if ((is_consume(*e) || is_hi_write(*e)) && from != LsbValue::kRun) {
        return std::nullopt;  // undisciplined value mutation
      }
      LsbValue out;
      if (is_hi_write(*e)) {
        out = LsbValue::kUnknown;  // head left the LSB anchor
      } else if (is_consume(*e) || is_marker_step(*e)) {
        out = LsbValue::kRun;
      } else if (e->act->moves[tape] == Move::kStay) {
        out = from;
      } else {
        out = LsbValue::kUnknown;
      }
      const LsbValue joined = Join(val[e->to], out);
      if (joined != val[e->to]) {
        val[e->to] = joined;
        changed = true;
      }
    }
  }

  // 4. Each completed excursion nets the stored value +1, so the value
  //    is bounded by the number of hi-write trips H. Gate those trips
  //    by an input-consuming scan: on some external tape g the
  //    component is one-directional with non-blank-gated right-moves
  //    (at most N+1 advances per residency), and removing those
  //    advances leaves every hi-write off-cycle. Then
  //    H <= (N + 2) * P with P hi-writes per gap, and the head
  //    excursion past the entry frontier is <= log2(H + 1) + 2.
  const bool any_hi_write =
      std::any_of(ctx.internal.begin(), ctx.internal.end(),
                  [&](const MEdge* e) { return is_hi_write(*e); });
  if (!any_hi_write) {
    return BoundExpr::Constant(2);  // value never grows inside the SCC
  }
  for (std::size_t g = 0; g < spec.num_external_tapes; ++g) {
    if (!(*ctx.blank_preserved)[g]) continue;
    bool one_directional = true;
    for (const MEdge* e : ctx.internal) {
      const Move m = e->act->moves[g];
      if (m == Move::kLeft ||
          (m == Move::kRight && (*e->key)[g] == machine::kBlank)) {
        one_directional = false;
        break;
      }
    }
    if (!one_directional) continue;
    const std::optional<std::uint64_t> per_gap = MaxPathWeight(
        ctx,
        [g](const MEdge& e) { return e.act->moves[g] != Move::kRight; },
        [&](const MEdge& e) { return is_hi_write(e) ? 1U : 0U; });
    if (!per_gap.has_value()) continue;  // hi-write on an ungated cycle
    return BoundExpr::LogN(1) +
           BoundExpr::Constant(SatAdd(CeilLog2(SatAdd(*per_gap, 2)), 6));
  }
  return std::nullopt;
}

/// Shared DP: decompose the graph into strongly-connected components,
/// charge each component its classified contribution, and accumulate
/// the symbolic maximum over every path from `start` (component ids
/// are already topologically ordered).
BoundExpr SymbolicLongestPath(
    const EdgeGraph& eg, std::size_t start, const MachineSpec& spec,
    const std::vector<bool>& blank_preserved,
    const std::function<BoundExpr(const SccContext&)>& classify) {
  Graph g(eg.num_nodes);
  for (const MEdge& e : eg.edges) g.AddEdge(e.from, e.to, e.weight);
  const std::vector<bool> reach = ReachableFrom(g, start);
  const Condensation scc(g);

  std::vector<SccContext> ctx(scc.num_components);
  std::vector<bool> positive(scc.num_components, false);
  for (std::size_t v = 0; v < eg.num_nodes; ++v) {
    if (reach[v]) ctx[scc.comp_of[v]].nodes.push_back(v);
  }
  for (const MEdge& e : eg.edges) {
    if (!reach[e.from]) continue;
    const std::size_t cf = scc.comp_of[e.from];
    const std::size_t ct = scc.comp_of[e.to];
    if (cf == ct) {
      ctx[ct].internal.push_back(&e);
      if (e.weight > 0) positive[ct] = true;
    } else {
      ctx[ct].entries.push_back(&e);
    }
  }

  std::vector<BoundExpr> pred(scc.num_components);
  std::vector<bool> has_pred(scc.num_components, false);
  has_pred[scc.comp_of[start]] = true;
  BoundExpr best;
  for (std::size_t c = 0; c < scc.num_components; ++c) {
    if (!has_pred[c]) continue;
    BoundExpr dist = pred[c];
    if (positive[c]) {
      ctx[c].spec = &spec;
      ctx[c].blank_preserved = &blank_preserved;
      ctx[c].contains_start = scc.comp_of[start] == c;
      dist += classify(ctx[c]);
    }
    best = BoundExpr::Max(best, dist);
    for (std::size_t v : ctx[c].nodes) {
      for (const Graph::Edge& e : g.adj[v]) {
        const std::size_t d = scc.comp_of[e.to];
        if (d == c) continue;
        const BoundExpr cand = dist + BoundExpr::Constant(e.weight);
        pred[d] = has_pred[d] ? BoundExpr::Max(pred[d], cand) : cand;
        has_pred[d] = true;
      }
    }
  }
  return best;
}

}  // namespace

const char* GrowthClassName(GrowthClass cls) {
  switch (cls) {
    case GrowthClass::kConstant:
      return "constant";
    case GrowthClass::kLogarithmic:
      return "logarithmic";
    case GrowthClass::kLinear:
      return "linear";
    case GrowthClass::kUnbounded:
      return "unbounded";
  }
  return "unknown";
}

GrowthClass GrowthOf(const BoundExpr& bound) {
  if (bound.unbounded()) return GrowthClass::kUnbounded;
  const auto [n_pow, log_pow] = bound.Order();
  if (n_pow > 0) return GrowthClass::kLinear;
  return log_pow > 0 ? GrowthClass::kLogarithmic : GrowthClass::kConstant;
}

BoundExpr SymbolicExternalReversalBound(const MachineSpec& spec,
                                        const StateIndex& states,
                                        std::size_t tape) {
  // Head-direction phase graph: node = 2 * state + (0: dir +1,
  // 1: dir -1); a strict direction change weighs 1. Sound for the same
  // reason as the runtime tracker: a measured reversal is a weight-1
  // edge on the executed path (blocked left moves at cell 0 are also
  // charged, so the walk only over-approximates).
  EdgeGraph eg;
  eg.num_nodes = 2 * states.states.size();
  for (const auto& [key, actions] : spec.transitions) {
    if (!KeyWellFormed(spec, key.second, actions)) continue;
    const std::size_t from = states.index.at(key.first);
    for (const Action& a : actions) {
      const std::size_t to = states.index.at(a.next_state);
      const auto add = [&](std::size_t f, std::size_t t,
                           std::uint32_t w) {
        eg.edges.push_back({f, t, w, &key.second, &a});
      };
      switch (a.moves[tape]) {
        case Move::kStay:
          add(2 * from, 2 * to, 0);
          add(2 * from + 1, 2 * to + 1, 0);
          break;
        case Move::kRight:
          add(2 * from, 2 * to, 0);
          add(2 * from + 1, 2 * to, 1);
          break;
        case Move::kLeft:
          add(2 * from, 2 * to + 1, 1);
          add(2 * from + 1, 2 * to + 1, 0);
          break;
      }
    }
  }
  const std::vector<bool> preserved = BlankPreservedTapes(spec);
  return SymbolicLongestPath(
      eg, 2 * states.index.at(spec.start_state), spec, preserved,
      [](const SccContext& ctx) {
        return ScanGatedBound(ctx).value_or(BoundExpr::Unbounded());
      });
}

BoundExpr SymbolicInternalCellBound(const MachineSpec& spec,
                                    const StateIndex& states,
                                    std::size_t tape) {
  // Internal tapes only grow under right moves: cells used on any run
  // is at most 1 + (number of right moves on the executed path).
  EdgeGraph eg;
  eg.num_nodes = states.states.size();
  for (const auto& [key, actions] : spec.transitions) {
    if (!KeyWellFormed(spec, key.second, actions)) continue;
    const std::size_t from = states.index.at(key.first);
    for (const Action& a : actions) {
      eg.edges.push_back({from, states.index.at(a.next_state),
                          a.moves[tape] == Move::kRight ? 1U : 0U,
                          &key.second, &a});
    }
  }
  const std::vector<bool> preserved = BlankPreservedTapes(spec);
  const BoundExpr walk = SymbolicLongestPath(
      eg, states.index.at(spec.start_state), spec, preserved,
      [tape](const SccContext& ctx) {
        if (std::optional<BoundExpr> b = NonGrowingScanBound(ctx, tape)) {
          return *b;
        }
        if (std::optional<BoundExpr> b = CounterBound(ctx, tape)) {
          return *b;
        }
        if (std::optional<BoundExpr> b = ScanGatedBound(ctx)) return *b;
        return BoundExpr::Unbounded();
      });
  return walk + BoundExpr::Constant(1);  // the initial blank cell
}

}  // namespace rstlab::check
