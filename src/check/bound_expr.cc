#include "check/bound_expr.h"

#include <limits>
#include <sstream>

namespace rstlab::check {

namespace {

constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();

/// base^exp, saturating.
std::uint64_t SatPow(std::uint64_t base, unsigned exp) {
  std::uint64_t out = 1;
  for (unsigned i = 0; i < exp; ++i) out = SatMul(out, base);
  return out;
}

}  // namespace

std::uint64_t SatAdd(std::uint64_t a, std::uint64_t b) {
  return a > kMax - b ? kMax : a + b;
}

std::uint64_t SatMul(std::uint64_t a, std::uint64_t b) {
  if (a == 0 || b == 0) return 0;
  return a > kMax / b ? kMax : a * b;
}

std::uint64_t CeilLog2(std::size_t n) {
  std::uint64_t bits = 0;
  std::size_t v = n < 2 ? 2 : n;
  // ceil(log2 v) = bit position of the highest set bit, plus one when v
  // is not a power of two.
  std::size_t highest = v;
  while (highest > 1) {
    highest >>= 1U;
    ++bits;
  }
  if ((v & (v - 1)) != 0) ++bits;
  return bits;
}

BoundExpr BoundExpr::Constant(std::uint64_t c) { return Monomial(c, 0, 0); }

BoundExpr BoundExpr::LogN(std::uint64_t coeff) {
  return Monomial(coeff, 0, 1);
}

BoundExpr BoundExpr::Linear(std::uint64_t coeff) {
  return Monomial(coeff, 1, 0);
}

BoundExpr BoundExpr::Monomial(std::uint64_t coeff, unsigned n_pow,
                              unsigned log_pow) {
  BoundExpr e;
  if (coeff != 0) e.terms_[{n_pow, log_pow}] = coeff;
  return e;
}

BoundExpr BoundExpr::Unbounded() {
  BoundExpr e;
  e.unbounded_ = true;
  return e;
}

bool BoundExpr::IsConstant() const {
  if (unbounded_) return false;
  for (const auto& [pows, coeff] : terms_) {
    if (pows != std::pair<unsigned, unsigned>{0, 0}) return false;
  }
  return true;
}

std::uint64_t BoundExpr::ConstantValue() const {
  const auto it = terms_.find({0, 0});
  return it == terms_.end() ? 0 : it->second;
}

BoundExpr& BoundExpr::operator+=(const BoundExpr& other) {
  if (other.unbounded_) unbounded_ = true;
  if (unbounded_) {
    terms_.clear();
    return *this;
  }
  for (const auto& [pows, coeff] : other.terms_) {
    auto [it, inserted] = terms_.emplace(pows, coeff);
    if (!inserted) it->second = SatAdd(it->second, coeff);
  }
  return *this;
}

BoundExpr& BoundExpr::operator*=(const BoundExpr& other) {
  // 0 * unbounded = 0: a product with no terms annihilates.
  if ((unbounded_ && !other.unbounded_ && other.terms_.empty()) ||
      (other.unbounded_ && !unbounded_ && terms_.empty())) {
    terms_.clear();
    unbounded_ = false;
    return *this;
  }
  if (unbounded_ || other.unbounded_) {
    terms_.clear();
    unbounded_ = true;
    return *this;
  }
  std::map<std::pair<unsigned, unsigned>, std::uint64_t> product;
  for (const auto& [lp, lc] : terms_) {
    for (const auto& [rp, rc] : other.terms_) {
      const std::pair<unsigned, unsigned> pows{lp.first + rp.first,
                                               lp.second + rp.second};
      auto [it, inserted] = product.emplace(pows, SatMul(lc, rc));
      if (!inserted) it->second = SatAdd(it->second, SatMul(lc, rc));
    }
  }
  terms_ = std::move(product);
  return *this;
}

BoundExpr BoundExpr::Max(const BoundExpr& a, const BoundExpr& b) {
  if (a.unbounded_ || b.unbounded_) return Unbounded();
  BoundExpr out = a;
  for (const auto& [pows, coeff] : b.terms_) {
    auto [it, inserted] = out.terms_.emplace(pows, coeff);
    if (!inserted) it->second = std::max(it->second, coeff);
  }
  return out;
}

std::uint64_t BoundExpr::Eval(std::size_t n) const {
  if (unbounded_) return kMax;
  const std::uint64_t log_n = CeilLog2(n);
  std::uint64_t total = 0;
  for (const auto& [pows, coeff] : terms_) {
    const std::uint64_t term =
        SatMul(coeff, SatMul(SatPow(n, pows.first),
                             SatPow(log_n, pows.second)));
    total = SatAdd(total, term);
  }
  return total;
}

std::pair<unsigned, unsigned> BoundExpr::Order() const {
  constexpr unsigned kTop = std::numeric_limits<unsigned>::max();
  if (unbounded_) return {kTop, kTop};
  if (terms_.empty()) return {0, 0};
  return terms_.rbegin()->first;  // map is sorted by (n_pow, log_pow)
}

std::string BoundExpr::ToString() const {
  if (unbounded_) return "unbounded";
  if (terms_.empty()) return "0";
  std::ostringstream os;
  bool first = true;
  for (const auto& [pows, coeff] : terms_) {
    if (!first) os << " + ";
    first = false;
    const auto [n_pow, log_pow] = pows;
    if (coeff != 1 || (n_pow == 0 && log_pow == 0)) os << coeff;
    bool star = coeff != 1 || (n_pow == 0 && log_pow == 0);
    if (n_pow > 0) {
      if (star) os << "*";
      os << "N";
      if (n_pow > 1) os << "^" << n_pow;
      star = true;
    }
    if (log_pow > 0) {
      if (star) os << "*";
      os << "logN";
      if (log_pow > 1) os << "^" << log_pow;
    }
  }
  return os.str();
}

std::optional<std::size_t> FindWitnessN(
    const BoundExpr& bound,
    const std::function<std::uint64_t(std::size_t)>& envelope,
    std::size_t n_lo, std::size_t n_hi) {
  if (n_lo < 1) n_lo = 1;
  for (std::size_t n = n_lo; n <= n_hi;) {
    if (bound.Eval(n) > envelope(n)) return n;
    if (n > n_hi / 2) break;  // next doubling would overflow past n_hi
    n *= 2;
  }
  return std::nullopt;
}

}  // namespace rstlab::check
