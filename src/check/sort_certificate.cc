#include "check/sort_certificate.h"

#include <algorithm>
#include <sstream>

#include "check/diagnostics.h"

namespace rstlab::check {

namespace {

/// Bits needed to store values in [0, n], mirroring the stmodel counter
/// convention (kept local so the check layer stays free of stmodel).
std::size_t BitsFor(std::size_t n) {
  std::size_t bits = 1;
  while ((n >>= 1) != 0) ++bits;
  return bits;
}

}  // namespace

std::string SortCertificate::ToString() const {
  std::ostringstream os;
  os << "m=" << num_fields << " k=" << fanout << " L=" << run_length
     << " P=" << merge_passes << " r<=" << max_scan_bound
     << " s<=" << max_internal_bits;
  return os.str();
}

SortCertificate CertifyKWaySort(std::size_t num_fields,
                                std::size_t max_field_len,
                                std::size_t input_size, std::size_t fanout,
                                std::size_t run_length) {
  SortCertificate cert;
  cert.num_fields = num_fields;
  cert.fanout = std::max<std::size_t>(2, fanout);
  cert.run_length = std::max<std::size_t>(1, run_length);

  // Ceiling divisions written without the +(d-1) trick: num_fields and
  // the geometry are caller-supplied, so the additive form could wrap
  // near SIZE_MAX and undercount the passes.
  const std::size_t runs = num_fields / cert.run_length +
                           (num_fields % cert.run_length != 0 ? 1 : 0);
  for (std::size_t r = runs; r > 1;
       r = r / cert.fanout + (r % cert.fanout != 0 ? 1 : 0)) {
    ++cert.merge_passes;
  }

  if (num_fields <= 1) {
    // Degenerate inputs return before charging anything: only the
    // counting scan touches the source tape.
    cert.max_scan_bound = 3;
    cert.max_internal_bits = 0;
    return cert;
  }

  // Scan bound: the baseline scan, at most 6 source-tape reversals
  // (three rewind-and-stream passes: count, run formation, writeback at
  // 2 reversals each), plus the canonical scratch bill 4*k*P + 2 that
  // the sort charges through StContext::ChargeScratch. Saturating
  // arithmetic throughout: a caller-supplied geometry near SIZE_MAX
  // must degrade to a (useless but sound) UINT64_MAX bound, never wrap
  // to a small admissible-looking one.
  cert.max_scan_bound = SatAdd(
      9, SatAdd(SatMul(SatMul(4, cert.fanout), cert.merge_passes), 2));

  // Internal bits: the persistent counter block (k + 3 counters wide
  // enough for N), plus the larger of the two phase allocations — the
  // formation run buffer (run_length records) and the merge's k record
  // buffers with two position counters per way. One bit per buffered
  // 0/1 character, the seed sort's convention. The trailing slack
  // absorbs rounding, never an asymptotic term.
  const std::size_t ctr = BitsFor(std::max<std::size_t>(1, input_size));
  const std::size_t record = std::max<std::size_t>(1, max_field_len);
  const std::uint64_t formation_bits = SatMul(cert.run_length, record);
  const std::uint64_t merge_bits = SatAdd(
      SatMul(cert.fanout, record), SatMul(SatMul(2, cert.fanout), ctr));
  cert.max_internal_bits =
      SatAdd(SatMul(SatAdd(cert.fanout, 3), ctr),
             SatAdd(std::max(formation_bits, merge_bits), 64));
  return cert;
}

Status CheckSortCostsAgainstCertificate(const tape::ResourceReport& report,
                                        const SortCertificate& cert) {
  if (report.scan_bound > cert.max_scan_bound) {
    std::ostringstream os;
    os << CodeName(Code::kCertificateViolated) << ": sort run performed "
       << report.scan_bound << " scans but the certificate ("
       << cert.ToString() << ") allows " << cert.max_scan_bound;
    return Status::ResourceExhausted(os.str());
  }
  if (report.internal_space > cert.max_internal_bits) {
    std::ostringstream os;
    os << CodeName(Code::kCertificateViolated) << ": sort run used "
       << report.internal_space << " internal bits but the certificate ("
       << cert.ToString() << ") allows " << cert.max_internal_bits;
    return Status::ResourceExhausted(os.str());
  }
  return Status::OK();
}

std::string SymbolicSortCertificate::ToString() const {
  std::ostringstream os;
  os << "k=" << fanout << " L=" << run_length << " r<=" << scan_bound.ToString()
     << " s<=" << internal_bits.ToString();
  return os.str();
}

SymbolicSortCertificate CertifyKWaySortSymbolic(std::size_t max_field_len,
                                                std::size_t fanout,
                                                std::size_t run_length) {
  SymbolicSortCertificate cert;
  cert.fanout = std::max<std::size_t>(2, fanout);
  cert.run_length = std::max<std::size_t>(1, run_length);
  cert.max_field_len = std::max<std::size_t>(1, max_field_len);
  const std::uint64_t k = cert.fanout;
  const std::uint64_t record = cert.max_field_len;

  // Scans. On an N-cell input there are m <= N fields, so runs <= N
  // and merge passes P = ceil(log_k(runs)) <= ceil(log2 N) (k >= 2).
  // The concrete bill 9 + 4kP + 2 is therefore dominated by
  //   11 + 4k * ceil(log2 N)  for every N >= 1,
  // which also covers the degenerate m <= 1 bill of 3.
  cert.scan_bound =
      BoundExpr::Constant(11) + BoundExpr::LogN(SatMul(4, k));

  // Internal bits. Every counter is BitsFor(N) <= ceil(log2 N) + 1
  // bits wide and there are (k + 3) persistent ones plus 2k merge
  // position counters — (3k + 3) counters total. The record buffers
  // (max(L, k) records) and the 64-bit slack are N-independent.
  const std::uint64_t counters = SatAdd(SatMul(3, k), 3);
  const std::uint64_t buffers = SatMul(
      std::max<std::uint64_t>(cert.run_length, k), record);
  cert.internal_bits =
      BoundExpr::LogN(counters) +
      BoundExpr::Constant(SatAdd(counters, SatAdd(buffers, 64)));
  return cert;
}

Status CheckSortCostsAgainstSymbolicCertificate(
    const tape::ResourceReport& report, const SymbolicSortCertificate& cert,
    std::size_t n) {
  const std::uint64_t scan_cap = cert.scan_bound.Eval(n);
  if (report.scan_bound > scan_cap) {
    std::ostringstream os;
    os << CodeName(Code::kCertificateViolated) << ": sort run performed "
       << report.scan_bound << " scans but the symbolic certificate ("
       << cert.ToString() << ") allows " << scan_cap
       << " at N = " << n;
    return Status::ResourceExhausted(os.str());
  }
  const std::uint64_t bits_cap = cert.internal_bits.Eval(n);
  if (report.internal_space > bits_cap) {
    std::ostringstream os;
    os << CodeName(Code::kCertificateViolated) << ": sort run used "
       << report.internal_space << " internal bits but the symbolic "
       << "certificate (" << cert.ToString() << ") allows " << bits_cap
       << " at N = " << n;
    return Status::ResourceExhausted(os.str());
  }
  return Status::OK();
}

}  // namespace rstlab::check
