#include "check/sort_certificate.h"

#include <algorithm>
#include <sstream>

#include "check/diagnostics.h"

namespace rstlab::check {

namespace {

/// Bits needed to store values in [0, n], mirroring the stmodel counter
/// convention (kept local so the check layer stays free of stmodel).
std::size_t BitsFor(std::size_t n) {
  std::size_t bits = 1;
  while ((n >>= 1) != 0) ++bits;
  return bits;
}

}  // namespace

std::string SortCertificate::ToString() const {
  std::ostringstream os;
  os << "m=" << num_fields << " k=" << fanout << " L=" << run_length
     << " P=" << merge_passes << " r<=" << max_scan_bound
     << " s<=" << max_internal_bits;
  return os.str();
}

SortCertificate CertifyKWaySort(std::size_t num_fields,
                                std::size_t max_field_len,
                                std::size_t input_size, std::size_t fanout,
                                std::size_t run_length) {
  SortCertificate cert;
  cert.num_fields = num_fields;
  cert.fanout = std::max<std::size_t>(2, fanout);
  cert.run_length = std::max<std::size_t>(1, run_length);

  std::size_t runs =
      (num_fields + cert.run_length - 1) / cert.run_length;
  for (std::size_t r = runs; r > 1; r = (r + cert.fanout - 1) / cert.fanout) {
    ++cert.merge_passes;
  }

  if (num_fields <= 1) {
    // Degenerate inputs return before charging anything: only the
    // counting scan touches the source tape.
    cert.max_scan_bound = 3;
    cert.max_internal_bits = 0;
    return cert;
  }

  // Scan bound: the baseline scan, at most 6 source-tape reversals
  // (three rewind-and-stream passes: count, run formation, writeback at
  // 2 reversals each), plus the canonical scratch bill 4*k*P + 2 that
  // the sort charges through StContext::ChargeScratch.
  cert.max_scan_bound =
      1 + 6 +
      4 * static_cast<std::uint64_t>(cert.fanout) * cert.merge_passes + 2;

  // Internal bits: the persistent counter block (k + 3 counters wide
  // enough for N), plus the larger of the two phase allocations — the
  // formation run buffer (run_length records) and the merge's k record
  // buffers with two position counters per way. One bit per buffered
  // 0/1 character, the seed sort's convention. The trailing slack
  // absorbs rounding, never an asymptotic term.
  const std::size_t ctr = BitsFor(std::max<std::size_t>(1, input_size));
  const std::size_t record = std::max<std::size_t>(1, max_field_len);
  const std::size_t formation_bits = cert.run_length * record;
  const std::size_t merge_bits =
      cert.fanout * record + 2 * cert.fanout * ctr;
  cert.max_internal_bits = (cert.fanout + 3) * ctr +
                           std::max(formation_bits, merge_bits) + 64;
  return cert;
}

Status CheckSortCostsAgainstCertificate(const tape::ResourceReport& report,
                                        const SortCertificate& cert) {
  if (report.scan_bound > cert.max_scan_bound) {
    std::ostringstream os;
    os << CodeName(Code::kCertificateViolated) << ": sort run performed "
       << report.scan_bound << " scans but the certificate ("
       << cert.ToString() << ") allows " << cert.max_scan_bound;
    return Status::ResourceExhausted(os.str());
  }
  if (report.internal_space > cert.max_internal_bits) {
    std::ostringstream os;
    os << CodeName(Code::kCertificateViolated) << ": sort run used "
       << report.internal_space << " internal bits but the certificate ("
       << cert.ToString() << ") allows " << cert.max_internal_bits;
    return Status::ResourceExhausted(os.str());
  }
  return Status::OK();
}

}  // namespace rstlab::check
