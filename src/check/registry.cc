#include "check/registry.h"

#include "core/complexity.h"
#include "listmachine/machines.h"
#include "machine/machine_builder.h"
#include "machine/paper_machines.h"

namespace rstlab::check {

namespace {

AnalyzeOptions Options(core::ResourceClass declared, std::string alphabet) {
  AnalyzeOptions options;
  options.declared = std::move(declared);
  options.alphabet = std::move(alphabet);
  return options;
}

}  // namespace

std::vector<CheckedMachine> AllCheckedMachines() {
  using core::ConstScans;
  using core::ConstSpace;
  using core::LogSpace;
  namespace zoo = machine::zoo;
  namespace paper = machine::paper;

  std::vector<CheckedMachine> machines;
  machines.push_back(
      {"first-symbol-one", zoo::FirstSymbolOne(),
       Options(core::StClass("ST(1, 0, 1)", ConstScans(1), ConstSpace(0), 1),
               "01"),
       {"", "0", "1", "101", "011"}});
  machines.push_back(
      {"even-ones", zoo::EvenOnes(),
       Options(core::StClass("ST(1, 0, 1)", ConstScans(1), ConstSpace(0), 1),
               "01#"),
       {"", "0110", "111", "10#11#", "1"}});
  machines.push_back(
      {"fair-coin", zoo::FairCoin(),
       Options(
           core::RstClass("RST(1, 0, 1)", ConstScans(1), ConstSpace(0), 1),
           "01"),
       {"", "0", "1"}});
  machines.push_back(
      {"biased-coin", zoo::BiasedCoin(3, 2),
       Options(
           core::RstClass("RST(1, 0, 1)", ConstScans(1), ConstSpace(0), 1),
           "01"),
       {"", "0", "1"}});
  machines.push_back(
      {"two-field-equality", zoo::TwoFieldEquality(),
       Options(core::StClass("ST(3, 0, 2)", ConstScans(3), ConstSpace(0), 2),
               "01#AZ"),
       {"01#01#", "01#10#", "#", "#0#", "1#1#", "10#10#"}});
  machines.push_back(
      {"guess-first-bit", zoo::GuessFirstBit(),
       Options(
           core::NstClass("NST(1, 0, 1)", ConstScans(1), ConstSpace(0), 1),
           "01"),
       {"0", "1", "01", "10"}});
  machines.push_back(
      {"palindrome", zoo::Palindrome(),
       Options(core::StClass("ST(4, 0, 2)", ConstScans(4), ConstSpace(0), 2),
               "01#AZ"),
       {"0110#", "010#", "01#", "#", "1#"}});
  machines.push_back(
      {"balanced-zeros-ones", zoo::BalancedZerosOnes(),
       // The counter machine keeps two unary-in-binary counters plus a
       // constant frame of marker cells; the symbolic analyzer infers
       // 2*logN + O(1) cells, so the declared envelope needs slope > 2
       // to dominate past the constant (6*logN >= 2*logN + 22 for all
       // N >= 2^6; the 4.0 slope of earlier revisions crossed at the
       // RST018 witness N = 256).
       Options(core::StClass("ST(1, O(log N), 1)", ConstScans(1),
                             LogSpace(6.0), 1),
               "01#^"),
       {"", "01", "0011", "0101", "011", "000111", "0001"}});
  machines.push_back(
      {"theorem8a-fingerprint", paper::Theorem8aFingerprint(),
       Options(core::CoRstClass("co-RST(2, 0, 1)", ConstScans(2),
                                ConstSpace(0), 1),
               "01#$AZD"),
       {"", "$", "0$0", "11$11", "10#1$01#1", "1$0", "111$1", "0#$#0"}});
  machines.push_back(
      {"theorem8a-batch-fingerprint", paper::Theorem8aBatchFingerprint(),
       Options(core::StClass("ST(2, 0, 1)", ConstScans(2), ConstSpace(0), 1),
               "01#$AZD"),
       {"", "$", "0$0", "11$11", "10#1$01#1", "1$0", "111$1", "0#$#0",
        "11111$", "111$11"}});
  machines.push_back(
      {"theorem8b-guess-verify", paper::Theorem8bGuessVerify(),
       Options(
           core::NstClass("NST(1, 0, 1)", ConstScans(1), ConstSpace(0), 1),
           "01#"),
       {"", "11", "01#11", "00", "0#0", "1", "#11#0"}});
  return machines;
}

std::vector<CheckedListMachine> AllCheckedListMachines() {
  using core::ConstScans;
  using core::ConstSpace;

  std::vector<CheckedListMachine> machines;
  {
    CheckedListMachine m;
    m.name = "nlm-zigzag";
    m.program = std::make_shared<listmachine::ZigZagMachine>(
        /*t=*/2, /*num_sweeps=*/2, /*m=*/4);
    m.options.declared =
        core::StClass("ST(8, 0, 2)", ConstScans(8), ConstSpace(0), 2);
    m.options.sample_inputs = {{1, 2, 3, 4}};
    machines.push_back(std::move(m));
  }
  {
    CheckedListMachine m;
    m.name = "nlm-reverse-compare";
    m.program =
        std::make_shared<listmachine::ReverseCompareMachine>(/*m=*/3,
                                                             /*budget=*/3);
    m.options.declared =
        core::StClass("ST(2, 0, 2)", ConstScans(2), ConstSpace(0), 2);
    m.options.sample_inputs = {{1, 2, 3, 9, 3, 2}, {1, 2, 3, 1, 3, 2}};
    machines.push_back(std::move(m));
  }
  {
    CheckedListMachine m;
    m.name = "nlm-identity-compare";
    m.program =
        std::make_shared<listmachine::IdentityCompareMachine>(/*m=*/3);
    m.options.declared =
        core::StClass("ST(3, 0, 2)", ConstScans(3), ConstSpace(0), 2);
    m.options.sample_inputs = {{1, 2, 3, 1, 2, 3}, {1, 2, 3, 1, 9, 3}};
    machines.push_back(std::move(m));
  }
  {
    CheckedListMachine m;
    m.name = "nlm-coin";
    m.program = std::make_shared<listmachine::CoinListMachine>();
    m.options.declared =
        core::RstClass("RST(1, 0, 1)", ConstScans(1), ConstSpace(0), 1);
    m.options.sample_inputs = {{}, {1, 2}};
    machines.push_back(std::move(m));
  }
  return machines;
}

}  // namespace rstlab::check
