#ifndef RSTLAB_CHECK_SORT_CERTIFICATE_H_
#define RSTLAB_CHECK_SORT_CERTIFICATE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "check/bound_expr.h"
#include "tape/resource_meter.h"
#include "util/status.h"

namespace rstlab::check {

/// Static cost certificate for one parallel k-way external merge sort
/// (`sorting::ParallelSortFieldsOnTape`) — the Corollary 7 upper bound
/// made checkable: admissible scan bound Theta(fanout * log_fanout m)
/// and internal bits independent of N for constant-length fields. The
/// bounds are exact closed forms of the implementation's deterministic
/// bill (source-tape scans plus the canonical 2k-tape scratch formula),
/// so a compliant run passes at every thread count and on every
/// backend, and any drift in the billing is an RST015.
struct SortCertificate {
  /// m, the number of fields certified for.
  std::size_t num_fields = 0;
  /// Merge fanout k and formation run length the bound is computed at.
  std::size_t fanout = 0;
  std::size_t run_length = 0;
  /// Expected merge passes P = ceil(log_fanout(ceil(m / run_length))).
  std::size_t merge_passes = 0;
  /// Admissible scan bound (1 + total reversals) for the sort alone:
  /// 4 * fanout * P + 2 scratch reversals, at most 6 source-tape
  /// reversals, plus the baseline scan.
  std::uint64_t max_scan_bound = 0;
  /// Admissible internal bits: run buffer, fanout record buffers,
  /// loser-tree registers and counters.
  std::size_t max_internal_bits = 0;

  /// Renders e.g. "m=4096 k=16 P=2 r<=139 s<=...".
  std::string ToString() const;
};

/// Computes the certificate for sorting `num_fields` fields of payload
/// length at most `max_field_len` cells, on an input of `input_size`
/// cells, at the given merge geometry.
SortCertificate CertifyKWaySort(std::size_t num_fields,
                                std::size_t max_field_len,
                                std::size_t input_size, std::size_t fanout,
                                std::size_t run_length);

/// RST015 (kCertificateViolated) when `report` — the measured costs of
/// a context that ran exactly one certified sort — exceeds `cert`.
Status CheckSortCostsAgainstCertificate(const tape::ResourceReport& report,
                                        const SortCertificate& cert);

/// The N-parametric form of the k-way sort certificate, valid for
/// *every* input of N cells at the given geometry: on N cells there
/// are m <= N '#'-terminated fields, so runs <= N and merge passes
/// P = ceil(log_fanout(runs)) <= ceil(log2 N). The scratch bill
/// 4*k*P + 2 is therefore O(log N) scans, and the counter block
/// (k + 3 counters of BitsFor(N) bits each, plus two position
/// counters per merge way) is O(log N) bits — a constant number of
/// machine words. This is Corollary 7's ST(O(log N), O(1), 2)
/// membership made checkable at any concrete N.
struct SymbolicSortCertificate {
  std::size_t fanout = 0;
  std::size_t run_length = 0;
  std::size_t max_field_len = 0;
  /// Admissible scan bound r(N) and internal bits s(N).
  BoundExpr scan_bound;
  BoundExpr internal_bits;

  /// Renders e.g. "k=16 L=1024 r<=9 + 64*logN s<=...".
  std::string ToString() const;
};

/// Computes the symbolic certificate for sorting fields of payload
/// length at most `max_field_len` cells at the given merge geometry.
/// Dominates `CertifyKWaySort(m, max_field_len, n, fanout,
/// run_length)` for every m <= n.
SymbolicSortCertificate CertifyKWaySortSymbolic(std::size_t max_field_len,
                                                std::size_t fanout,
                                                std::size_t run_length);

/// RST015 when `report` exceeds the symbolic certificate evaluated at
/// the run's actual input size `n`.
Status CheckSortCostsAgainstSymbolicCertificate(
    const tape::ResourceReport& report, const SymbolicSortCertificate& cert,
    std::size_t n);

}  // namespace rstlab::check

#endif  // RSTLAB_CHECK_SORT_CERTIFICATE_H_
