#ifndef RSTLAB_CHECK_BOUND_EXPR_H_
#define RSTLAB_CHECK_BOUND_EXPR_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <utility>

namespace rstlab::check {

/// Saturating uint64 arithmetic for resource-bound accumulation: a
/// wrapped sum would silently *under*-report a bound, so every
/// accumulation in the check layer clamps at UINT64_MAX instead.
std::uint64_t SatAdd(std::uint64_t a, std::uint64_t b);
std::uint64_t SatMul(std::uint64_t a, std::uint64_t b);

/// ceil(log2(max(2, n))) — the log term of a BoundExpr evaluated at a
/// concrete input size. Matches core::LogScans / core::LogSpace, is
/// >= 1 everywhere and monotone non-decreasing in n.
std::uint64_t CeilLog2(std::size_t n);

/// A symbolic upper bound as a function of the input size N: a sum of
/// monomials `coeff * N^a * ceil(log2 N)^b` with non-negative integer
/// coefficients, or the top element "unbounded". This is the bound
/// algebra the analyzer computes in — it replaces the old
/// finite-or-unbounded StaticBound so quantities that legitimately
/// grow with N (a scan-gated loop, a doubling counter) keep an exact
/// evaluable envelope instead of collapsing to "unbounded".
///
/// The algebra is closed under +, * and max:
///   - addition merges coefficients termwise;
///   - multiplication convolves exponents;
///   - Max takes termwise coefficient maxima, which over-approximates
///     the pointwise maximum (sound for upper bounds, since every term
///     is non-negative and monotone in N).
/// All coefficient arithmetic saturates at UINT64_MAX, and Eval(n)
/// saturates too, so no bound ever wraps to a small value.
///
/// Eval is monotone in N: every monomial is a product of the monotone
/// factors N and ceil(log2 max(2, N)).
class BoundExpr {
 public:
  /// The zero bound.
  BoundExpr() = default;

  static BoundExpr Constant(std::uint64_t c);
  /// coeff * ceil(log2 N).
  static BoundExpr LogN(std::uint64_t coeff);
  /// coeff * N.
  static BoundExpr Linear(std::uint64_t coeff);
  /// coeff * N^n_pow * ceil(log2 N)^log_pow.
  static BoundExpr Monomial(std::uint64_t coeff, unsigned n_pow,
                            unsigned log_pow);
  static BoundExpr Unbounded();

  bool unbounded() const { return unbounded_; }
  /// True iff the bound does not depend on N (and is not unbounded).
  bool IsConstant() const;
  /// The value of a constant bound (0 for the zero bound). Only
  /// meaningful when IsConstant().
  std::uint64_t ConstantValue() const;

  BoundExpr& operator+=(const BoundExpr& other);
  friend BoundExpr operator+(BoundExpr lhs, const BoundExpr& rhs) {
    lhs += rhs;
    return lhs;
  }
  BoundExpr& operator*=(const BoundExpr& other);
  friend BoundExpr operator*(BoundExpr lhs, const BoundExpr& rhs) {
    lhs *= rhs;
    return lhs;
  }
  /// Termwise coefficient maximum: dominates both arguments pointwise.
  static BoundExpr Max(const BoundExpr& a, const BoundExpr& b);

  /// The bound evaluated at input size n, saturating at UINT64_MAX;
  /// an unbounded expression evaluates to UINT64_MAX everywhere.
  std::uint64_t Eval(std::size_t n) const;

  /// The dominant (n_pow, log_pow) pair, lexicographically — the
  /// expression's position in the growth lattice
  /// constant < log N < N < N log N < N^2 < ... . The zero/constant
  /// bound has order (0, 0); Unbounded() reports the maximal pair.
  std::pair<unsigned, unsigned> Order() const;

  /// Renders e.g. "3 + 2*logN + N*logN^2", or "unbounded", or "0".
  std::string ToString() const;

  bool operator==(const BoundExpr&) const = default;

 private:
  // Sorted by (n_pow, log_pow); zero coefficients are never stored.
  std::map<std::pair<unsigned, unsigned>, std::uint64_t> terms_;
  bool unbounded_ = false;
};

/// The smallest power-of-two N in [n_lo, n_hi] at which `bound.Eval(N)`
/// strictly exceeds `envelope(N)`, or nullopt when the envelope
/// dominates at every probed size. The sweep doubles N, so an
/// eventually-monotone envelope (every core:: budget factory) is
/// decided by at most ~60 evaluations. An unbounded `bound` witnesses
/// at n_lo unless the envelope is saturated there too.
std::optional<std::size_t> FindWitnessN(
    const BoundExpr& bound,
    const std::function<std::uint64_t(std::size_t)>& envelope,
    std::size_t n_lo, std::size_t n_hi);

}  // namespace rstlab::check

#endif  // RSTLAB_CHECK_BOUND_EXPR_H_
