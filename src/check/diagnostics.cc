#include "check/diagnostics.h"

#include <algorithm>
#include <sstream>

namespace rstlab::check {

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kError:
      return "error";
    case Severity::kWarning:
      return "warning";
    case Severity::kNote:
      return "note";
  }
  return "unknown";
}

const char* CodeName(Code code) {
  switch (code) {
    case Code::kActionArity:
      return "RST001";
    case Code::kKeyArity:
      return "RST002";
    case Code::kAlphabet:
      return "RST003";
    case Code::kFinalHasRules:
      return "RST004";
    case Code::kAcceptingNotFinal:
      return "RST005";
    case Code::kNondeterministicKey:
      return "RST006";
    case Code::kNeverBranches:
      return "RST007";
    case Code::kUnreachableState:
      return "RST008";
    case Code::kStuckSuccessor:
      return "RST009";
    case Code::kReversalBound:
      return "RST010";
    case Code::kSpaceBound:
      return "RST011";
    case Code::kTrivialStart:
      return "RST012";
    case Code::kNoChoices:
      return "RST013";
    case Code::kBadMovement:
      return "RST014";
    case Code::kCertificateViolated:
      return "RST015";
    case Code::kTapeCount:
      return "RST016";
    case Code::kShadowedRule:
      return "RST017";
    case Code::kClassNotDominated:
      return "RST018";
  }
  return "RST???";
}

std::string Diagnostic::ToString() const {
  std::ostringstream os;
  os << SeverityName(severity) << " " << CodeName(code);
  if (state.has_value() || key.has_value() || tape.has_value()) {
    os << " [";
    bool first = true;
    if (state.has_value()) {
      os << "state " << *state;
      first = false;
    }
    if (key.has_value()) {
      if (!first) os << ", ";
      os << "key \"" << *key << "\"";
      first = false;
    }
    if (tape.has_value()) {
      if (!first) os << ", ";
      os << "tape " << *tape;
    }
    os << "]";
  }
  os << ": " << message;
  return os.str();
}

void Diagnostics::Add(Diagnostic diagnostic) {
  findings_.push_back(std::move(diagnostic));
}

void Diagnostics::Add(Code code, Severity severity, std::string message,
                      std::optional<int> state,
                      std::optional<std::string> key,
                      std::optional<std::size_t> tape) {
  Diagnostic d;
  d.code = code;
  d.severity = severity;
  d.message = std::move(message);
  d.state = state;
  d.key = std::move(key);
  d.tape = tape;
  findings_.push_back(std::move(d));
}

std::size_t Diagnostics::CountSeverity(Severity severity) const {
  return static_cast<std::size_t>(
      std::count_if(findings_.begin(), findings_.end(),
                    [severity](const Diagnostic& d) {
                      return d.severity == severity;
                    }));
}

bool Diagnostics::HasCode(Code code) const {
  return FindCode(code) != nullptr;
}

const Diagnostic* Diagnostics::FindCode(Code code) const {
  for (const Diagnostic& d : findings_) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

std::string Diagnostics::ToString() const {
  std::ostringstream os;
  for (const Diagnostic& d : findings_) {
    os << d.ToString() << "\n";
  }
  return os.str();
}

}  // namespace rstlab::check
