#ifndef RSTLAB_CHECK_NLM_ADAPTER_H_
#define RSTLAB_CHECK_NLM_ADAPTER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "check/analyzer.h"
#include "check/diagnostics.h"
#include "core/complexity.h"
#include "listmachine/list_machine.h"

namespace rstlab::check {

/// How an NLM (nondeterministic list machine, Definition 14) program is
/// probed. A list machine's transition function alpha is an opaque
/// virtual function, so unlike MachineSpec it cannot be inspected as a
/// table; the adapter combines interface checks (static declarations)
/// with a bounded dynamic probe of alpha over sample inputs.
struct NlmCheckOptions {
  /// State range [-probe_states, probe_states] over which the
  /// accepting-implies-final discipline is probed.
  int probe_states = 256;
  /// Inputs the dynamic probe runs the machine on (with every choice
  /// fixed per run, cycling through |C|).
  std::vector<std::vector<std::uint64_t>> sample_inputs;
  /// Step budget per probed run.
  std::size_t max_steps = 4096;
  /// Declared class; enables the determinism and observed-reversal
  /// cross-checks.
  std::optional<core::ResourceClass> declared;
};

/// Checks a list machine program before trusting its runs: declaration
/// sanity (RST013, RST016, RST005, RST012), determinism vs the declared
/// mode (RST006, RST007) and — via a validating proxy program that
/// intercepts every alpha result — movement-vector well-formedness
/// (RST014: wrong arity or a head_direction outside {-1, +1}) and
/// observed scan bounds vs the declared r(N) (RST010) on the sample
/// inputs. The probe is sound but not complete: it certifies only the
/// explored runs, which DESIGN.md documents as the NLM caveat.
Diagnostics CheckListMachine(const listmachine::ListMachineProgram& program,
                             const NlmCheckOptions& options);

}  // namespace rstlab::check

#endif  // RSTLAB_CHECK_NLM_ADAPTER_H_
