#include "check/nlm_adapter.h"

#include <algorithm>
#include <sstream>
#include <string>

namespace rstlab::check {

namespace {

using listmachine::CellContent;
using listmachine::ChoiceId;
using listmachine::ListMachineExecutor;
using listmachine::ListMachineProgram;
using listmachine::ListMachineRun;
using listmachine::Movement;
using listmachine::StateId;
using listmachine::TransitionResult;

/// Forwards to an inner program, validating every TransitionResult
/// before the executor consumes it. Malformed movement vectors are
/// repaired (padded/truncated to arity, directions clamped to {-1,+1})
/// so the probe can continue past the first finding.
class ValidatingProgram : public ListMachineProgram {
 public:
  ValidatingProgram(const ListMachineProgram* inner, Diagnostics* diag)
      : inner_(inner), diag_(diag) {}

  std::size_t num_lists() const override { return inner_->num_lists(); }
  std::size_t num_choices() const override { return inner_->num_choices(); }
  StateId initial_state() const override { return inner_->initial_state(); }
  bool IsFinal(StateId state) const override {
    return inner_->IsFinal(state);
  }
  bool IsAccepting(StateId state) const override {
    return inner_->IsAccepting(state);
  }

  TransitionResult Step(StateId state,
                        const std::vector<const CellContent*>& reads,
                        ChoiceId choice) const override {
    TransitionResult tr = inner_->Step(state, reads, choice);
    const std::size_t t = inner_->num_lists();
    if (tr.movements.size() != t && !reported_arity_) {
      reported_arity_ = true;
      std::ostringstream os;
      os << "alpha returned " << tr.movements.size()
         << " movement(s) for a machine with " << t << " list(s)";
      diag_->Add(Code::kBadMovement, Severity::kError, os.str(), state);
    }
    tr.movements.resize(t, Movement{+1, false});
    for (Movement& m : tr.movements) {
      if (m.head_direction != +1 && m.head_direction != -1) {
        if (!reported_direction_) {
          reported_direction_ = true;
          diag_->Add(Code::kBadMovement, Severity::kError,
                     "alpha returned head_direction " +
                         std::to_string(m.head_direction) +
                         ", which is outside {-1, +1}",
                     state);
        }
        m.head_direction = m.head_direction < 0 ? -1 : +1;
      }
    }
    return tr;
  }

 private:
  const ListMachineProgram* inner_;
  Diagnostics* diag_;
  // The probe visits many steps; one finding per defect kind is enough.
  mutable bool reported_arity_ = false;
  mutable bool reported_direction_ = false;
};

}  // namespace

Diagnostics CheckListMachine(const ListMachineProgram& program,
                             const NlmCheckOptions& options) {
  Diagnostics diag;

  if (program.num_choices() == 0) {
    diag.Add(Code::kNoChoices, Severity::kError,
             "list machine declares |C| = 0; Definition 14 requires at "
             "least one choice");
  }
  if (program.num_lists() == 0) {
    diag.Add(Code::kTapeCount, Severity::kError,
             "list machine declares t = 0 lists");
  }
  for (int s = -options.probe_states; s <= options.probe_states; ++s) {
    if (program.IsAccepting(s) && !program.IsFinal(s)) {
      diag.Add(Code::kAcceptingNotFinal, Severity::kError,
               "state " + std::to_string(s) +
                   " is accepting but not final",
               s);
      break;  // one witness is enough
    }
  }
  if (program.IsFinal(program.initial_state())) {
    diag.Add(Code::kTrivialStart, Severity::kWarning,
             "initial state is final: the machine halts immediately",
             program.initial_state());
  }

  if (options.declared.has_value()) {
    const bool declared_deterministic =
        options.declared->mode == core::MachineMode::kDeterministic;
    if (declared_deterministic && program.num_choices() > 1) {
      diag.Add(Code::kNondeterministicKey, Severity::kError,
               "machine is declared deterministic but |C| = " +
                   std::to_string(program.num_choices()));
    }
    if (!declared_deterministic && program.num_choices() == 1) {
      diag.Add(Code::kNeverBranches, Severity::kWarning,
               "machine is declared randomized/nondeterministic but "
               "|C| = 1; choice sequences are vacuous");
    }
    if (program.num_lists() > options.declared->t) {
      diag.Add(Code::kTapeCount, Severity::kError,
               "machine has " + std::to_string(program.num_lists()) +
                   " lists but class " + options.declared->name +
                   " allows " + std::to_string(options.declared->t));
    }
  }
  if (program.num_choices() == 0 || program.num_lists() == 0) {
    return diag;  // the dynamic probe needs a runnable machine
  }

  // Dynamic probe through the validating proxy: every constant choice
  // sequence on every sample input.
  ValidatingProgram proxy(&program, &diag);
  ListMachineExecutor executor(&proxy);
  bool reported_scan = false;
  for (const std::vector<std::uint64_t>& input : options.sample_inputs) {
    for (std::size_t c = 0; c < program.num_choices(); ++c) {
      const std::vector<ChoiceId> choices(options.max_steps,
                                          static_cast<ChoiceId>(c));
      const ListMachineRun run =
          executor.RunWithChoices(input, choices, options.max_steps);
      if (!options.declared.has_value() || reported_scan || !run.halted) {
        continue;
      }
      const std::uint64_t r_n =
          options.declared->r_of_n(std::max<std::size_t>(1, input.size()));
      if (run.ScanBound() > r_n) {
        reported_scan = true;
        std::ostringstream os;
        os << "observed scan bound " << run.ScanBound() << " on a probe "
           << "input of size " << input.size() << " exceeds declared "
           << "r(N) = " << r_n << " of class " << options.declared->name;
        diag.Add(Code::kReversalBound, Severity::kError, os.str());
      }
    }
  }
  return diag;
}

}  // namespace rstlab::check
