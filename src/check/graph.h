#ifndef RSTLAB_CHECK_GRAPH_H_
#define RSTLAB_CHECK_GRAPH_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "machine/turing_machine.h"

// Shared CFG machinery of the check passes (analyzer.cc and
// growth.cc): a small weighted digraph, Kosaraju condensation with
// topologically ordered component ids, reachability, and the numeric
// longest-path bound. Internal to src/check/.

namespace rstlab::check {

/// A small weighted digraph for the resource passes.
struct Graph {
  struct Edge {
    std::size_t to = 0;
    std::uint32_t weight = 0;
  };
  std::vector<std::vector<Edge>> adj;

  explicit Graph(std::size_t n) : adj(n) {}
  std::size_t size() const { return adj.size(); }
  void AddEdge(std::size_t from, std::size_t to, std::uint32_t weight) {
    adj[from].push_back({to, weight});
  }
};

/// Kosaraju strongly-connected components. `comp_of[v]` is the
/// component id of node v. Ids are assigned in topological order of the
/// condensation: every edge u -> v of the original graph satisfies
/// comp_of[u] <= comp_of[v], so a sweep by increasing id is a valid
/// topological traversal.
class Condensation {
 public:
  explicit Condensation(const Graph& g) : comp_of(g.size(), kNone) {
    const std::size_t n = g.size();
    // Pass 1: finishing order by iterative DFS.
    std::vector<std::size_t> order;
    order.reserve(n);
    std::vector<bool> seen(n, false);
    std::vector<std::pair<std::size_t, std::size_t>> stack;
    for (std::size_t root = 0; root < n; ++root) {
      if (seen[root]) continue;
      seen[root] = true;
      stack.emplace_back(root, 0);
      while (!stack.empty()) {
        auto& [v, next] = stack.back();
        if (next < g.adj[v].size()) {
          const std::size_t to = g.adj[v][next].to;
          ++next;
          if (!seen[to]) {
            seen[to] = true;
            stack.emplace_back(to, 0);
          }
        } else {
          order.push_back(v);
          stack.pop_back();
        }
      }
    }
    // Pass 2: sweep the reverse graph in reverse finishing order; each
    // sweep discovers one component, and discovery order is a
    // topological order of the condensation.
    std::vector<std::vector<std::size_t>> reverse_adj(n);
    for (std::size_t v = 0; v < n; ++v) {
      for (const Graph::Edge& e : g.adj[v]) {
        reverse_adj[e.to].push_back(v);
      }
    }
    std::vector<std::size_t> worklist;
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      if (comp_of[*it] != kNone) continue;
      comp_of[*it] = num_components;
      worklist.push_back(*it);
      while (!worklist.empty()) {
        const std::size_t v = worklist.back();
        worklist.pop_back();
        for (std::size_t from : reverse_adj[v]) {
          if (comp_of[from] == kNone) {
            comp_of[from] = num_components;
            worklist.push_back(from);
          }
        }
      }
      ++num_components;
    }
  }

  static constexpr std::size_t kNone =
      std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> comp_of;
  std::size_t num_components = 0;
};

/// Nodes of `g` reachable from `start`.
inline std::vector<bool> ReachableFrom(const Graph& g, std::size_t start) {
  std::vector<bool> reach(g.size(), false);
  std::vector<std::size_t> worklist{start};
  reach[start] = true;
  while (!worklist.empty()) {
    const std::size_t v = worklist.back();
    worklist.pop_back();
    for (const Graph::Edge& e : g.adj[v]) {
      if (!reach[e.to]) {
        reach[e.to] = true;
        worklist.push_back(e.to);
      }
    }
  }
  return reach;
}

/// The maximum total edge weight over any walk starting at `start`, or
/// nullopt when a positive-weight edge lies on a reachable cycle.
/// Zero-weight cycles are fine: weight accumulates only across
/// components of the condensation.
inline std::optional<std::uint64_t> NumericLongestPath(const Graph& g,
                                                       std::size_t start) {
  const std::vector<bool> reach = ReachableFrom(g, start);
  const Condensation scc(g);
  for (std::size_t v = 0; v < g.size(); ++v) {
    if (!reach[v]) continue;
    for (const Graph::Edge& e : g.adj[v]) {
      if (e.weight > 0 && scc.comp_of[v] == scc.comp_of[e.to]) {
        return std::nullopt;
      }
    }
  }
  // DP over components in topological order. comp ids already are a
  // topological order (see Condensation).
  constexpr std::int64_t kMinusInf = std::numeric_limits<std::int64_t>::min();
  std::vector<std::int64_t> dist(scc.num_components, kMinusInf);
  dist[scc.comp_of[start]] = 0;
  // Bucket nodes by component so we can sweep components in order.
  std::vector<std::vector<std::size_t>> members(scc.num_components);
  for (std::size_t v = 0; v < g.size(); ++v) {
    if (reach[v]) members[scc.comp_of[v]].push_back(v);
  }
  std::int64_t best = 0;
  for (std::size_t c = 0; c < scc.num_components; ++c) {
    if (dist[c] == kMinusInf) continue;
    best = std::max(best, dist[c]);
    for (std::size_t v : members[c]) {
      for (const Graph::Edge& e : g.adj[v]) {
        const std::size_t to_comp = scc.comp_of[e.to];
        if (to_comp == c) continue;
        dist[to_comp] = std::max(
            dist[to_comp], dist[c] + static_cast<std::int64_t>(e.weight));
      }
    }
  }
  return static_cast<std::uint64_t>(best);
}

/// Dense numbering of every state mentioned anywhere in the spec.
struct StateIndex {
  std::vector<int> states;
  std::map<int, std::size_t> index;

  explicit StateIndex(const machine::MachineSpec& spec) {
    auto add = [this](int q) {
      if (index.emplace(q, states.size()).second) states.push_back(q);
    };
    add(spec.start_state);
    for (int q : spec.final_states) add(q);
    for (int q : spec.accepting_states) add(q);
    for (const auto& [key, actions] : spec.transitions) {
      add(key.first);
      for (const machine::Action& a : actions) add(a.next_state);
    }
  }
};

/// True iff the key and all of its actions have the arities of `spec` —
/// the precondition for the CFG and resource passes to index into them.
inline bool KeyWellFormed(const machine::MachineSpec& spec,
                          const std::string& symbols,
                          const std::vector<machine::Action>& actions) {
  if (symbols.size() != spec.num_tapes()) return false;
  return std::all_of(actions.begin(), actions.end(),
                     [&spec](const machine::Action& a) {
                       return a.write.size() == spec.num_tapes() &&
                              a.moves.size() == spec.num_tapes();
                     });
}

}  // namespace rstlab::check

#endif  // RSTLAB_CHECK_GRAPH_H_
