#ifndef RSTLAB_CHECK_QUERY_CERTIFICATE_H_
#define RSTLAB_CHECK_QUERY_CERTIFICATE_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "check/bound_expr.h"
#include "util/status.h"

namespace rstlab::check {

/// The certificate-relevant shape of one streaming query plan, as the
/// query engine's plan compiler reports it (see
/// query/engine/plan.h::AnalyzePlan). Plain data — the check layer
/// stays independent of the query AST. The key quantity is the
/// *degree* d of a stream: a leaf stream of an N-cell input has at
/// most N fields (degree 1), and a product/join output's field count
/// is the product of its operands', so its degree is the sum. A sort
/// over a degree-d stream therefore runs at most
/// ceil(log2(N^d)) <= d * ceil(log2 N) cascade levels — which is how
/// plans built from sorts and constant-fold merges stay inside the
/// Theorem 11 envelope r(N) = O(log N).
struct QueryPlanShape {
  /// Spool-lane leaf scans (2 reversals each).
  std::size_t leaf_scans = 0;
  /// Sorted-merge set operators (difference/intersection passes).
  std::size_t merge_ops = 0;
  /// Sort-based merge joins.
  std::size_t joins = 0;
  /// Caller's promise that every join key is unique on the build (B)
  /// side; the equal-key group buffer is then O(1) tuples and the
  /// certificate keeps a constant internal term. Without the promise
  /// the group can hold a whole degree-d stream and the internal bound
  /// gains an N^d term — truthfully pricing the worst case.
  bool joins_unique_keys = true;
  /// Largest stream degree feeding any join's buffered side (0 when
  /// the plan has no joins).
  unsigned join_group_degree = 0;
  /// One entry per spill-lane sort: the degree of its input stream.
  std::vector<unsigned> sort_degrees;
  /// One entry per doubling product: the degree of its output stream.
  std::vector<unsigned> product_degrees;
  /// Total operator count (each buffers at most one batch).
  std::size_t operators = 0;
  /// Longest encoded tuple (cells) any stream of the plan can carry.
  std::size_t max_field_len = 1;
  /// Engine batch size (tuples per Next()).
  std::size_t batch_size = 64;
  /// Sort geometry: fanout 0 = serial binary cascade, >= 2 = parallel
  /// k-way with the given formation run length.
  std::size_t fanout = 0;
  std::size_t run_length = 1024;

  /// Renders e.g. "leaves=2 sorts=[1,1] merges=1 joins=0".
  std::string ToString() const;
};

/// The N-parametric admission certificate of one plan shape: symbolic
/// upper bounds on the per-query (r, s) bill the engine may charge on
/// ANY input of N cells. Computed before execution; a measured bill
/// exceeding it is an RST015, and a shape whose bound leaves the
/// Theorem 11/12 class O(log N) is rejected up front with an RST018
/// witness.
struct QueryCertificate {
  QueryPlanShape shape;
  /// Admissible QueryCost::scan_bound (1 + reversals the query charges
  /// beyond the shared input pass).
  BoundExpr scan_bound;
  /// Admissible QueryCost::internal_bits.
  BoundExpr internal_bits;

  std::string ToString() const;
};

/// Computes the certificate for `shape`. Dominance over the engine's
/// deterministic bill is pinned empirically by the query-engine conform
/// suite and the N-sweep property tests.
QueryCertificate CertifyQueryPlan(const QueryPlanShape& shape);

/// RST015 (kCertificateViolated) when a measured per-query bill exceeds
/// `cert` evaluated at input size `n`.
Status CheckQueryCostsAgainstCertificate(std::uint64_t scan_bound,
                                         std::size_t internal_bits,
                                         const QueryCertificate& cert,
                                         std::size_t n);

/// True iff the certified scan bound grows no faster than
/// c * ceil(log2 N) — membership of the plan in the Theorem 11/12 scan
/// class ST(O(log N), ., O(1)).
bool WithinLogScanClass(const QueryCertificate& cert);

/// The admission gate run before executing a plan: RST018
/// (kClassNotDominated) with the smallest power-of-two witness
/// N in [n_lo, n_hi] at which the certified scan bound escapes the
/// envelope scan_coeff * ceil(log2 N), or the certified internal bits
/// escape bits_coeff * ceil(log2 N). Plans that pass are certified to
/// run inside the Theorem 11 envelope over the whole window.
Status CheckTheorem11Envelope(const QueryCertificate& cert,
                              std::uint64_t scan_coeff,
                              std::uint64_t bits_coeff, std::size_t n_lo,
                              std::size_t n_hi);

}  // namespace rstlab::check

#endif  // RSTLAB_CHECK_QUERY_CERTIFICATE_H_
