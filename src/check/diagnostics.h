#ifndef RSTLAB_CHECK_DIAGNOSTICS_H_
#define RSTLAB_CHECK_DIAGNOSTICS_H_

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace rstlab::check {

/// How bad a finding is. Errors make a machine unfit to run; warnings
/// flag likely mistakes; notes are informational.
enum class Severity {
  kError,
  kWarning,
  kNote,
};

/// Short name for `severity` ("error", "warning", "note").
const char* SeverityName(Severity severity);

/// Stable diagnostic codes of the machine-program analyzer. Codes are
/// append-only: a released code never changes meaning, so tests, CI
/// filters and suppression lists can key on them.
enum class Code {
  /// Action write/moves arity differs from the machine's tape count.
  kActionArity,          // RST001
  /// Transition key has the wrong number of symbols.
  kKeyArity,             // RST002
  /// A key or write symbol is outside the declared alphabet.
  kAlphabet,             // RST003
  /// A final state has outgoing transition rules.
  kFinalHasRules,        // RST004
  /// An accepting state is not final.
  kAcceptingNotFinal,    // RST005
  /// A machine declared deterministic has a multi-action key.
  kNondeterministicKey,  // RST006
  /// A machine declared randomized/nondeterministic never branches.
  kNeverBranches,        // RST007
  /// A state is unreachable from the start state.
  kUnreachableState,     // RST008
  /// An action's successor is a non-final state with no rules (the run
  /// would halt stuck there, rejecting implicitly).
  kStuckSuccessor,       // RST009
  /// The static reversal bound exceeds the declared r(N).
  kReversalBound,        // RST010
  /// The static internal-space bound exceeds the declared s(N).
  kSpaceBound,           // RST011
  /// The start state is final or has no applicable rules.
  kTrivialStart,         // RST012
  /// A list machine reports zero choices (|C| must be >= 1).
  kNoChoices,            // RST013
  /// A list-machine transition returned a malformed movement vector.
  kBadMovement,          // RST014
  /// A run exceeded a statically certified bound (runtime hook).
  kCertificateViolated,  // RST015
  /// The machine's tape count differs from the declared class's t.
  kTapeCount,            // RST016
  /// A later rule on the same (state, key) duplicates an earlier one
  /// and can never produce a distinct run (dead rule).
  kShadowedRule,         // RST017
  /// The declared class is not dominated by the inferred symbolic
  /// bound; the message carries a concrete witness N.
  kClassNotDominated,    // RST018
};

/// The stable "RSTnnn" spelling of `code`.
const char* CodeName(Code code);

/// One finding: code, severity, message and an optional location inside
/// the transition table (state and/or key symbols, and/or a tape index).
struct Diagnostic {
  Code code = Code::kActionArity;
  Severity severity = Severity::kError;
  std::string message;
  /// State the finding is anchored at, if any.
  std::optional<int> state;
  /// Key symbols (one char per tape) the finding is anchored at, if any.
  std::optional<std::string> key;
  /// Tape index the finding concerns, if any.
  std::optional<std::size_t> tape;

  /// Renders e.g. `error RST001 [state 3, key "0_"]: write arity 1 != 2`.
  std::string ToString() const;
};

/// A structured analyzer report: an ordered list of findings plus
/// convenience queries. Produced before any run of the machine.
class Diagnostics {
 public:
  /// Appends a finding.
  void Add(Diagnostic diagnostic);
  /// Convenience: appends a finding built from the pieces.
  void Add(Code code, Severity severity, std::string message,
           std::optional<int> state = std::nullopt,
           std::optional<std::string> key = std::nullopt,
           std::optional<std::size_t> tape = std::nullopt);

  const std::vector<Diagnostic>& findings() const { return findings_; }
  /// Number of findings with the given severity.
  std::size_t CountSeverity(Severity severity) const;
  std::size_t num_errors() const { return CountSeverity(Severity::kError); }
  std::size_t num_warnings() const {
    return CountSeverity(Severity::kWarning);
  }
  /// True iff no error-severity finding is present.
  bool clean() const { return num_errors() == 0; }
  /// True iff some finding carries `code`.
  bool HasCode(Code code) const;
  /// The first finding carrying `code`, or nullptr.
  const Diagnostic* FindCode(Code code) const;

  /// Renders all findings, one per line (empty string when clean and
  /// warning-free).
  std::string ToString() const;

 private:
  std::vector<Diagnostic> findings_;
};

}  // namespace rstlab::check

#endif  // RSTLAB_CHECK_DIAGNOSTICS_H_
