#ifndef RSTLAB_CHECK_GROWTH_H_
#define RSTLAB_CHECK_GROWTH_H_

#include <cstddef>

#include "check/bound_expr.h"
#include "check/graph.h"
#include "machine/turing_machine.h"

namespace rstlab::check {

/// The growth-rate inference lattice. Every strongly-connected
/// component of a resource graph is classified into exactly one rung;
/// the machine's bound is the path-sum of per-component contributions,
/// so its overall class is the maximum rung along any path.
///
///   kConstant     < kLogarithmic   < kLinear        < kUnbounded
///   input-indep.    doubling /       input-consuming  no sound rule
///   cycles          halving          scan loops       applies
///                   counters
enum class GrowthClass {
  kConstant,
  kLogarithmic,
  kLinear,
  kUnbounded,
};

/// "constant", "logarithmic", "linear" or "unbounded".
const char* GrowthClassName(GrowthClass cls);

/// The lattice rung of a bound expression, from its dominant monomial.
GrowthClass GrowthOf(const BoundExpr& bound);

/// Symbolic upper bound on Definition 1's rev(rho, `tape`) over every
/// run on an input of size N. Components of the head-direction phase
/// graph that contain a reversal edge are classified:
///   - scan-gated: the component is one-directional ({Right, Stay}) on
///     some external tape whose non-blank region never grows, every
///     right-move reads non-blank, and the Stay-subgraph carries no
///     reversal cycle. The head can then advance at most N+1 times
///     while the run resides in the component, so its reversals are
///     O(N).
///   - otherwise Unbounded.
/// Acyclic structure contributes its exact longest-path constant, as
/// before.
BoundExpr SymbolicExternalReversalBound(const machine::MachineSpec& spec,
                                        const StateIndex& states,
                                        std::size_t tape);

/// Symbolic upper bound on the cells used by internal tape `tape` (an
/// absolute tape index >= spec.num_external_tapes) over every run on an
/// input of size N. Components of the state graph whose cycles move
/// the tape right are classified, tightest rule first:
///   - non-growing scan (constant): every right-move inside the
///     component reads non-blank on the tape and the component never
///     writes non-blank over blank on it — the head can never pass the
///     frontier established before entry.
///   - binary counter (logarithmic): right-moves are LSB-anchored
///     consume steps (hi -> lo) or marker steps, increments are
///     LSB-disciplined hi-writes whose trips are gated by an
///     input-consuming scan, so the stored value is O(N * P) and the
///     head excursion O(log N).
///   - scan-gated (linear): as for reversals.
///   - otherwise Unbounded.
BoundExpr SymbolicInternalCellBound(const machine::MachineSpec& spec,
                                    const StateIndex& states,
                                    std::size_t tape);

}  // namespace rstlab::check

#endif  // RSTLAB_CHECK_GROWTH_H_
