#include "check/query_certificate.h"

#include <algorithm>
#include <sstream>

#include "check/diagnostics.h"

namespace rstlab::check {

std::string QueryPlanShape::ToString() const {
  std::ostringstream os;
  os << "leaves=" << leaf_scans << " sorts=[";
  for (std::size_t i = 0; i < sort_degrees.size(); ++i) {
    if (i > 0) os << ',';
    os << sort_degrees[i];
  }
  os << "] merges=" << merge_ops << " joins=" << joins
     << (joins > 0 && !joins_unique_keys ? "(dup-keys)" : "")
     << " products=[";
  for (std::size_t i = 0; i < product_degrees.size(); ++i) {
    if (i > 0) os << ',';
    os << product_degrees[i];
  }
  os << "] L=" << max_field_len;
  return os.str();
}

std::string QueryCertificate::ToString() const {
  return shape.ToString() + " r<=" + scan_bound.ToString() +
         " s<=" + internal_bits.ToString();
}

QueryCertificate CertifyQueryPlan(const QueryPlanShape& shape) {
  QueryCertificate cert;
  cert.shape = shape;
  cert.shape.max_field_len = std::max<std::size_t>(1, shape.max_field_len);
  cert.shape.batch_size = std::max<std::size_t>(1, shape.batch_size);
  const std::uint64_t record = cert.shape.max_field_len;
  const bool parallel = shape.fanout >= 2;
  const std::uint64_t k = parallel ? shape.fanout : 2;
  const std::uint64_t run = std::max<std::size_t>(1, shape.run_length);

  // --- Scans ---------------------------------------------------------
  // Baseline + 2 reversals per lane pass, merge and join streams are
  // pull-through (no reversals of their own, slack 2 each).
  BoundExpr scans = BoundExpr::Constant(
      SatAdd(8, SatAdd(SatMul(2, shape.leaf_scans),
                       SatMul(2, SatAdd(shape.merge_ops, shape.joins)))));
  // Each spill-lane sort over a degree-d stream: at most d*ceil(log2 N)
  // cascade levels (serial, <= 8 reversals per level) or merge passes
  // (parallel, 4k scratch reversals per pass), plus the drain, the
  // read-out scan and per-sort constants.
  for (const unsigned d : shape.sort_degrees) {
    const std::uint64_t per_level = parallel ? SatMul(4, k) : 8;
    scans += BoundExpr::LogN(SatMul(per_level, d)) + BoundExpr::Constant(16);
  }
  // Each doubling product of output degree d: ceil(log2 |A|) <=
  // d*ceil(log2 N) doublings at <= 8 reversals each, plus drains and
  // the pairing pass.
  for (const unsigned d : shape.product_degrees) {
    scans += BoundExpr::LogN(SatMul(8, d)) + BoundExpr::Constant(16);
  }
  cert.scan_bound = scans;

  // --- Internal bits -------------------------------------------------
  // Every operator buffers at most one batch of records (8 bits per
  // cell, '#' and slack included), coexisting across the pipeline.
  const std::uint64_t batch_bits =
      SatMul(SatMul(8, cert.shape.batch_size), SatAdd(record, 2));
  BoundExpr bits = BoundExpr::Constant(
      SatAdd(512, SatMul(std::max<std::size_t>(1, shape.operators),
                         batch_bits)));
  // Per sort: the sorter's own record buffers (formation run / fanout
  // ways, N-independent) plus counter blocks of d*ceil(log2 N) bits.
  for (const unsigned d : shape.sort_degrees) {
    const std::uint64_t buffers =
        SatMul(SatAdd(parallel ? SatAdd(run, k) : 4, 8),
               SatMul(8, SatAdd(record, 2)));
    const std::uint64_t counters = SatAdd(SatMul(3, k), 35);
    bits += BoundExpr::Constant(SatAdd(buffers, counters)) +
            BoundExpr::LogN(SatMul(counters, d));
  }
  // Per product: the two field buffers plus doubling counters.
  for (const unsigned d : shape.product_degrees) {
    bits += BoundExpr::Constant(SatMul(32, SatAdd(record, 2))) +
            BoundExpr::LogN(SatMul(64, d));
  }
  // Join group buffer: one tuple cluster per key. With unique build
  // keys it is O(1) records; with duplicates it can hold the whole
  // degree-d build stream — priced as N^d records, which (correctly)
  // expels such plans from the constant-space class.
  if (shape.joins > 0) {
    const std::uint64_t group_record = SatMul(8, SatAdd(record, 2));
    if (shape.joins_unique_keys) {
      bits += BoundExpr::Constant(SatMul(4, group_record));
    } else {
      const unsigned d = std::max(1u, shape.join_group_degree);
      bits += BoundExpr::Monomial(group_record, d, 0);
    }
  }
  cert.internal_bits = bits;
  return cert;
}

Status CheckQueryCostsAgainstCertificate(std::uint64_t scan_bound,
                                         std::size_t internal_bits,
                                         const QueryCertificate& cert,
                                         std::size_t n) {
  const std::uint64_t scan_cap = cert.scan_bound.Eval(n);
  if (scan_bound > scan_cap) {
    std::ostringstream os;
    os << CodeName(Code::kCertificateViolated) << ": query performed "
       << scan_bound << " scans but the plan certificate ("
       << cert.ToString() << ") allows " << scan_cap << " at N = " << n;
    return Status::ResourceExhausted(os.str());
  }
  const std::uint64_t bits_cap = cert.internal_bits.Eval(n);
  if (internal_bits > bits_cap) {
    std::ostringstream os;
    os << CodeName(Code::kCertificateViolated) << ": query used "
       << internal_bits << " internal bits but the plan certificate ("
       << cert.ToString() << ") allows " << bits_cap << " at N = " << n;
    return Status::ResourceExhausted(os.str());
  }
  return Status::OK();
}

bool WithinLogScanClass(const QueryCertificate& cert) {
  return cert.scan_bound.Order() <= std::make_pair(0u, 1u);
}

Status CheckTheorem11Envelope(const QueryCertificate& cert,
                              std::uint64_t scan_coeff,
                              std::uint64_t bits_coeff, std::size_t n_lo,
                              std::size_t n_hi) {
  const std::optional<std::size_t> scan_witness = FindWitnessN(
      cert.scan_bound,
      [scan_coeff](std::size_t n) { return SatMul(scan_coeff, CeilLog2(n)); },
      n_lo, n_hi);
  if (scan_witness.has_value()) {
    std::ostringstream os;
    os << CodeName(Code::kClassNotDominated) << ": certified scan bound "
       << cert.scan_bound.ToString() << " escapes the Theorem 11 envelope "
       << scan_coeff << "*ceil(log2 N) at witness N = " << *scan_witness;
    return Status::ResourceExhausted(os.str());
  }
  const std::optional<std::size_t> bits_witness = FindWitnessN(
      cert.internal_bits,
      [bits_coeff](std::size_t n) { return SatMul(bits_coeff, CeilLog2(n)); },
      n_lo, n_hi);
  if (bits_witness.has_value()) {
    std::ostringstream os;
    os << CodeName(Code::kClassNotDominated) << ": certified internal bits "
       << cert.internal_bits.ToString()
       << " escape the Theorem 11 envelope " << bits_coeff
       << "*ceil(log2 N) at witness N = " << *bits_witness;
    return Status::ResourceExhausted(os.str());
  }
  return Status::OK();
}

}  // namespace rstlab::check
