#ifndef RSTLAB_CHECK_ANALYZER_H_
#define RSTLAB_CHECK_ANALYZER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "check/diagnostics.h"
#include "core/complexity.h"
#include "machine/turing_machine.h"
#include "util/status.h"

namespace rstlab::check {

/// A statically derived upper bound: a finite value, or "not statically
/// bounded" (the quantity may grow with the input).
struct StaticBound {
  bool bounded = false;
  std::uint64_t value = 0;

  static StaticBound Finite(std::uint64_t v) { return {true, v}; }
  static StaticBound Unbounded() { return {false, 0}; }

  /// Renders "3" or "unbounded".
  std::string ToString() const;
};

/// The static resource certificate of a machine: per-external-tape
/// reversal bounds (upper bounds on Definition 1's rev(rho, i) over
/// every possible run), the derived scan bound 1 + sum rev, and
/// per-internal-tape cell bounds. A bound of Unbounded() means the
/// quantity sits on a control-flow cycle, so no input-independent bound
/// exists — not that the machine is wrong.
struct StaticResources {
  std::vector<StaticBound> external_reversals;
  StaticBound scan_bound = StaticBound::Finite(1);
  std::vector<StaticBound> internal_cells;
  StaticBound total_internal_cells = StaticBound::Finite(0);
};

/// What the analyzer should assume about the machine under test.
struct AnalyzeOptions {
  /// The complexity class the machine claims membership of. When set,
  /// the analyzer cross-checks mode (determinism), tape count and the
  /// static resource bounds against it.
  std::optional<core::ResourceClass> declared;
  /// Explicit determinism claim; overrides `declared`'s mode when set.
  std::optional<bool> declared_deterministic;
  /// The machine's tape alphabet (kBlank is always admitted). When set,
  /// every key and write symbol must come from it.
  std::optional<std::string> alphabet;
  /// Input size at which declared r(N)/s(N) are evaluated for the
  /// static cross-check.
  std::size_t check_n = std::size_t{1} << 20;
};

/// The full analyzer output: the findings plus the static certificate.
struct Analysis {
  Diagnostics diagnostics;
  StaticResources resources;

  bool clean() const { return diagnostics.clean(); }
};

/// Statically analyzes `spec` without running it. Passes:
///   1. well-formedness (RST001-RST005): arities, alphabet, final and
///      accepting state discipline;
///   2. control flow (RST006-RST009, RST012): reachability over the
///      state graph, stuck successors, determinism vs declaration;
///   3. static resource bounding (RST010, RST011, RST016): a
///      per-external-tape head-direction phase analysis over the CFG
///      upper-bounds reversals on every run; internal tapes are bounded
///      by the maximum number of right-moves on any path. Both are
///      cross-checked against the declared class when provided.
Analysis Analyze(const machine::MachineSpec& spec,
                 const AnalyzeOptions& options = {});

/// Runtime hook (the model's sanitizer): verifies that a completed
/// run's measured costs never exceed the statically certified bounds.
/// A violation means the analyzer or the executor is wrong, so the
/// returned status is ResourceExhausted and carries RST015.
Status CheckCostsAgainstCertificate(const machine::RunCosts& costs,
                                    const StaticResources& certified);

}  // namespace rstlab::check

#endif  // RSTLAB_CHECK_ANALYZER_H_
