#ifndef RSTLAB_CHECK_ANALYZER_H_
#define RSTLAB_CHECK_ANALYZER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "check/bound_expr.h"
#include "check/diagnostics.h"
#include "core/complexity.h"
#include "machine/turing_machine.h"
#include "util/status.h"

namespace rstlab::check {

/// The static resource certificate of a machine, symbolic in the input
/// size N: per-external-tape reversal bounds (upper bounds on
/// Definition 1's rev(rho, i) over every possible run on an input of N
/// cells), the derived scan bound 1 + sum rev, and per-internal-tape
/// cell bounds. Quantities the growth pass can tie to the input — a
/// scan-gated loop, a doubling counter — carry O(N) / O(log N)
/// expressions instead of collapsing to "unbounded";
/// BoundExpr::Unbounded() remains the sound top element for structure
/// no inference rule covers (not necessarily a broken machine).
struct StaticResources {
  std::vector<BoundExpr> external_reversals;
  BoundExpr scan_bound = BoundExpr::Constant(1);
  std::vector<BoundExpr> internal_cells;
  BoundExpr total_internal_cells;
};

/// What the analyzer should assume about the machine under test.
struct AnalyzeOptions {
  /// The complexity class the machine claims membership of. When set,
  /// the analyzer cross-checks mode (determinism), tape count and the
  /// static resource bounds against it.
  std::optional<core::ResourceClass> declared;
  /// Explicit determinism claim; overrides `declared`'s mode when set.
  std::optional<bool> declared_deterministic;
  /// The machine's tape alphabet (kBlank is always admitted). When set,
  /// every key and write symbol must come from it.
  std::optional<std::string> alphabet;
  /// Input size at which declared r(N)/s(N) are evaluated for the
  /// single-point static cross-check (RST010/RST011).
  std::size_t check_n = std::size_t{1} << 20;
  /// Dominance sweep window for the symbolic cross-check (RST018): the
  /// inferred bound must stay under the declared envelope at every
  /// power-of-two N in [symbolic_from, symbolic_to]. The lower edge
  /// exists because declared envelopes are asymptotic — additive slack
  /// in the inferred constants may legitimately exceed them at tiny N.
  std::size_t symbolic_from = std::size_t{1} << 8;
  std::size_t symbolic_to = std::size_t{1} << 62;
};

/// The full analyzer output: the findings plus the static certificate.
struct Analysis {
  Diagnostics diagnostics;
  StaticResources resources;

  bool clean() const { return diagnostics.clean(); }
};

/// Statically analyzes `spec` without running it. Passes:
///   1. well-formedness (RST001-RST005, RST017): arities, alphabet,
///      final and accepting state discipline, shadowed duplicate rules;
///   2. control flow (RST006-RST009, RST012): reachability over the
///      state graph, stuck successors, determinism vs declaration;
///   3. static resource bounding (RST010, RST011, RST016, RST018): the
///      growth pass (growth.h) derives symbolic per-tape bounds; the
///      declared class is cross-checked both at check_n (RST010/011)
///      and by a dominance sweep over [symbolic_from, symbolic_to]
///      that reports a concrete witness N on failure (RST018).
Analysis Analyze(const machine::MachineSpec& spec,
                 const AnalyzeOptions& options = {});

/// Runtime hook (the model's sanitizer): verifies that a completed
/// run's measured costs never exceed the statically certified bounds
/// evaluated at the run's actual input size `n`. A violation means the
/// analyzer or the executor is wrong, so the returned status is
/// ResourceExhausted and carries RST015.
Status CheckCostsAgainstCertificate(const machine::RunCosts& costs,
                                    const StaticResources& certified,
                                    std::size_t n);

}  // namespace rstlab::check

#endif  // RSTLAB_CHECK_ANALYZER_H_
