#ifndef RSTLAB_CHECK_REGISTRY_H_
#define RSTLAB_CHECK_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "check/analyzer.h"
#include "check/nlm_adapter.h"
#include "listmachine/list_machine.h"
#include "machine/turing_machine.h"

namespace rstlab::check {

/// One shipped MachineSpec machine plus everything the analyzer needs
/// to certify it: the declared complexity class, the tape alphabet and
/// sample inputs for the run-time certificate hook.
struct CheckedMachine {
  std::string name;
  machine::MachineSpec spec;
  AnalyzeOptions options;
  /// Representative inputs for dynamic certificate verification
  /// (check_test's property runs and `rstlab check --runs`).
  std::vector<std::string> sample_inputs;
};

/// One shipped list machine (NLM) plus its probe configuration.
struct CheckedListMachine {
  std::string name;
  std::shared_ptr<const listmachine::ListMachineProgram> program;
  NlmCheckOptions options;
};

/// Every shipped MachineSpec machine — the zoo of machine_builder.h
/// plus the paper machines of paper_machines.h — with its declared
/// class. `rstlab check` and check_test iterate this list; adding a
/// machine here puts it under the CI gate.
std::vector<CheckedMachine> AllCheckedMachines();

/// Every shipped list machine instance under the NLM adapter.
std::vector<CheckedListMachine> AllCheckedListMachines();

}  // namespace rstlab::check

#endif  // RSTLAB_CHECK_REGISTRY_H_
