#include "check/analyzer.h"

#include <algorithm>
#include <array>
#include <limits>
#include <map>
#include <set>
#include <sstream>

namespace rstlab::check {

std::string StaticBound::ToString() const {
  return bounded ? std::to_string(value) : std::string("unbounded");
}

namespace {

using machine::Action;
using machine::MachineSpec;
using machine::Move;

/// A small weighted digraph for the resource passes.
struct Graph {
  struct Edge {
    std::size_t to = 0;
    std::uint32_t weight = 0;
  };
  std::vector<std::vector<Edge>> adj;

  explicit Graph(std::size_t n) : adj(n) {}
  std::size_t size() const { return adj.size(); }
  void AddEdge(std::size_t from, std::size_t to, std::uint32_t weight) {
    adj[from].push_back({to, weight});
  }
};

/// Kosaraju strongly-connected components. `comp_of[v]` is the
/// component id of node v. Ids are assigned in topological order of the
/// condensation: every edge u -> v of the original graph satisfies
/// comp_of[u] <= comp_of[v], so a sweep by increasing id is a valid
/// topological traversal.
class Condensation {
 public:
  explicit Condensation(const Graph& g) : comp_of(g.size(), kNone) {
    const std::size_t n = g.size();
    // Pass 1: finishing order by iterative DFS.
    std::vector<std::size_t> order;
    order.reserve(n);
    std::vector<bool> seen(n, false);
    std::vector<std::pair<std::size_t, std::size_t>> stack;
    for (std::size_t root = 0; root < n; ++root) {
      if (seen[root]) continue;
      seen[root] = true;
      stack.emplace_back(root, 0);
      while (!stack.empty()) {
        auto& [v, next] = stack.back();
        if (next < g.adj[v].size()) {
          const std::size_t to = g.adj[v][next].to;
          ++next;
          if (!seen[to]) {
            seen[to] = true;
            stack.emplace_back(to, 0);
          }
        } else {
          order.push_back(v);
          stack.pop_back();
        }
      }
    }
    // Pass 2: sweep the reverse graph in reverse finishing order; each
    // sweep discovers one component, and discovery order is a
    // topological order of the condensation.
    std::vector<std::vector<std::size_t>> reverse_adj(n);
    for (std::size_t v = 0; v < n; ++v) {
      for (const Graph::Edge& e : g.adj[v]) {
        reverse_adj[e.to].push_back(v);
      }
    }
    std::vector<std::size_t> worklist;
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      if (comp_of[*it] != kNone) continue;
      comp_of[*it] = num_components;
      worklist.push_back(*it);
      while (!worklist.empty()) {
        const std::size_t v = worklist.back();
        worklist.pop_back();
        for (std::size_t from : reverse_adj[v]) {
          if (comp_of[from] == kNone) {
            comp_of[from] = num_components;
            worklist.push_back(from);
          }
        }
      }
      ++num_components;
    }
  }

  static constexpr std::size_t kNone =
      std::numeric_limits<std::size_t>::max();
  std::vector<std::size_t> comp_of;
  std::size_t num_components = 0;
};

/// Nodes of `g` reachable from `start`.
std::vector<bool> ReachableFrom(const Graph& g, std::size_t start) {
  std::vector<bool> reach(g.size(), false);
  std::vector<std::size_t> worklist{start};
  reach[start] = true;
  while (!worklist.empty()) {
    const std::size_t v = worklist.back();
    worklist.pop_back();
    for (const Graph::Edge& e : g.adj[v]) {
      if (!reach[e.to]) {
        reach[e.to] = true;
        worklist.push_back(e.to);
      }
    }
  }
  return reach;
}

/// The maximum total edge weight over any walk starting at `start`, or
/// Unbounded() when a positive-weight edge lies on a reachable cycle.
/// Zero-weight cycles are fine: weight accumulates only across
/// components of the condensation.
StaticBound BoundLongestPath(const Graph& g, std::size_t start) {
  const std::vector<bool> reach = ReachableFrom(g, start);
  const Condensation scc(g);
  for (std::size_t v = 0; v < g.size(); ++v) {
    if (!reach[v]) continue;
    for (const Graph::Edge& e : g.adj[v]) {
      if (e.weight > 0 && scc.comp_of[v] == scc.comp_of[e.to]) {
        return StaticBound::Unbounded();
      }
    }
  }
  // DP over components in topological order. comp ids already are a
  // topological order (see Condensation).
  constexpr std::int64_t kMinusInf = std::numeric_limits<std::int64_t>::min();
  std::vector<std::int64_t> dist(scc.num_components, kMinusInf);
  dist[scc.comp_of[start]] = 0;
  // Bucket nodes by component so we can sweep components in order.
  std::vector<std::vector<std::size_t>> members(scc.num_components);
  for (std::size_t v = 0; v < g.size(); ++v) {
    if (reach[v]) members[scc.comp_of[v]].push_back(v);
  }
  std::int64_t best = 0;
  for (std::size_t c = 0; c < scc.num_components; ++c) {
    if (dist[c] == kMinusInf) continue;
    best = std::max(best, dist[c]);
    for (std::size_t v : members[c]) {
      for (const Graph::Edge& e : g.adj[v]) {
        const std::size_t to_comp = scc.comp_of[e.to];
        if (to_comp == c) continue;
        dist[to_comp] = std::max(
            dist[to_comp], dist[c] + static_cast<std::int64_t>(e.weight));
      }
    }
  }
  return StaticBound::Finite(static_cast<std::uint64_t>(best));
}

/// Dense numbering of every state mentioned anywhere in the spec.
struct StateIndex {
  std::vector<int> states;
  std::map<int, std::size_t> index;

  explicit StateIndex(const MachineSpec& spec) {
    auto add = [this](int q) {
      if (index.emplace(q, states.size()).second) states.push_back(q);
    };
    add(spec.start_state);
    for (int q : spec.final_states) add(q);
    for (int q : spec.accepting_states) add(q);
    for (const auto& [key, actions] : spec.transitions) {
      add(key.first);
      for (const Action& a : actions) add(a.next_state);
    }
  }
};

/// True iff the key and all of its actions have the arities of `spec` —
/// the precondition for the CFG and resource passes to index into them.
bool KeyWellFormed(const MachineSpec& spec, const std::string& symbols,
                   const std::vector<Action>& actions) {
  if (symbols.size() != spec.num_tapes()) return false;
  return std::all_of(actions.begin(), actions.end(),
                     [&spec](const Action& a) {
                       return a.write.size() == spec.num_tapes() &&
                              a.moves.size() == spec.num_tapes();
                     });
}

void WellFormednessPass(const MachineSpec& spec,
                        const AnalyzeOptions& options,
                        std::optional<bool> declared_deterministic,
                        Diagnostics& diag) {
  std::array<bool, 256> allowed{};
  if (options.alphabet.has_value()) {
    for (char c : *options.alphabet) {
      allowed[static_cast<unsigned char>(c)] = true;
    }
    allowed[static_cast<unsigned char>(machine::kBlank)] = true;
  }
  auto check_alphabet = [&](const std::string& text, int state,
                            const std::string& key, const char* what) {
    if (!options.alphabet.has_value()) return;
    for (std::size_t i = 0; i < text.size(); ++i) {
      if (!allowed[static_cast<unsigned char>(text[i])]) {
        std::ostringstream os;
        os << what << " symbol '" << text[i]
           << "' is outside the declared alphabet \"" << *options.alphabet
           << "\"";
        diag.Add(Code::kAlphabet, Severity::kError, os.str(), state, key, i);
      }
    }
  };

  for (int q : spec.accepting_states) {
    if (!spec.IsFinal(q)) {
      diag.Add(Code::kAcceptingNotFinal, Severity::kError,
               "accepting state " + std::to_string(q) +
                   " is not in the final-state set",
               q);
    }
  }

  bool any_branch = false;
  for (const auto& [key, actions] : spec.transitions) {
    const auto& [state, symbols] = key;
    if (symbols.size() != spec.num_tapes()) {
      diag.Add(Code::kKeyArity, Severity::kError,
               "key has " + std::to_string(symbols.size()) +
                   " symbol(s) but the machine has " +
                   std::to_string(spec.num_tapes()) + " tape(s)",
               state, symbols);
    } else {
      check_alphabet(symbols, state, symbols, "key");
    }
    if (spec.IsFinal(state)) {
      diag.Add(Code::kFinalHasRules, Severity::kError,
               "final state " + std::to_string(state) +
                   " has outgoing transition rules",
               state, symbols);
    }
    if (actions.size() > 1) {
      any_branch = true;
      if (declared_deterministic.value_or(false)) {
        diag.Add(Code::kNondeterministicKey, Severity::kError,
                 "machine is declared deterministic but this key has " +
                     std::to_string(actions.size()) + " actions",
                 state, symbols);
      }
    }
    for (const Action& a : actions) {
      if (a.write.size() != spec.num_tapes() ||
          a.moves.size() != spec.num_tapes()) {
        std::ostringstream os;
        os << "action write arity " << a.write.size() << " / moves arity "
           << a.moves.size() << " != tape count " << spec.num_tapes();
        diag.Add(Code::kActionArity, Severity::kError, os.str(), state,
                 symbols);
      } else {
        check_alphabet(a.write, state, symbols, "write");
      }
    }
  }
  if (declared_deterministic.has_value() && !*declared_deterministic &&
      !any_branch) {
    diag.Add(Code::kNeverBranches, Severity::kWarning,
             "machine is declared randomized/nondeterministic but no key "
             "has more than one action; choice sequences are vacuous");
  }
}

void ControlFlowPass(const MachineSpec& spec, const StateIndex& states,
                     Diagnostics& diag) {
  // State-level successor graph (ignores symbols: an edge exists if any
  // key of the source state can reach the target).
  Graph g(states.states.size());
  std::set<int> has_rules;
  for (const auto& [key, actions] : spec.transitions) {
    has_rules.insert(key.first);
    const std::size_t from = states.index.at(key.first);
    for (const Action& a : actions) {
      g.AddEdge(from, states.index.at(a.next_state), 0);
    }
  }
  const std::vector<bool> reach =
      ReachableFrom(g, states.index.at(spec.start_state));

  for (std::size_t i = 0; i < states.states.size(); ++i) {
    if (!reach[i]) {
      diag.Add(Code::kUnreachableState, Severity::kWarning,
               "state " + std::to_string(states.states[i]) +
                   " is unreachable from the start state",
               states.states[i]);
    }
  }

  // Stuck successors: a reachable action leading to a non-final state
  // with no rules halts the run in a rejecting limbo. Reported once per
  // stuck target.
  std::set<int> reported;
  for (const auto& [key, actions] : spec.transitions) {
    if (!reach[states.index.at(key.first)]) continue;
    for (const Action& a : actions) {
      if (spec.IsFinal(a.next_state) || has_rules.count(a.next_state) > 0) {
        continue;
      }
      if (!reported.insert(a.next_state).second) continue;
      diag.Add(Code::kStuckSuccessor, Severity::kWarning,
               "action leads to state " + std::to_string(a.next_state) +
                   " which is neither final nor has any rules (the run "
                   "halts stuck there)",
               key.first, key.second);
    }
  }

  if (spec.IsFinal(spec.start_state)) {
    diag.Add(Code::kTrivialStart, Severity::kWarning,
             "start state is final: the machine halts immediately",
             spec.start_state);
  } else if (has_rules.count(spec.start_state) == 0) {
    diag.Add(Code::kTrivialStart, Severity::kWarning,
             "start state has no transition rules: the machine is stuck "
             "immediately",
             spec.start_state);
  }
}

/// Per-external-tape head-direction phase analysis: node (state, dir),
/// reversal edges weigh 1. The bound is sound because the runtime
/// tracker charges a reversal only on a strict direction change, which
/// corresponds to a weight-1 edge on the executed path (the static walk
/// also charges blocked left moves at cell 0, so it can only
/// over-approximate).
StaticBound ExternalReversalBound(const MachineSpec& spec,
                                  const StateIndex& states,
                                  std::size_t tape) {
  const std::size_t n = states.states.size();
  Graph g(2 * n);  // node = 2 * state_index + (0: dir +1, 1: dir -1)
  for (const auto& [key, actions] : spec.transitions) {
    if (!KeyWellFormed(spec, key.second, actions)) continue;
    const std::size_t from = states.index.at(key.first);
    for (const Action& a : actions) {
      const std::size_t to = states.index.at(a.next_state);
      switch (a.moves[tape]) {
        case Move::kStay:
          g.AddEdge(2 * from, 2 * to, 0);
          g.AddEdge(2 * from + 1, 2 * to + 1, 0);
          break;
        case Move::kRight:
          g.AddEdge(2 * from, 2 * to, 0);
          g.AddEdge(2 * from + 1, 2 * to, 1);
          break;
        case Move::kLeft:
          g.AddEdge(2 * from, 2 * to + 1, 1);
          g.AddEdge(2 * from + 1, 2 * to + 1, 0);
          break;
      }
    }
  }
  return BoundLongestPath(g, 2 * states.index.at(spec.start_state));
}

/// Internal tapes only grow under right moves: cells used on any run is
/// at most 1 + (number of right moves on the executed path).
StaticBound InternalCellBound(const MachineSpec& spec,
                              const StateIndex& states, std::size_t tape) {
  Graph g(states.states.size());
  for (const auto& [key, actions] : spec.transitions) {
    if (!KeyWellFormed(spec, key.second, actions)) continue;
    const std::size_t from = states.index.at(key.first);
    for (const Action& a : actions) {
      g.AddEdge(from, states.index.at(a.next_state),
                a.moves[tape] == Move::kRight ? 1 : 0);
    }
  }
  StaticBound bound =
      BoundLongestPath(g, states.index.at(spec.start_state));
  if (bound.bounded) ++bound.value;  // the initial blank cell
  return bound;
}

void ResourcePass(const MachineSpec& spec, const StateIndex& states,
                  const AnalyzeOptions& options, Diagnostics& diag,
                  StaticResources& res) {
  res.external_reversals.clear();
  res.internal_cells.clear();
  std::uint64_t scan = 1;
  bool scan_bounded = true;
  for (std::size_t i = 0; i < spec.num_external_tapes; ++i) {
    const StaticBound b = ExternalReversalBound(spec, states, i);
    res.external_reversals.push_back(b);
    scan_bounded = scan_bounded && b.bounded;
    if (b.bounded) scan += b.value;
  }
  res.scan_bound =
      scan_bounded ? StaticBound::Finite(scan) : StaticBound::Unbounded();

  std::uint64_t cells = 0;
  bool cells_bounded = true;
  for (std::size_t j = 0; j < spec.num_internal_tapes; ++j) {
    const StaticBound b =
        InternalCellBound(spec, states, spec.num_external_tapes + j);
    res.internal_cells.push_back(b);
    cells_bounded = cells_bounded && b.bounded;
    if (b.bounded) cells += b.value;
  }
  res.total_internal_cells = cells_bounded ? StaticBound::Finite(cells)
                                           : StaticBound::Unbounded();

  if (!options.declared.has_value()) return;
  const core::ResourceClass& cls = *options.declared;
  if (spec.num_external_tapes > cls.t) {
    diag.Add(Code::kTapeCount, Severity::kError,
             "machine has " + std::to_string(spec.num_external_tapes) +
                 " external tapes but class " + cls.name + " allows " +
                 std::to_string(cls.t));
  }
  const std::uint64_t r_n = cls.r_of_n(options.check_n);
  if (res.scan_bound.bounded && res.scan_bound.value > r_n) {
    diag.Add(Code::kReversalBound, Severity::kError,
             "static scan bound " + res.scan_bound.ToString() +
                 " exceeds declared r(N) = " + std::to_string(r_n) +
                 " of class " + cls.name + " at N = " +
                 std::to_string(options.check_n));
  } else if (!res.scan_bound.bounded) {
    diag.Add(Code::kReversalBound, Severity::kNote,
             "reversals sit on a control-flow cycle; membership in " +
                 cls.name + " must be established dynamically");
  }
  const std::size_t s_n = cls.s_of_n(options.check_n);
  if (res.total_internal_cells.bounded &&
      res.total_internal_cells.value > s_n) {
    diag.Add(Code::kSpaceBound, Severity::kError,
             "static internal-space bound " +
                 res.total_internal_cells.ToString() +
                 " cells exceeds declared s(N) = " + std::to_string(s_n) +
                 " of class " + cls.name + " at N = " +
                 std::to_string(options.check_n));
  } else if (!res.total_internal_cells.bounded) {
    // A tape that grows on a cycle can never meet a constant s(N).
    const bool constant_space =
        cls.s_of_n(std::size_t{1} << 10) == cls.s_of_n(std::size_t{1} << 20);
    diag.Add(Code::kSpaceBound,
             constant_space ? Severity::kError : Severity::kNote,
             constant_space
                 ? "an internal tape grows on a control-flow cycle but "
                   "class " + cls.name + " declares constant space"
                 : "internal space sits on a control-flow cycle; "
                   "membership in " + cls.name +
                       " must be established dynamically");
  }
}

}  // namespace

Analysis Analyze(const machine::MachineSpec& spec,
                 const AnalyzeOptions& options) {
  Analysis out;
  std::optional<bool> declared_deterministic = options.declared_deterministic;
  if (!declared_deterministic.has_value() && options.declared.has_value()) {
    declared_deterministic =
        options.declared->mode == core::MachineMode::kDeterministic;
  }

  WellFormednessPass(spec, options, declared_deterministic,
                     out.diagnostics);
  const StateIndex states(spec);
  ControlFlowPass(spec, states, out.diagnostics);
  ResourcePass(spec, states, options, out.diagnostics, out.resources);
  return out;
}

Status CheckCostsAgainstCertificate(const machine::RunCosts& costs,
                                    const StaticResources& certified) {
  for (std::size_t i = 0; i < certified.external_reversals.size() &&
                          i < costs.external_reversals.size();
       ++i) {
    const StaticBound& b = certified.external_reversals[i];
    if (b.bounded && costs.external_reversals[i] > b.value) {
      std::ostringstream os;
      os << CodeName(Code::kCertificateViolated) << ": run performed "
         << costs.external_reversals[i] << " reversals on external tape "
         << i << " but the static certificate allows " << b.value;
      return Status::ResourceExhausted(os.str());
    }
  }
  if (certified.total_internal_cells.bounded &&
      costs.internal_space > certified.total_internal_cells.value) {
    std::ostringstream os;
    os << CodeName(Code::kCertificateViolated) << ": run used "
       << costs.internal_space
       << " internal cells but the static certificate allows "
       << certified.total_internal_cells.value;
    return Status::ResourceExhausted(os.str());
  }
  return Status::OK();
}

}  // namespace rstlab::check
