#include "check/analyzer.h"

#include <algorithm>
#include <array>
#include <set>
#include <sstream>

#include "check/graph.h"
#include "check/growth.h"

namespace rstlab::check {

namespace {

using machine::Action;
using machine::MachineSpec;
using machine::Move;

void WellFormednessPass(const MachineSpec& spec,
                        const AnalyzeOptions& options,
                        std::optional<bool> declared_deterministic,
                        Diagnostics& diag) {
  std::array<bool, 256> allowed{};
  if (options.alphabet.has_value()) {
    for (char c : *options.alphabet) {
      allowed[static_cast<unsigned char>(c)] = true;
    }
    allowed[static_cast<unsigned char>(machine::kBlank)] = true;
  }
  auto check_alphabet = [&](const std::string& text, int state,
                            const std::string& key, const char* what) {
    if (!options.alphabet.has_value()) return;
    for (std::size_t i = 0; i < text.size(); ++i) {
      if (!allowed[static_cast<unsigned char>(text[i])]) {
        std::ostringstream os;
        os << what << " symbol '" << text[i]
           << "' is outside the declared alphabet \"" << *options.alphabet
           << "\"";
        diag.Add(Code::kAlphabet, Severity::kError, os.str(), state, key, i);
      }
    }
  };

  for (int q : spec.accepting_states) {
    if (!spec.IsFinal(q)) {
      diag.Add(Code::kAcceptingNotFinal, Severity::kError,
               "accepting state " + std::to_string(q) +
                   " is not in the final-state set",
               q);
    }
  }

  bool any_branch = false;
  for (const auto& [key, actions] : spec.transitions) {
    const auto& [state, symbols] = key;
    if (symbols.size() != spec.num_tapes()) {
      diag.Add(Code::kKeyArity, Severity::kError,
               "key has " + std::to_string(symbols.size()) +
                   " symbol(s) but the machine has " +
                   std::to_string(spec.num_tapes()) + " tape(s)",
               state, symbols);
    } else {
      check_alphabet(symbols, state, symbols, "key");
    }
    if (spec.IsFinal(state)) {
      diag.Add(Code::kFinalHasRules, Severity::kError,
               "final state " + std::to_string(state) +
                   " has outgoing transition rules",
               state, symbols);
    }
    if (actions.size() > 1) {
      any_branch = true;
      if (declared_deterministic.value_or(false)) {
        diag.Add(Code::kNondeterministicKey, Severity::kError,
                 "machine is declared deterministic but this key has " +
                     std::to_string(actions.size()) + " actions",
                 state, symbols);
      }
    }
    for (const Action& a : actions) {
      if (a.write.size() != spec.num_tapes() ||
          a.moves.size() != spec.num_tapes()) {
        std::ostringstream os;
        os << "action write arity " << a.write.size() << " / moves arity "
           << a.moves.size() << " != tape count " << spec.num_tapes();
        diag.Add(Code::kActionArity, Severity::kError, os.str(), state,
                 symbols);
      } else {
        check_alphabet(a.write, state, symbols, "write");
      }
    }
  }
  if (declared_deterministic.has_value() && !*declared_deterministic &&
      !any_branch) {
    diag.Add(Code::kNeverBranches, Severity::kWarning,
             "machine is declared randomized/nondeterministic but no key "
             "has more than one action; choice sequences are vacuous");
  }
}

/// RST017: a later action on a (state, key) that is byte-identical to
/// an earlier one. For deterministic, nondeterministic and undeclared
/// machines the duplicate can never produce a run distinct from its
/// twin — it is dead weight (and, under uniform choice, silently skews
/// nothing but the choice numbering). Skipped for declared-randomized
/// machines, where duplicates legitimately reweight the coin (e.g. a
/// biased-coin machine encodes 3/5 as three identical accept actions).
void ShadowedRulePass(const MachineSpec& spec, const AnalyzeOptions& options,
                      Diagnostics& diag) {
  if (options.declared.has_value()) {
    switch (options.declared->mode) {
      case core::MachineMode::kRandomized:
      case core::MachineMode::kCoRandomized:
      case core::MachineMode::kLasVegas:
        return;
      default:
        break;
    }
  } else if (options.declared_deterministic.has_value() &&
             !*options.declared_deterministic) {
    return;  // could be randomized; duplicates may carry weight
  }
  for (const auto& [key, actions] : spec.transitions) {
    for (std::size_t j = 1; j < actions.size(); ++j) {
      for (std::size_t i = 0; i < j; ++i) {
        const Action& a = actions[i];
        const Action& b = actions[j];
        if (a.next_state == b.next_state && a.write == b.write &&
            a.moves == b.moves) {
          diag.Add(Code::kShadowedRule, Severity::kWarning,
                   "action #" + std::to_string(j) +
                       " duplicates action #" + std::to_string(i) +
                       " on the same key and can never produce a distinct "
                       "run (dead rule)",
                   key.first, key.second);
          break;
        }
      }
    }
  }
}

void ControlFlowPass(const MachineSpec& spec, const StateIndex& states,
                     Diagnostics& diag) {
  // State-level successor graph (ignores symbols: an edge exists if any
  // key of the source state can reach the target).
  Graph g(states.states.size());
  std::set<int> has_rules;
  for (const auto& [key, actions] : spec.transitions) {
    has_rules.insert(key.first);
    const std::size_t from = states.index.at(key.first);
    for (const Action& a : actions) {
      g.AddEdge(from, states.index.at(a.next_state), 0);
    }
  }
  const std::vector<bool> reach =
      ReachableFrom(g, states.index.at(spec.start_state));

  for (std::size_t i = 0; i < states.states.size(); ++i) {
    if (!reach[i]) {
      diag.Add(Code::kUnreachableState, Severity::kWarning,
               "state " + std::to_string(states.states[i]) +
                   " is unreachable from the start state",
               states.states[i]);
    }
  }

  // Stuck successors: a reachable action leading to a non-final state
  // with no rules halts the run in a rejecting limbo. Reported once per
  // stuck target.
  std::set<int> reported;
  for (const auto& [key, actions] : spec.transitions) {
    if (!reach[states.index.at(key.first)]) continue;
    for (const Action& a : actions) {
      if (spec.IsFinal(a.next_state) || has_rules.count(a.next_state) > 0) {
        continue;
      }
      if (!reported.insert(a.next_state).second) continue;
      diag.Add(Code::kStuckSuccessor, Severity::kWarning,
               "action leads to state " + std::to_string(a.next_state) +
                   " which is neither final nor has any rules (the run "
                   "halts stuck there)",
               key.first, key.second);
    }
  }

  if (spec.IsFinal(spec.start_state)) {
    diag.Add(Code::kTrivialStart, Severity::kWarning,
             "start state is final: the machine halts immediately",
             spec.start_state);
  } else if (has_rules.count(spec.start_state) == 0) {
    diag.Add(Code::kTrivialStart, Severity::kWarning,
             "start state has no transition rules: the machine is stuck "
             "immediately",
             spec.start_state);
  }
}

/// The declared-class cross-check for one quantity (scans or cells):
/// a hard comparison at check_n first (RST010/RST011, the historical
/// single-point check), then the symbolic dominance sweep over
/// [symbolic_from, symbolic_to] reporting a concrete witness N
/// (RST018). The single-point check owns violations at check_n so the
/// two diagnostics never double-report one crossing.
void CrossCheckQuantity(const BoundExpr& inferred, const char* quantity,
                        Code point_code,
                        const std::function<std::uint64_t(std::size_t)>& env,
                        const std::string& class_name,
                        const AnalyzeOptions& options, Diagnostics& diag) {
  if (inferred.unbounded()) return;  // handled by the caller's note path
  const std::uint64_t declared_at_n = env(options.check_n);
  const std::uint64_t inferred_at_n = inferred.Eval(options.check_n);
  if (inferred_at_n > declared_at_n) {
    diag.Add(point_code, Severity::kError,
             std::string("static ") + quantity + " bound " +
                 inferred.ToString() + " exceeds declared " +
                 std::to_string(declared_at_n) + " of class " + class_name +
                 " at N = " + std::to_string(options.check_n) + " (" +
                 std::to_string(inferred_at_n) + " > " +
                 std::to_string(declared_at_n) + ")");
    return;
  }
  const std::optional<std::size_t> witness = FindWitnessN(
      inferred, env, std::max<std::size_t>(2, options.symbolic_from),
      options.symbolic_to);
  if (witness.has_value()) {
    diag.Add(Code::kClassNotDominated, Severity::kError,
             std::string("declared class ") + class_name +
                 " is not dominated: inferred " + quantity + " bound " +
                 inferred.ToString() + " exceeds the declared envelope at "
                 "witness N = " + std::to_string(*witness) + " (" +
                 std::to_string(inferred.Eval(*witness)) + " > " +
                 std::to_string(env(*witness)) + ")");
  }
}

void ResourcePass(const MachineSpec& spec, const StateIndex& states,
                  const AnalyzeOptions& options, Diagnostics& diag,
                  StaticResources& res) {
  res.external_reversals.clear();
  res.internal_cells.clear();
  BoundExpr scan = BoundExpr::Constant(1);
  for (std::size_t i = 0; i < spec.num_external_tapes; ++i) {
    BoundExpr b = SymbolicExternalReversalBound(spec, states, i);
    scan += b;
    res.external_reversals.push_back(std::move(b));
  }
  res.scan_bound = std::move(scan);

  BoundExpr cells;
  for (std::size_t j = 0; j < spec.num_internal_tapes; ++j) {
    BoundExpr b = SymbolicInternalCellBound(spec, states,
                                            spec.num_external_tapes + j);
    cells += b;
    res.internal_cells.push_back(std::move(b));
  }
  res.total_internal_cells = std::move(cells);

  if (!options.declared.has_value()) return;
  const core::ResourceClass& cls = *options.declared;
  if (spec.num_external_tapes > cls.t) {
    diag.Add(Code::kTapeCount, Severity::kError,
             "machine has " + std::to_string(spec.num_external_tapes) +
                 " external tapes but class " + cls.name + " allows " +
                 std::to_string(cls.t));
  }
  CrossCheckQuantity(res.scan_bound, "scan", Code::kReversalBound,
                     cls.r_of_n, cls.name, options, diag);
  if (res.scan_bound.unbounded()) {
    diag.Add(Code::kReversalBound, Severity::kNote,
             "reversals sit on a control-flow cycle no growth rule "
             "covers; membership in " + cls.name +
                 " must be established dynamically");
  }
  const auto s_env = [&cls](std::size_t n) {
    return static_cast<std::uint64_t>(cls.s_of_n(n));
  };
  CrossCheckQuantity(res.total_internal_cells, "internal-space",
                     Code::kSpaceBound, s_env, cls.name, options, diag);
  if (res.total_internal_cells.unbounded()) {
    // A tape that grows on a cycle can never meet a constant s(N).
    const bool constant_space =
        cls.s_of_n(std::size_t{1} << 10) == cls.s_of_n(std::size_t{1} << 20);
    diag.Add(Code::kSpaceBound,
             constant_space ? Severity::kError : Severity::kNote,
             constant_space
                 ? "an internal tape grows on a control-flow cycle but "
                   "class " + cls.name + " declares constant space"
                 : "internal space sits on a control-flow cycle no growth "
                   "rule covers; membership in " + cls.name +
                       " must be established dynamically");
  }
}

}  // namespace

Analysis Analyze(const machine::MachineSpec& spec,
                 const AnalyzeOptions& options) {
  Analysis out;
  std::optional<bool> declared_deterministic = options.declared_deterministic;
  if (!declared_deterministic.has_value() && options.declared.has_value()) {
    declared_deterministic =
        options.declared->mode == core::MachineMode::kDeterministic;
  }

  WellFormednessPass(spec, options, declared_deterministic,
                     out.diagnostics);
  ShadowedRulePass(spec, options, out.diagnostics);
  const StateIndex states(spec);
  ControlFlowPass(spec, states, out.diagnostics);
  ResourcePass(spec, states, options, out.diagnostics, out.resources);
  return out;
}

Status CheckCostsAgainstCertificate(const machine::RunCosts& costs,
                                    const StaticResources& certified,
                                    std::size_t n) {
  for (std::size_t i = 0; i < certified.external_reversals.size() &&
                          i < costs.external_reversals.size();
       ++i) {
    const BoundExpr& b = certified.external_reversals[i];
    const std::uint64_t limit = b.Eval(n);
    if (costs.external_reversals[i] > limit) {
      std::ostringstream os;
      os << CodeName(Code::kCertificateViolated) << ": run performed "
         << costs.external_reversals[i] << " reversals on external tape "
         << i << " but the static certificate allows " << limit << " ("
         << b.ToString() << " at N = " << n << ")";
      return Status::ResourceExhausted(os.str());
    }
  }
  const std::uint64_t cell_limit = certified.total_internal_cells.Eval(n);
  if (costs.internal_space > cell_limit) {
    std::ostringstream os;
    os << CodeName(Code::kCertificateViolated) << ": run used "
       << costs.internal_space
       << " internal cells but the static certificate allows " << cell_limit
       << " (" << certified.total_internal_cells.ToString() << " at N = "
       << n << ")";
    return Status::ResourceExhausted(os.str());
  }
  return Status::OK();
}

}  // namespace rstlab::check
