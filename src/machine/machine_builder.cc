#include "machine/machine_builder.h"

#include <cassert>
#include <sstream>

namespace rstlab::machine {

MachineBuilder::MachineBuilder(std::size_t num_external_tapes,
                               std::size_t num_internal_tapes) {
  spec_.num_external_tapes = num_external_tapes;
  spec_.num_internal_tapes = num_internal_tapes;
}

MachineBuilder& MachineBuilder::SetStart(int state) {
  spec_.start_state = state;
  return *this;
}

MachineBuilder& MachineBuilder::AddFinal(int state, bool accepting) {
  spec_.final_states.push_back(state);
  if (accepting) spec_.accepting_states.push_back(state);
  return *this;
}

void MachineBuilder::RecordError(Status status) {
  if (status_.ok()) status_ = std::move(status);
}

MachineBuilder::Rule& MachineBuilder::Rule::Go(
    int next_state, const std::string& write,
    const std::vector<Move>& moves) {
  MachineSpec& spec = builder_->spec_;
  if (write.size() != spec.num_tapes() ||
      moves.size() != spec.num_tapes()) {
    std::ostringstream os;
    os << "error RST001 [state " << state_ << ", key \"" << symbols_
       << "\"]: action write arity " << write.size() << " / moves arity "
       << moves.size() << " != tape count " << spec.num_tapes();
    builder_->RecordError(Status::InvalidArgument(os.str()));
  }
  Action action;
  action.next_state = next_state;
  action.write = write;
  action.moves = moves;
  spec.transitions[{state_, symbols_}].push_back(std::move(action));
  return *this;
}

MachineBuilder::Rule MachineBuilder::On(int state,
                                        const std::string& symbols) {
  if (symbols.size() != spec_.num_tapes()) {
    std::ostringstream os;
    os << "error RST002 [state " << state << ", key \"" << symbols
       << "\"]: key has " << symbols.size()
       << " symbol(s) but the machine has " << spec_.num_tapes()
       << " tape(s)";
    RecordError(Status::InvalidArgument(os.str()));
  }
  return Rule(this, state, symbols);
}

namespace zoo {

namespace {
constexpr int kAccept = 100;
constexpr int kReject = 101;
const std::vector<Move> kStay1 = {Move::kStay};
const std::vector<Move> kRight1 = {Move::kRight};
}  // namespace

MachineSpec FirstSymbolOne() {
  MachineBuilder b(1, 0);
  b.SetStart(0).AddFinal(kAccept, true).AddFinal(kReject, false);
  b.On(0, "1").Go(kAccept, "1", kStay1);
  b.On(0, "0").Go(kReject, "0", kStay1);
  b.On(0, std::string(1, kBlank)).Go(kReject, std::string(1, kBlank),
                                     kStay1);
  return b.Build();
}

MachineSpec EvenOnes() {
  // State 0: even parity so far, state 1: odd parity. '#' separators are
  // skipped, so the machine also runs on multi-field inputs v_1#...v_m#.
  MachineBuilder b(1, 0);
  b.SetStart(0).AddFinal(kAccept, true).AddFinal(kReject, false);
  b.On(0, "0").Go(0, "0", kRight1);
  b.On(0, "1").Go(1, "1", kRight1);
  b.On(0, "#").Go(0, "#", kRight1);
  b.On(1, "0").Go(1, "0", kRight1);
  b.On(1, "1").Go(0, "1", kRight1);
  b.On(1, "#").Go(1, "#", kRight1);
  b.On(0, std::string(1, kBlank))
      .Go(kAccept, std::string(1, kBlank), kStay1);
  b.On(1, std::string(1, kBlank))
      .Go(kReject, std::string(1, kBlank), kStay1);
  return b.Build();
}

MachineSpec FairCoin() {
  MachineBuilder b(1, 0);
  b.SetStart(0).AddFinal(kAccept, true).AddFinal(kReject, false);
  for (char c : {'0', '1', kBlank}) {
    b.On(0, std::string(1, c))
        .Go(kAccept, std::string(1, c), kStay1)
        .Go(kReject, std::string(1, c), kStay1);
  }
  return b.Build();
}

MachineSpec BiasedCoin(unsigned num, unsigned k) {
  assert(k <= 16 && num <= (1u << k));
  // A perfect binary tree of k coin flips; leaves 0..2^k-1, leaf < num
  // accepts. State encoding: (depth, prefix) packed as
  // 1 << depth | prefix, so the root is state 1.
  MachineBuilder b(1, 0);
  b.SetStart(1).AddFinal(kAccept, true).AddFinal(kReject, false);
  for (unsigned depth = 0; depth < k; ++depth) {
    for (unsigned prefix = 0; prefix < (1u << depth); ++prefix) {
      const int state = static_cast<int>((1u << depth) | prefix);
      for (char c : {'0', '1', kBlank}) {
        auto rule = b.On(state, std::string(1, c));
        for (unsigned bit = 0; bit < 2; ++bit) {
          const unsigned child_prefix = (prefix << 1) | bit;
          int next;
          if (depth + 1 == k) {
            next = child_prefix < num ? kAccept : kReject;
          } else {
            next = static_cast<int>((1u << (depth + 1)) | child_prefix);
          }
          rule.Go(next, std::string(1, c), kStay1);
        }
      }
    }
  }
  return b.Build();
}

MachineSpec TwoFieldEquality() {
  // Input on tape 0: v#w#. Tape 1 is a second external tape.
  // Phase 0 (state 0): copy v to tape 1, stop at '#'.
  // Phase 1 (state 1): rewind tape 1 to the left end.
  // Phase 2 (state 2): advance tape 0 past '#', then compare w on tape 0
  // against v on tape 1 cell by cell.
  const char B = kBlank;
  MachineBuilder b(2, 0);
  b.SetStart(0).AddFinal(kAccept, true).AddFinal(kReject, false);
  auto sym = [B](char a, char c) { return std::string({a, c}); };
  const std::vector<Move> rr = {Move::kRight, Move::kRight};
  const std::vector<Move> sl = {Move::kStay, Move::kLeft};
  const std::vector<Move> ss = {Move::kStay, Move::kStay};
  const std::vector<Move> rs = {Move::kRight, Move::kStay};

  // Phase 0: copy v.
  for (char c : {'0', '1'}) {
    b.On(0, sym(c, B)).Go(0, sym(c, c), rr);
  }
  b.On(0, sym('#', B)).Go(1, sym('#', B), sl);

  // Phase 1: rewind tape 1. Head 1 walks left until it falls on the cell
  // 0 sentinel: we detect the left end by writing a marker '^' at cell 0
  // at copy start; simpler: walk left while seeing 0/1, the cell left of
  // the copied block is blank only if we are at position 0... On a
  // one-sided tape moving left at cell 0 stays put, so we walk left over
  // 0/1 and detect termination when the symbol does not change after a
  // move. To keep the machine simple we instead mark the first copied
  // cell with capital letters A (for 0) and B' = 'Z' (for 1).
  for (char c : {'0', '1'}) {
    b.On(1, sym('#', c)).Go(1, sym('#', c), sl);
  }
  b.On(1, sym('#', 'A')).Go(2, sym('#', 'A'), rs);
  b.On(1, sym('#', 'Z')).Go(2, sym('#', 'Z'), rs);
  b.On(1, sym('#', B)).Go(2, sym('#', B), rs);  // v was empty

  // Phase 2: compare w (tape 0) with v (tape 1). 'A' reads as '0' and
  // 'Z' reads as '1'.
  auto tape1_matches = [](char w_char, char v_char) {
    const char decoded = (v_char == 'A') ? '0' : (v_char == 'Z') ? '1'
                                                                 : v_char;
    return w_char == decoded;
  };
  for (char w_char : {'0', '1'}) {
    for (char v_char : {'0', '1', 'A', 'Z'}) {
      if (tape1_matches(w_char, v_char)) {
        b.On(2, sym(w_char, v_char)).Go(2, sym(w_char, v_char), rr);
      } else {
        b.On(2, sym(w_char, v_char)).Go(kReject, sym(w_char, v_char), ss);
      }
    }
    // w longer than v.
    b.On(2, sym(w_char, B)).Go(kReject, sym(w_char, B), ss);
  }
  // End of w: accept iff v is also exhausted.
  b.On(2, sym('#', B)).Go(kAccept, sym('#', B), ss);
  for (char v_char : {'0', '1', 'A', 'Z'}) {
    b.On(2, sym('#', v_char)).Go(kReject, sym('#', v_char), ss);
  }

  // Adjust phase 0 so the first copied symbol is marked: replace the
  // start state with a dedicated first-copy state 10.
  MachineSpec spec = b.Build();
  spec.start_state = 10;
  {
    MachineBuilder extra(2, 0);
    extra.On(10, sym('0', B)).Go(0, {'0', 'A'}, rr);
    extra.On(10, sym('1', B)).Go(0, {'1', 'Z'}, rr);
    extra.On(10, sym('#', B)).Go(1, sym('#', B), sl);  // empty v
    MachineSpec extra_spec = extra.Build();
    for (auto& [key, actions] : extra_spec.transitions) {
      spec.transitions[key] = actions;
    }
  }
  return spec;
}

MachineSpec GuessFirstBit() {
  // Nondeterministically pick a bit (two actions), then check against the
  // first input symbol. States: 0 = guessing; 2 = guessed '0';
  // 3 = guessed '1'.
  MachineBuilder b(1, 0);
  b.SetStart(0).AddFinal(kAccept, true).AddFinal(kReject, false);
  for (char c : {'0', '1'}) {
    b.On(0, std::string(1, c))
        .Go(2, std::string(1, c), kStay1)
        .Go(3, std::string(1, c), kStay1);
  }
  b.On(2, "0").Go(kAccept, "0", kStay1);
  b.On(2, "1").Go(kReject, "1", kStay1);
  b.On(3, "0").Go(kReject, "0", kStay1);
  b.On(3, "1").Go(kAccept, "1", kStay1);
  return b.Build();
}

MachineSpec Palindrome() {
  // Input v# on tape 0. Marker 'A'/'Z' replaces the first input symbol
  // so the backward walk can find the left end; the clean value is
  // copied to tape 1. States: 10 = mark-and-copy-first, 0 = copy,
  // 1 = rewind tape 0, 2 = compare (tape 0 forward vs tape 1 backward).
  const char B = kBlank;
  MachineBuilder b(2, 0);
  b.SetStart(10).AddFinal(kAccept, true).AddFinal(kReject, false);
  auto sym = [](char a, char c) { return std::string({a, c}); };
  const std::vector<Move> rr = {Move::kRight, Move::kRight};
  const std::vector<Move> ll = {Move::kLeft, Move::kLeft};
  const std::vector<Move> ls = {Move::kLeft, Move::kStay};
  const std::vector<Move> ss = {Move::kStay, Move::kStay};
  const std::vector<Move> rl = {Move::kRight, Move::kLeft};

  // Mark and copy the first symbol.
  b.On(10, sym('0', B)).Go(0, {'A', '0'}, rr);
  b.On(10, sym('1', B)).Go(0, {'Z', '1'}, rr);
  b.On(10, sym('#', B)).Go(kAccept, sym('#', B), ss);  // empty word

  // Copy the rest.
  for (char c : {'0', '1'}) {
    b.On(0, sym(c, B)).Go(0, sym(c, c), rr);
  }
  b.On(0, sym('#', B)).Go(1, sym('#', B), ll);

  // Rewind tape 0 to the marker (tape 1 holds on the last character).
  for (char c : {'0', '1'}) {
    for (char d : {'0', '1'}) {
      b.On(1, sym(c, d)).Go(1, sym(c, d), ls);
    }
    b.On(1, sym('A', c)).Go(2, sym('A', c), ss);
    b.On(1, sym('Z', c)).Go(2, sym('Z', c), ss);
  }

  // Compare: tape 0 left-to-right (marker decodes to its bit) against
  // tape 1 right-to-left.
  auto decoded = [](char c) {
    return c == 'A' ? '0' : c == 'Z' ? '1' : c;
  };
  for (char c : {'0', '1', 'A', 'Z'}) {
    for (char d : {'0', '1'}) {
      if (decoded(c) == d) {
        b.On(2, sym(c, d)).Go(2, sym(c, d), rl);
      } else {
        b.On(2, sym(c, d)).Go(kReject, sym(c, d), ss);
      }
    }
  }
  for (char d : {'0', '1'}) {
    b.On(2, sym('#', d)).Go(kAccept, sym('#', d), ss);
  }
  return b.Build();
}

MachineSpec BalancedZerosOnes() {
  // Tape 0: external input. Tapes 1/2: internal little-endian binary
  // counters for zeros/ones, cell 0 = '^' marker, digits from cell 1.
  // Between operations both internal heads rest on cell 1 (the LSB).
  // States: 20 init, 0 main, 1 incA, 2 backA, 3 incB, 4 backB, 5 cmp.
  const char B = kBlank;
  const std::vector<char> ext = {'0', '1', '#', B};
  const std::vector<char> digit_or_blank = {'0', '1', B};
  MachineBuilder b(1, 2);
  b.SetStart(20).AddFinal(kAccept, true).AddFinal(kReject, false);
  auto sym = [](char a, char c, char d) {
    return std::string({a, c, d});
  };
  const std::vector<Move> s_rr = {Move::kStay, Move::kRight, Move::kRight};
  const std::vector<Move> sss = {Move::kStay, Move::kStay, Move::kStay};

  // Init: plant the cell-0 markers.
  for (char x : ext) {
    b.On(20, sym(x, B, B)).Go(0, {x, '^', '^'}, s_rr);
  }

  // Main loop: dispatch on the input character. The external head is
  // consumed (moved right) as the increment starts.
  for (char d1 : digit_or_blank) {
    for (char d2 : digit_or_blank) {
      b.On(0, sym('0', d1, d2))
          .Go(1, {'0', d1, d2}, {Move::kRight, Move::kStay, Move::kStay});
      b.On(0, sym('1', d1, d2))
          .Go(3, {'1', d1, d2}, {Move::kRight, Move::kStay, Move::kStay});
      b.On(0, sym('#', d1, d2)).Go(5, {'#', d1, d2}, sss);
      b.On(0, sym(B, d1, d2)).Go(5, {B, d1, d2}, sss);
    }
  }

  // Increment of counter A (states 1/2) and B (states 3/4): binary
  // carry walk right, then rewind to the LSB.
  for (char x : ext) {
    for (char other : digit_or_blank) {
      // incA: flip 1s to 0s rightward; write the final 1; rewind.
      b.On(1, sym(x, '1', other))
          .Go(1, {x, '0', other}, {Move::kStay, Move::kRight, Move::kStay});
      b.On(1, sym(x, '0', other))
          .Go(2, {x, '1', other}, {Move::kStay, Move::kLeft, Move::kStay});
      b.On(1, sym(x, B, other))
          .Go(2, {x, '1', other}, {Move::kStay, Move::kLeft, Move::kStay});
      // backA: walk left to the marker, then step onto the LSB.
      for (char d : {'0', '1'}) {
        b.On(2, sym(x, d, other))
            .Go(2, {x, d, other}, {Move::kStay, Move::kLeft, Move::kStay});
      }
      b.On(2, sym(x, '^', other))
          .Go(0, {x, '^', other}, {Move::kStay, Move::kRight, Move::kStay});
      // incB / backB, mirrored.
      b.On(3, sym(x, other, '1'))
          .Go(3, {x, other, '0'}, {Move::kStay, Move::kStay, Move::kRight});
      b.On(3, sym(x, other, '0'))
          .Go(4, {x, other, '1'}, {Move::kStay, Move::kStay, Move::kLeft});
      b.On(3, sym(x, other, B))
          .Go(4, {x, other, '1'}, {Move::kStay, Move::kStay, Move::kLeft});
      for (char d : {'0', '1'}) {
        b.On(4, sym(x, other, d))
            .Go(4, {x, other, d}, {Move::kStay, Move::kStay, Move::kLeft});
      }
      b.On(4, sym(x, other, '^'))
          .Go(0, {x, other, '^'}, {Move::kStay, Move::kStay, Move::kRight});
    }
  }

  // Compare the counters digit by digit from the LSB.
  for (char x : ext) {
    for (char d1 : digit_or_blank) {
      for (char d2 : digit_or_blank) {
        if (d1 == B && d2 == B) {
          b.On(5, sym(x, B, B)).Go(kAccept, sym(x, B, B), sss);
        } else if (d1 == d2) {
          b.On(5, sym(x, d1, d2))
              .Go(5, sym(x, d1, d2),
                  {Move::kStay, Move::kRight, Move::kRight});
        } else {
          b.On(5, sym(x, d1, d2)).Go(kReject, sym(x, d1, d2), sss);
        }
      }
    }
  }
  return b.Build();
}

}  // namespace zoo

}  // namespace rstlab::machine
