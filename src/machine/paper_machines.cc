#include "machine/paper_machines.h"

#include <map>
#include <string>

#include "machine/machine_builder.h"

namespace rstlab::machine::paper {

namespace {

constexpr int kAccept = 100;
constexpr int kReject = 101;
const std::vector<Move> kStay1 = {Move::kStay};
const std::vector<Move> kRight1 = {Move::kRight};
const std::vector<Move> kLeft1 = {Move::kLeft};

/// Hands out fresh state ids for named control points, so the generated
/// tables stay readable while staying clear of kAccept/kReject.
class StateNames {
 public:
  int operator()(const std::string& name) {
    auto [it, inserted] = ids_.emplace(name, next_);
    if (inserted) ++next_;
    return it->second;
  }

 private:
  std::map<std::string, int> ids_;
  int next_ = 200;
};

std::string FwdName(unsigned p, char section, unsigned d) {
  return "F" + std::to_string(p) + section + std::to_string(d);
}

std::string BackName(unsigned p, bool forward_ok, char section,
                     unsigned e) {
  return "B" + std::to_string(p) + (forward_ok ? "y" : "n") + section +
         std::to_string(e);
}

}  // namespace

MachineSpec Theorem8aFingerprint() {
  // Sections: 'v' (left of '$') and 'w' (right of '$'). Markers written
  // over cell 0 let the backward scan detect the left end: 'A' = marked
  // '0', 'Z' = marked '1', 'D' = marked '$'.
  const char B = kBlank;
  const unsigned primes[] = {3, 5};
  StateNames name;
  MachineBuilder b(1, 0);
  b.AddFinal(kAccept, true).AddFinal(kReject, false);
  const int start = name("start");
  b.SetStart(start);

  // Start: mark cell 0 and branch on the prime (the nondeterministic
  // "pick a random prime" of Theorem 8(a)). Empty input accepts.
  {
    auto on0 = b.On(start, "0");
    auto on1 = b.On(start, "1");
    auto onD = b.On(start, "$");
    for (unsigned p : primes) {
      on0.Go(name(FwdName(p, 'v', 0)), "A", kRight1);
      on1.Go(name(FwdName(p, 'v', 1 % p)), "Z", kRight1);
      onD.Go(name(FwdName(p, 'w', 0)), "D", kRight1);
    }
    b.On(start, std::string(1, B))
        .Go(kAccept, std::string(1, B), kStay1);
  }

  for (unsigned p : primes) {
    // Forward scan: accumulate d = digitsum(v) - digitsum(w) mod p.
    for (unsigned d = 0; d < p; ++d) {
      const int fv = name(FwdName(p, 'v', d));
      const int fw = name(FwdName(p, 'w', d));
      for (char c : {'0', '1'}) {
        const unsigned digit = static_cast<unsigned>(c - '0');
        b.On(fv, std::string(1, c))
            .Go(name(FwdName(p, 'v', (d + digit) % p)), std::string(1, c),
                kRight1);
        b.On(fw, std::string(1, c))
            .Go(name(FwdName(p, 'w', (d + p - digit) % p)),
                std::string(1, c), kRight1);
      }
      b.On(fv, "#").Go(fv, "#", kRight1);
      b.On(fw, "#").Go(fw, "#", kRight1);
      b.On(fv, "$").Go(fw, "$", kRight1);
      // Right end: the single reversal into the backward scan. A
      // missing '$' leaves the scan in section v; both cases carry the
      // forward verdict d == 0 into the backward states.
      b.On(fv, std::string(1, B))
          .Go(name(BackName(p, d == 0, 'w', 0)), std::string(1, B),
              kLeft1);
      b.On(fw, std::string(1, B))
          .Go(name(BackName(p, d == 0, 'w', 0)), std::string(1, B),
              kLeft1);
    }

    // Backward verification scan: re-accumulate e = digitsum(v) -
    // digitsum(w) mod p from the right; finalize at the cell-0 marker.
    for (bool ok : {false, true}) {
      for (unsigned e = 0; e < p; ++e) {
        const int bw = name(BackName(p, ok, 'w', e));
        const int bv = name(BackName(p, ok, 'v', e));
        for (char c : {'0', '1'}) {
          const unsigned digit = static_cast<unsigned>(c - '0');
          b.On(bw, std::string(1, c))
              .Go(name(BackName(p, ok, 'w', (e + p - digit) % p)),
                  std::string(1, c), kLeft1);
          b.On(bv, std::string(1, c))
              .Go(name(BackName(p, ok, 'v', (e + digit) % p)),
                  std::string(1, c), kLeft1);
        }
        b.On(bw, "#").Go(bw, "#", kLeft1);
        b.On(bv, "#").Go(bv, "#", kLeft1);
        b.On(bw, "$").Go(bv, "$", kLeft1);
        // Cell-0 markers end the scan: apply the marked digit (if any)
        // and accept iff both passes saw difference 0.
        for (const auto& [marker, digit] :
             std::map<char, unsigned>{{'A', 0}, {'Z', 1}, {'D', 0}}) {
          const unsigned final_e = (e + digit) % p;
          const int verdict = (ok && final_e == 0) ? kAccept : kReject;
          const std::string m(1, marker);
          b.On(bw, m).Go(verdict, m, kStay1);
          b.On(bv, m).Go(verdict, m, kStay1);
        }
      }
    }
  }
  return b.Build();
}

MachineSpec Theorem8aBatchFingerprint() {
  // Product automaton over both primes: every state carries the residue
  // pair (d mod 3, d mod 5). Cell-0 markers as in Theorem8aFingerprint:
  // 'A' = marked '0', 'Z' = marked '1', 'D' = marked '$'.
  const char B = kBlank;
  constexpr unsigned kP3 = 3;
  constexpr unsigned kP5 = 5;
  StateNames name;
  MachineBuilder b(1, 0);
  b.AddFinal(kAccept, true).AddFinal(kReject, false);
  const int start = name("start");
  b.SetStart(start);

  const auto fwd = [&name](char section, unsigned d3, unsigned d5) {
    return name("F" + std::string(1, section) + std::to_string(d3) + "_" +
                std::to_string(d5));
  };
  const auto back = [&name](bool ok, char section, unsigned e3,
                            unsigned e5) {
    return name("B" + std::string(1, ok ? 'y' : 'n') + section +
                std::to_string(e3) + "_" + std::to_string(e5));
  };

  // Start: mark cell 0. No prime branch — both residues ride along.
  b.On(start, "0").Go(fwd('v', 0, 0), "A", kRight1);
  b.On(start, "1").Go(fwd('v', 1, 1), "Z", kRight1);
  b.On(start, "$").Go(fwd('w', 0, 0), "D", kRight1);
  b.On(start, std::string(1, B)).Go(kAccept, std::string(1, B), kStay1);

  // Forward scan: accumulate d = digitsum(v) - digitsum(w) mod 3 and
  // mod 5 simultaneously.
  for (unsigned d3 = 0; d3 < kP3; ++d3) {
    for (unsigned d5 = 0; d5 < kP5; ++d5) {
      const int fv = fwd('v', d3, d5);
      const int fw = fwd('w', d3, d5);
      for (char c : {'0', '1'}) {
        const unsigned digit = static_cast<unsigned>(c - '0');
        b.On(fv, std::string(1, c))
            .Go(fwd('v', (d3 + digit) % kP3, (d5 + digit) % kP5),
                std::string(1, c), kRight1);
        b.On(fw, std::string(1, c))
            .Go(fwd('w', (d3 + kP3 - digit) % kP3,
                    (d5 + kP5 - digit) % kP5),
                std::string(1, c), kRight1);
      }
      b.On(fv, "#").Go(fv, "#", kRight1);
      b.On(fw, "#").Go(fw, "#", kRight1);
      b.On(fv, "$").Go(fw, "$", kRight1);
      // Right end: the single reversal. The forward verdict needs the
      // difference to vanish modulo BOTH primes.
      const bool ok = d3 == 0 && d5 == 0;
      b.On(fv, std::string(1, B))
          .Go(back(ok, 'w', 0, 0), std::string(1, B), kLeft1);
      b.On(fw, std::string(1, B))
          .Go(back(ok, 'w', 0, 0), std::string(1, B), kLeft1);
    }
  }

  // Backward verification scan, right to left.
  for (bool ok : {false, true}) {
    for (unsigned e3 = 0; e3 < kP3; ++e3) {
      for (unsigned e5 = 0; e5 < kP5; ++e5) {
        const int bw = back(ok, 'w', e3, e5);
        const int bv = back(ok, 'v', e3, e5);
        for (char c : {'0', '1'}) {
          const unsigned digit = static_cast<unsigned>(c - '0');
          b.On(bw, std::string(1, c))
              .Go(back(ok, 'w', (e3 + kP3 - digit) % kP3,
                       (e5 + kP5 - digit) % kP5),
                  std::string(1, c), kLeft1);
          b.On(bv, std::string(1, c))
              .Go(back(ok, 'v', (e3 + digit) % kP3, (e5 + digit) % kP5),
                  std::string(1, c), kLeft1);
        }
        b.On(bw, "#").Go(bw, "#", kLeft1);
        b.On(bv, "#").Go(bv, "#", kLeft1);
        b.On(bw, "$").Go(bv, "$", kLeft1);
        for (const auto& [marker, digit] :
             std::map<char, unsigned>{{'A', 0}, {'Z', 1}, {'D', 0}}) {
          const bool zero = (e3 + digit) % kP3 == 0 &&
                            (e5 + digit) % kP5 == 0;
          const int verdict = (ok && zero) ? kAccept : kReject;
          const std::string m(1, marker);
          b.On(bw, m).Go(verdict, m, kStay1);
          b.On(bv, m).Go(verdict, m, kStay1);
        }
      }
    }
  }
  return b.Build();
}

MachineSpec Theorem8bGuessVerify() {
  // States: 0 = at a field start (the guessing point), 1 = verifying
  // the guessed field, 2 = skipping an unguessed field.
  const char B = kBlank;
  MachineBuilder b(1, 0);
  b.SetStart(0).AddFinal(kAccept, true).AddFinal(kReject, false);
  for (char c : {'0', '1'}) {
    // The guess: verify this field, or skip it. Ordering puts "verify"
    // first, so choice index 0 is the eager certificate.
    b.On(0, std::string(1, c))
        .Go(1, std::string(1, c), kStay1)
        .Go(2, std::string(1, c), kStay1);
  }
  b.On(0, "#").Go(0, "#", kRight1);  // empty field: nothing to certify
  b.On(0, std::string(1, B)).Go(kReject, std::string(1, B), kStay1);

  b.On(1, "1").Go(1, "1", kRight1);
  b.On(1, "0").Go(kReject, "0", kStay1);  // wrong guess: this run dies
  b.On(1, "#").Go(kAccept, "#", kStay1);
  b.On(1, std::string(1, B)).Go(kAccept, std::string(1, B), kStay1);

  for (char c : {'0', '1'}) {
    b.On(2, std::string(1, c)).Go(2, std::string(1, c), kRight1);
  }
  b.On(2, "#").Go(0, "#", kRight1);
  b.On(2, std::string(1, B)).Go(kReject, std::string(1, B), kStay1);
  return b.Build();
}

}  // namespace rstlab::machine::paper
