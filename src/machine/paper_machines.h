#ifndef RSTLAB_MACHINE_PAPER_MACHINES_H_
#define RSTLAB_MACHINE_PAPER_MACHINES_H_

#include "machine/turing_machine.h"

namespace rstlab::machine {

/// MachineSpec-level witnesses of the paper's algorithmic theorems.
/// Unlike the tape-level implementations in fingerprint/ and nst/,
/// these are explicit transition tables, so the static analyzer in
/// src/check/ can certify their control structure and reversal budget
/// before any run.
namespace paper {

/// The Theorem 8(a) fingerprinting machine, scan-level skeleton.
///
/// Input v$w with v, w over {0, 1, #} ('#' separates fields). The
/// machine nondeterministically picks a prime p from {3, 5} (modelling
/// the random prime choice of Theorem 8(a), step (2)), then:
///   * forward scan: marks cell 0 (so the return scan can find the left
///     end) and accumulates d = (digitsum(v) - digitsum(w)) mod p;
///   * one reversal at the right end;
///   * backward verification scan: independently re-accumulates the
///     same difference e mod p, right to left;
///   * accepts iff d == 0 and e == 0.
///
/// No false negatives: equal digit sums pass for every prime, so every
/// branch accepts — the co-RST acceptance discipline. Exactly one head
/// reversal on the single external tape, hence class co-RST(2, 0, 1);
/// the analyzer certifies the reversal bound statically.
MachineSpec Theorem8aFingerprint();

/// The batched variant of the Theorem 8(a) machine: instead of
/// branching on a prime choice, it runs the product automaton over
/// BOTH primes {3, 5}, carrying the residue pair (d mod 3, d mod 5)
/// through each scan — the machine-level analogue of the batch
/// engine's multi-prime evaluation, where k-fold amplification costs
/// one scan instead of k. Same two-scan shape and markers as
/// `Theorem8aFingerprint`, but deterministic: accepts iff the digit
/// sum difference vanishes mod 3 AND mod 5 on both the forward and
/// backward pass. Class ST(2, 0, 1).
MachineSpec Theorem8aBatchFingerprint();

/// The Theorem 8(b) guess-and-verify machine, scan-level skeleton.
///
/// Input: '#'-separated fields over {0, 1}. The machine guesses, at
/// each field start, whether this field is its certificate; a guessed
/// field is verified to be all ones (accept at its end, reject on any
/// '0'), all other fields are skipped. Accepts iff some run accepts,
/// i.e. iff some field is all ones — one forward scan, zero reversals:
/// NST(1, 0, 1).
MachineSpec Theorem8bGuessVerify();

}  // namespace paper

}  // namespace rstlab::machine

#endif  // RSTLAB_MACHINE_PAPER_MACHINES_H_
