#ifndef RSTLAB_MACHINE_MACHINE_BUILDER_H_
#define RSTLAB_MACHINE_MACHINE_BUILDER_H_

#include <string>
#include <vector>

#include "machine/turing_machine.h"

namespace rstlab::machine {

/// Fluent helper for assembling MachineSpec transition tables.
///
/// Example (one external tape, no internal tapes):
///
///   MachineBuilder b(/*external=*/1, /*internal=*/0);
///   b.SetStart(0).AddFinal(1, /*accepting=*/true);
///   b.On(0, "1").Go(1, "1", {Move::kStay});
///   auto tm = TuringMachine::Create(b.Build());
class MachineBuilder {
 public:
  MachineBuilder(std::size_t num_external_tapes,
                 std::size_t num_internal_tapes);

  /// Sets the start state.
  MachineBuilder& SetStart(int state);

  /// Declares `state` final; accepting iff `accepting`.
  MachineBuilder& AddFinal(int state, bool accepting);

  /// Handle for adding the actions of one (state, symbols) key.
  class Rule {
   public:
    /// Appends an action (successor ordering = insertion order, which is
    /// the ordering Definition 17's choice indexing uses).
    ///
    /// Arity is validated eagerly: a `write` or `moves` vector whose
    /// size differs from the machine's tape count records an RST001
    /// diagnostic on the builder (see `status()`) at the call site,
    /// instead of surfacing as an opaque failure deep inside
    /// TuringMachine stepping.
    Rule& Go(int next_state, const std::string& write,
             const std::vector<Move>& moves);

   private:
    friend class MachineBuilder;
    Rule(MachineBuilder* builder, int state, std::string symbols)
        : builder_(builder), state_(state), symbols_(std::move(symbols)) {}

    MachineBuilder* builder_;
    int state_;
    std::string symbols_;
  };

  /// Starts a rule for reading `symbols` (one char per tape) in `state`.
  /// A wrong-arity `symbols` records an RST002 diagnostic (see
  /// `status()`).
  Rule On(int state, const std::string& symbols);

  /// OK, or the first arity diagnostic recorded by On()/Go(). The
  /// message matches the static analyzer's spelling, e.g.
  /// `error RST001 [state 3, key "0_"]: action write arity 1 / moves
  /// arity 2 != tape count 2`.
  const Status& status() const { return status_; }

  /// Finalizes and returns the spec (even when `status()` is an error;
  /// TuringMachine::Create and the analyzer both re-reject bad arities).
  MachineSpec Build() { return spec_; }

  /// Finalizes with validation: the spec, or the first recorded
  /// diagnostic.
  Result<MachineSpec> BuildChecked() {
    if (!status_.ok()) return status_;
    return spec_;
  }

 private:
  friend class Rule;

  /// Records the first builder diagnostic.
  void RecordError(Status status);

  MachineSpec spec_;
  Status status_;
};

/// Canonical small machines used in tests and the simulation-lemma
/// experiments (E9).
namespace zoo {

/// Deterministic, 1 external tape: accepts iff the input starts with '1'.
MachineSpec FirstSymbolOne();

/// Deterministic, 1 external tape: accepts iff the number of '1's in the
/// input (a 0/1 string) is even. One left-to-right scan.
MachineSpec EvenOnes();

/// Randomized, 1 external tape: ignores the input and accepts with
/// probability 1/2 (one binary branch).
MachineSpec FairCoin();

/// Randomized, 1 external tape: accepts with probability `num/2^k` by
/// flipping k fair coins; num must be <= 2^k.
MachineSpec BiasedCoin(unsigned num, unsigned k);

/// Deterministic, 2 external tapes: input v#w# with v, w over {0,1};
/// copies v to tape 1, rewinds both, then compares v and w symbol by
/// symbol; accepts iff v == w. Performs head reversals on both tapes —
/// a natural subject for the TM -> list-machine simulation.
MachineSpec TwoFieldEquality();

/// Nondeterministic, 1 external tape: guesses one bit; accepts iff the
/// guessed bit equals the first input symbol. Accepts with probability
/// 1/2 on any input starting with '0' or '1'.
MachineSpec GuessFirstBit();

/// Deterministic, 2 external tapes: input v# with v over {0,1}; copies
/// v to tape 1, then walks tape 0 forward from the start while walking
/// tape 1 backward from the end, accepting iff v is a palindrome. Both
/// heads turn mid-content, which exercises the Case 2 (direction-change
/// block split) path of the Lemma 16 simulation.
MachineSpec Palindrome();

/// Deterministic, 1 external tape + 2 internal tapes: accepts iff the
/// input 0/1 string has exactly as many zeros as ones. Maintains two
/// little-endian binary counters on the internal tapes (cell 0 holds a
/// '^' marker, digits from cell 1), incremented per input character in
/// one external scan, then compared digit by digit.
///
/// This is a genuine ST(1, O(log N), 1) algorithm — one sequential scan
/// of external memory, logarithmic internal space — and the only zoo
/// machine with s > 0, so it exercises the internal-memory component of
/// the Lemma 16 state bound 2^{d t^2 r s}.
MachineSpec BalancedZerosOnes();

}  // namespace zoo

}  // namespace rstlab::machine

#endif  // RSTLAB_MACHINE_MACHINE_BUILDER_H_
