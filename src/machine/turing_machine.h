#ifndef RSTLAB_MACHINE_TURING_MACHINE_H_
#define RSTLAB_MACHINE_TURING_MACHINE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/random.h"
#include "util/status.h"

namespace rstlab::machine {

/// The blank symbol of every machine in this module.
inline constexpr char kBlank = '_';

/// Head movement of one step, per tape.
enum class Move : int {
  kLeft = -1,
  kStay = 0,
  kRight = +1,
};

/// One admissible step of the transition relation: successor state, the
/// symbols written under the heads, and the head movements (one entry per
/// tape, externals first).
struct Action {
  int next_state = 0;
  std::string write;        // one char per tape
  std::vector<Move> moves;  // one move per tape
};

/// A multi-tape nondeterministic Turing machine (Definition 23).
///
/// The machine has `num_external_tapes` external tapes (tape 0 is the
/// input tape) followed by `num_internal_tapes` internal tapes; the class
/// bounds (Definition 1) charge head reversals only on external tapes and
/// space only on internal tapes. The transition relation maps
/// (state, symbols-under-heads) to an ordered list of actions; the order
/// defines the successor indexing used by choice sequences
/// (Definition 17).
struct MachineSpec {
  std::size_t num_external_tapes = 1;
  std::size_t num_internal_tapes = 0;
  int start_state = 0;
  std::vector<int> final_states;      // F
  std::vector<int> accepting_states;  // F_acc, a subset of F
  /// Keyed by (state, symbols-under-heads); values are the ordered
  /// admissible actions.
  std::map<std::pair<int, std::string>, std::vector<Action>> transitions;

  /// Total number of tapes t + u.
  std::size_t num_tapes() const {
    return num_external_tapes + num_internal_tapes;
  }
  /// True iff `state` is final.
  bool IsFinal(int state) const;
  /// True iff `state` is accepting.
  bool IsAccepting(int state) const;
};

/// A machine configuration: current state, head positions, and tape
/// contents (externals first). Tapes are one-sided infinite; only the
/// used prefix is stored.
struct Configuration {
  int state = 0;
  std::vector<std::size_t> heads;
  std::vector<std::string> tapes;

  /// The symbol under the head of tape `i`.
  char SymbolUnder(std::size_t i) const;

  bool operator==(const Configuration& other) const = default;
};

/// Per-run resource usage in the units of Definition 1.
struct RunCosts {
  /// rev(rho, i) per external tape.
  std::vector<std::uint64_t> external_reversals;
  /// 1 + sum of external reversals — the measured r-value.
  std::uint64_t scan_bound = 1;
  /// Sum over internal tapes of cells used — the measured s-value.
  std::size_t internal_space = 0;
  /// Number of steps.
  std::size_t length = 0;
};

/// A finite run: final configuration, acceptance, and costs.
struct RunResult {
  Configuration final_config;
  bool halted = false;    // false if max_steps was hit
  bool accepted = false;  // meaningful only when halted
  RunCosts costs;
};

/// Executable wrapper around a MachineSpec.
class TuringMachine {
 public:
  /// Validates and wraps `spec`. Fails if accepting states are not final
  /// or tape arities in actions are inconsistent.
  static Result<TuringMachine> Create(MachineSpec spec);

  /// The underlying specification.
  const MachineSpec& spec() const { return spec_; }

  /// The initial configuration for input `input` on tape 0.
  Configuration InitialConfiguration(const std::string& input) const;

  /// The ordered successor set Next_T(config) (empty iff final or stuck).
  std::vector<Configuration> NextConfigurations(
      const Configuration& config) const;

  /// The maximum branching degree b = max |Next_T(gamma)| over the
  /// transition table (Definition 17).
  std::size_t MaxBranching() const;

  /// Runs deterministically; fails with FailedPrecondition on a
  /// configuration with more than one successor.
  Result<RunResult> RunDeterministic(const std::string& input,
                                     std::size_t max_steps) const;

  /// The run rho_T(w, c) of Definition 17: step i takes the
  /// (c_i mod |Next|)-th successor. If choices run out before a final
  /// state, the run reports halted = false.
  RunResult RunWithChoices(const std::string& input,
                           const std::vector<std::uint64_t>& choices,
                           std::size_t max_steps) const;

  /// Samples a run with each successor chosen uniformly (the randomized
  /// semantics of Section 2).
  RunResult RunRandomized(const std::string& input, Rng& rng,
                          std::size_t max_steps) const;

  /// Exact acceptance probability by exhaustive weighted traversal of the
  /// run tree; every run must halt within `max_steps` (else the result is
  /// a lower bound and `*truncated` is set when provided).
  double AcceptanceProbability(const std::string& input,
                               std::size_t max_steps,
                               bool* truncated = nullptr) const;

 private:
  explicit TuringMachine(MachineSpec spec) : spec_(std::move(spec)) {}

  MachineSpec spec_;
};

/// Lemma 3 validation: every run of an (r, s, t)-bounded machine has
/// length (and hence external space) at most N * 2^{O(r (t + s))}.
/// The constant in the exponent depends only on u, |Q|, |Sigma|;
/// `log2_bound` uses the generous constant 10 so violations indicate
/// real bugs, not constant-tuning.
struct Lemma3Check {
  std::size_t run_length = 0;
  std::size_t external_space = 0;
  double log2_bound = 0.0;
  bool within_bounds = false;
};

/// Evaluates the Lemma 3 bound for a completed run on an input of size
/// `input_size`, using the run's own measured r and s.
Lemma3Check CheckLemma3(const RunResult& run, std::size_t input_size,
                        const MachineSpec& spec);

}  // namespace rstlab::machine

#endif  // RSTLAB_MACHINE_TURING_MACHINE_H_
