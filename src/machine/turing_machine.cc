#include "machine/turing_machine.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace rstlab::machine {

namespace {

/// Mutable per-run accounting shared by the runner variants.
struct CostTracker {
  std::vector<int> directions;  // +1 / -1 per external tape
  RunCosts costs;

  explicit CostTracker(const MachineSpec& spec)
      : directions(spec.num_external_tapes, +1) {
    costs.external_reversals.assign(spec.num_external_tapes, 0);
  }

  void RecordMoves(const MachineSpec& spec, const Configuration& before,
                   const Action& action) {
    for (std::size_t i = 0; i < spec.num_external_tapes; ++i) {
      int dir = 0;
      if (action.moves[i] == Move::kRight) dir = +1;
      if (action.moves[i] == Move::kLeft && before.heads[i] > 0) dir = -1;
      if (dir != 0 && dir != directions[i]) {
        ++costs.external_reversals[i];
        directions[i] = dir;
      }
    }
    ++costs.length;
  }

  void Finish(const MachineSpec& spec, const Configuration& final_config) {
    costs.scan_bound = 1;
    for (std::uint64_t rev : costs.external_reversals) {
      costs.scan_bound += rev;
    }
    costs.internal_space = 0;
    for (std::size_t i = spec.num_external_tapes; i < spec.num_tapes();
         ++i) {
      costs.internal_space += final_config.tapes[i].size();
    }
  }
};

Configuration ApplyAction(const MachineSpec& spec,
                          const Configuration& config,
                          const Action& action) {
  Configuration next = config;
  next.state = action.next_state;
  for (std::size_t i = 0; i < spec.num_tapes(); ++i) {
    if (next.heads[i] >= next.tapes[i].size()) {
      next.tapes[i].resize(next.heads[i] + 1, kBlank);
    }
    next.tapes[i][next.heads[i]] = action.write[i];
    switch (action.moves[i]) {
      case Move::kRight:
        ++next.heads[i];
        if (next.heads[i] >= next.tapes[i].size()) {
          next.tapes[i].resize(next.heads[i] + 1, kBlank);
        }
        break;
      case Move::kLeft:
        if (next.heads[i] > 0) --next.heads[i];
        break;
      case Move::kStay:
        break;
    }
  }
  return next;
}

}  // namespace

bool MachineSpec::IsFinal(int state) const {
  return std::find(final_states.begin(), final_states.end(), state) !=
         final_states.end();
}

bool MachineSpec::IsAccepting(int state) const {
  return std::find(accepting_states.begin(), accepting_states.end(),
                   state) != accepting_states.end();
}

char Configuration::SymbolUnder(std::size_t i) const {
  if (heads[i] >= tapes[i].size()) return kBlank;
  return tapes[i][heads[i]];
}

Result<TuringMachine> TuringMachine::Create(MachineSpec spec) {
  for (int q : spec.accepting_states) {
    if (!spec.IsFinal(q)) {
      return Status::InvalidArgument(
          "accepting state is not final: " + std::to_string(q));
    }
  }
  for (const auto& [key, actions] : spec.transitions) {
    if (key.second.size() != spec.num_tapes()) {
      return Status::InvalidArgument(
          "transition key symbol arity mismatch");
    }
    if (spec.IsFinal(key.first)) {
      return Status::InvalidArgument(
          "transition out of final state " + std::to_string(key.first));
    }
    for (const Action& a : actions) {
      if (a.write.size() != spec.num_tapes() ||
          a.moves.size() != spec.num_tapes()) {
        return Status::InvalidArgument("action arity mismatch");
      }
    }
  }
  return TuringMachine(std::move(spec));
}

Configuration TuringMachine::InitialConfiguration(
    const std::string& input) const {
  Configuration config;
  config.state = spec_.start_state;
  config.heads.assign(spec_.num_tapes(), 0);
  config.tapes.assign(spec_.num_tapes(), std::string(1, kBlank));
  config.tapes[0] = input.empty() ? std::string(1, kBlank) : input;
  return config;
}

std::vector<Configuration> TuringMachine::NextConfigurations(
    const Configuration& config) const {
  std::vector<Configuration> out;
  if (spec_.IsFinal(config.state)) return out;
  std::string symbols(spec_.num_tapes(), kBlank);
  for (std::size_t i = 0; i < spec_.num_tapes(); ++i) {
    symbols[i] = config.SymbolUnder(i);
  }
  auto it = spec_.transitions.find({config.state, symbols});
  if (it == spec_.transitions.end()) return out;
  out.reserve(it->second.size());
  for (const Action& a : it->second) {
    out.push_back(ApplyAction(spec_, config, a));
  }
  return out;
}

std::size_t TuringMachine::MaxBranching() const {
  std::size_t b = 1;
  for (const auto& [key, actions] : spec_.transitions) {
    b = std::max(b, actions.size());
  }
  return b;
}

namespace {

/// Finds the ordered actions applicable to `config`, or nullptr.
const std::vector<Action>* ActionsFor(const MachineSpec& spec,
                                      const Configuration& config) {
  if (spec.IsFinal(config.state)) return nullptr;
  std::string symbols(spec.num_tapes(), kBlank);
  for (std::size_t i = 0; i < spec.num_tapes(); ++i) {
    symbols[i] = config.SymbolUnder(i);
  }
  auto it = spec.transitions.find({config.state, symbols});
  if (it == spec.transitions.end() || it->second.empty()) return nullptr;
  return &it->second;
}

}  // namespace

Result<RunResult> TuringMachine::RunDeterministic(
    const std::string& input, std::size_t max_steps) const {
  RunResult result;
  Configuration config = InitialConfiguration(input);
  CostTracker tracker(spec_);
  for (std::size_t step = 0; step < max_steps; ++step) {
    const std::vector<Action>* actions = ActionsFor(spec_, config);
    if (actions == nullptr) {
      result.halted = true;
      break;
    }
    if (actions->size() != 1) {
      return Status::FailedPrecondition(
          "machine is nondeterministic at step " + std::to_string(step));
    }
    tracker.RecordMoves(spec_, config, (*actions)[0]);
    config = ApplyAction(spec_, config, (*actions)[0]);
  }
  if (!result.halted && ActionsFor(spec_, config) == nullptr) {
    result.halted = true;
  }
  result.accepted = result.halted && spec_.IsAccepting(config.state);
  tracker.Finish(spec_, config);
  result.costs = tracker.costs;
  result.final_config = std::move(config);
  return result;
}

RunResult TuringMachine::RunWithChoices(
    const std::string& input, const std::vector<std::uint64_t>& choices,
    std::size_t max_steps) const {
  RunResult result;
  Configuration config = InitialConfiguration(input);
  CostTracker tracker(spec_);
  std::size_t step = 0;
  while (step < max_steps) {
    const std::vector<Action>* actions = ActionsFor(spec_, config);
    if (actions == nullptr) {
      result.halted = true;
      break;
    }
    if (step >= choices.size()) break;  // out of choices: not halted
    const Action& a =
        (*actions)[static_cast<std::size_t>(choices[step] %
                                            actions->size())];
    tracker.RecordMoves(spec_, config, a);
    config = ApplyAction(spec_, config, a);
    ++step;
  }
  if (!result.halted && ActionsFor(spec_, config) == nullptr) {
    result.halted = true;
  }
  result.accepted = result.halted && spec_.IsAccepting(config.state);
  tracker.Finish(spec_, config);
  result.costs = tracker.costs;
  result.final_config = std::move(config);
  return result;
}

RunResult TuringMachine::RunRandomized(const std::string& input, Rng& rng,
                                       std::size_t max_steps) const {
  RunResult result;
  Configuration config = InitialConfiguration(input);
  CostTracker tracker(spec_);
  for (std::size_t step = 0; step < max_steps; ++step) {
    const std::vector<Action>* actions = ActionsFor(spec_, config);
    if (actions == nullptr) {
      result.halted = true;
      break;
    }
    const Action& a = (*actions)[static_cast<std::size_t>(
        rng.UniformBelow(actions->size()))];
    tracker.RecordMoves(spec_, config, a);
    config = ApplyAction(spec_, config, a);
  }
  if (!result.halted && ActionsFor(spec_, config) == nullptr) {
    result.halted = true;
  }
  result.accepted = result.halted && spec_.IsAccepting(config.state);
  tracker.Finish(spec_, config);
  result.costs = tracker.costs;
  result.final_config = std::move(config);
  return result;
}

namespace {

double AcceptanceProbabilityRec(const TuringMachine& tm,
                                const Configuration& config,
                                std::size_t steps_left, bool* truncated) {
  if (tm.spec().IsFinal(config.state)) {
    return tm.spec().IsAccepting(config.state) ? 1.0 : 0.0;
  }
  std::vector<Configuration> next = tm.NextConfigurations(config);
  if (next.empty()) return 0.0;  // stuck, rejecting by convention
  if (steps_left == 0) {
    if (truncated != nullptr) *truncated = true;
    return 0.0;
  }
  double p = 0.0;
  const double w = 1.0 / static_cast<double>(next.size());
  for (const Configuration& succ : next) {
    p += w * AcceptanceProbabilityRec(tm, succ, steps_left - 1, truncated);
  }
  return p;
}

}  // namespace

double TuringMachine::AcceptanceProbability(const std::string& input,
                                            std::size_t max_steps,
                                            bool* truncated) const {
  if (truncated != nullptr) *truncated = false;
  return AcceptanceProbabilityRec(*this, InitialConfiguration(input),
                                  max_steps, truncated);
}

Lemma3Check CheckLemma3(const RunResult& run, std::size_t input_size,
                        const MachineSpec& spec) {
  Lemma3Check check;
  check.run_length = run.costs.length;
  for (std::size_t i = 0; i < spec.num_external_tapes; ++i) {
    check.external_space += run.final_config.tapes[i].size();
  }
  const double n = static_cast<double>(std::max<std::size_t>(1, input_size));
  const double r = static_cast<double>(run.costs.scan_bound);
  const double s = static_cast<double>(run.costs.internal_space);
  const double t = static_cast<double>(spec.num_external_tapes);
  check.log2_bound = std::log2(n) + 10.0 * r * (t + s + 1.0);
  const double log2_len =
      std::log2(static_cast<double>(std::max<std::size_t>(1,
                                                          check.run_length)));
  const double log2_space = std::log2(static_cast<double>(
      std::max<std::size_t>(1, check.external_space)));
  check.within_bounds =
      log2_len <= check.log2_bound && log2_space <= check.log2_bound;
  return check;
}

}  // namespace rstlab::machine
