#include "query/relalg.h"

#include <algorithm>
#include <cassert>
#include <optional>

#include "stmodel/internal_arena.h"
#include "stmodel/tape_io.h"
#include "sorting/merge_sort.h"

namespace rstlab::query {

namespace {

RelAlgExprPtr MakeBinary(RelAlgExpr::Op op, RelAlgExprPtr a,
                         RelAlgExprPtr b) {
  auto expr = std::make_shared<RelAlgExpr>();
  expr->op = op;
  expr->children = {std::move(a), std::move(b)};
  return expr;
}

}  // namespace

RelAlgExprPtr Rel(std::string name) {
  auto expr = std::make_shared<RelAlgExpr>();
  expr->op = RelAlgExpr::Op::kRelation;
  expr->relation_name = std::move(name);
  return expr;
}

RelAlgExprPtr Union(RelAlgExprPtr a, RelAlgExprPtr b) {
  return MakeBinary(RelAlgExpr::Op::kUnion, std::move(a), std::move(b));
}

RelAlgExprPtr Difference(RelAlgExprPtr a, RelAlgExprPtr b) {
  return MakeBinary(RelAlgExpr::Op::kDifference, std::move(a),
                    std::move(b));
}

RelAlgExprPtr Intersection(RelAlgExprPtr a, RelAlgExprPtr b) {
  return MakeBinary(RelAlgExpr::Op::kIntersection, std::move(a),
                    std::move(b));
}

RelAlgExprPtr SelectEqConst(RelAlgExprPtr a, std::size_t column,
                            std::string constant) {
  auto expr = std::make_shared<RelAlgExpr>();
  expr->op = RelAlgExpr::Op::kSelection;
  expr->children = {std::move(a)};
  expr->lhs_column = column;
  expr->rhs_is_column = false;
  expr->rhs_constant = std::move(constant);
  return expr;
}

RelAlgExprPtr SelectEqColumn(RelAlgExprPtr a, std::size_t lhs,
                             std::size_t rhs) {
  auto expr = std::make_shared<RelAlgExpr>();
  expr->op = RelAlgExpr::Op::kSelection;
  expr->children = {std::move(a)};
  expr->lhs_column = lhs;
  expr->rhs_is_column = true;
  expr->rhs_column = rhs;
  return expr;
}

RelAlgExprPtr Project(RelAlgExprPtr a, std::vector<std::size_t> columns) {
  auto expr = std::make_shared<RelAlgExpr>();
  expr->op = RelAlgExpr::Op::kProjection;
  expr->children = {std::move(a)};
  expr->columns = std::move(columns);
  return expr;
}

RelAlgExprPtr Product(RelAlgExprPtr a, RelAlgExprPtr b) {
  return MakeBinary(RelAlgExpr::Op::kProduct, std::move(a), std::move(b));
}

RelAlgExprPtr EquiJoin(
    RelAlgExprPtr a, RelAlgExprPtr b, std::size_t a_arity,
    std::vector<std::pair<std::size_t, std::size_t>> on) {
  RelAlgExprPtr out = Product(std::move(a), std::move(b));
  for (const auto& [left, right] : on) {
    out = SelectEqColumn(std::move(out), left, a_arity + right);
  }
  return out;
}

RelAlgExprPtr SymmetricDifferenceQuery(std::string r1, std::string r2) {
  return Union(Difference(Rel(r1), Rel(r2)), Difference(Rel(r2), Rel(r1)));
}

// ---------------------------------------------------------------------
// Reference evaluator
// ---------------------------------------------------------------------

Result<Relation> EvaluateInMemory(
    const RelAlgExprPtr& expr,
    const std::map<std::string, Relation>& database) {
  switch (expr->op) {
    case RelAlgExpr::Op::kRelation: {
      auto it = database.find(expr->relation_name);
      if (it == database.end()) {
        return Status::NotFound("relation " + expr->relation_name);
      }
      Relation r = it->second;
      r.Normalize();
      return r;
    }
    case RelAlgExpr::Op::kUnion:
    case RelAlgExpr::Op::kDifference:
    case RelAlgExpr::Op::kIntersection:
    case RelAlgExpr::Op::kProduct: {
      Result<Relation> a = EvaluateInMemory(expr->children[0], database);
      if (!a.ok()) return a;
      Result<Relation> b = EvaluateInMemory(expr->children[1], database);
      if (!b.ok()) return b;
      Relation out;
      out.name = "result";
      switch (expr->op) {
        case RelAlgExpr::Op::kUnion:
          out = a.value();
          out.arity = std::max(a.value().arity, b.value().arity);
          for (const Tuple& t : b.value().tuples) out.Insert(t);
          break;
        case RelAlgExpr::Op::kDifference:
          out.arity = a.value().arity;
          for (const Tuple& t : a.value().tuples) {
            if (!b.value().Contains(t)) out.Insert(t);
          }
          break;
        case RelAlgExpr::Op::kIntersection:
          out.arity = a.value().arity;
          for (const Tuple& t : a.value().tuples) {
            if (b.value().Contains(t)) out.Insert(t);
          }
          break;
        case RelAlgExpr::Op::kProduct:
          out.arity = a.value().arity + b.value().arity;
          for (const Tuple& ta : a.value().tuples) {
            for (const Tuple& tb : b.value().tuples) {
              Tuple combined = ta;
              combined.insert(combined.end(), tb.begin(), tb.end());
              out.Insert(combined);
            }
          }
          break;
        default:
          break;
      }
      out.Normalize();
      return out;
    }
    case RelAlgExpr::Op::kSelection: {
      Result<Relation> a = EvaluateInMemory(expr->children[0], database);
      if (!a.ok()) return a;
      Relation out;
      out.name = "result";
      out.arity = a.value().arity;
      for (const Tuple& t : a.value().tuples) {
        if (expr->lhs_column >= t.size()) continue;
        const std::string& lhs = t[expr->lhs_column];
        bool keep;
        if (expr->rhs_is_column) {
          keep = expr->rhs_column < t.size() &&
                 lhs == t[expr->rhs_column];
        } else {
          keep = lhs == expr->rhs_constant;
        }
        if (keep) out.Insert(t);
      }
      return out;
    }
    case RelAlgExpr::Op::kProjection: {
      Result<Relation> a = EvaluateInMemory(expr->children[0], database);
      if (!a.ok()) return a;
      Relation out;
      out.name = "result";
      out.arity = expr->columns.size();
      for (const Tuple& t : a.value().tuples) {
        Tuple projected;
        for (std::size_t c : expr->columns) {
          projected.push_back(c < t.size() ? t[c] : "");
        }
        out.Insert(projected);
      }
      out.Normalize();
      return out;
    }
  }
  return Status::Internal("unknown operator");
}

// ---------------------------------------------------------------------
// Streaming evaluator
// ---------------------------------------------------------------------

std::string EncodeDatabaseStream(
    const std::map<std::string, Relation>& database) {
  std::string out;
  for (const auto& [name, relation] : database) {
    for (const Tuple& tuple : relation.tuples) {
      out += name;
      out += ',';
      out += EncodeTuple(tuple);
      out += stmodel::kFieldSeparator;
    }
  }
  return out;
}

namespace {

constexpr std::size_t kInputTape = 0;
constexpr std::size_t kStackTape = 1;
constexpr std::size_t kOperandA = 2;
constexpr std::size_t kOperandB = 3;
constexpr std::size_t kSortAux1 = 4;
constexpr std::size_t kSortAux2 = 5;

/// One materialized intermediate result: `count` fields starting at cell
/// `start` of the stack tape. (Per-query-constant bookkeeping, i.e. part
/// of the machine's finite control, not of its metered memory.)
struct Segment {
  std::size_t start = 0;
  std::size_t count = 0;
};

/// The streaming evaluation engine; one instance per EvaluateOnTapes
/// call.
class TapeEvaluator {
 public:
  explicit TapeEvaluator(stmodel::StContext& ctx)
      : ctx_(ctx),
        buffer_bits_(ctx.arena().Allocate(0)) {}

  Result<Relation> Evaluate(const RelAlgExprPtr& expr) {
    Result<Segment> seg = Eval(expr);
    if (!seg.ok()) return seg.status();
    // Read the final segment back.
    tape::Tape& stack = ctx_.tape(kStackTape);
    stack.Seek(seg.value().start);
    Relation out = ReadRelationFromTape(stack, "result",
                                        seg.value().count);
    return out;
  }

 private:
  /// Accounts one more host-buffered byte-width against the arena.
  void MeterBuffer(std::size_t bytes) {
    max_buffered_ = std::max(max_buffered_, bytes);
    buffer_bits_.Resize(8 * max_buffered_);
  }

  void AppendField(tape::Tape& t, const std::string& payload) {
    stmodel::WriteString(t, payload);
    t.Write(stmodel::kFieldSeparator);
    t.MoveRight();
  }

  /// Appends `payload` to the stack at the logical end.
  void PushField(const std::string& payload) {
    tape::Tape& stack = ctx_.tape(kStackTape);
    stack.Seek(write_pos_);
    AppendField(stack, payload);
    write_pos_ = stack.head();
  }

  /// Copies `count` fields from the stack segment at `start` onto
  /// `dst_tape` (from cell 0), terminated with a blank so the sorter
  /// sees exactly these fields. Returns the number of copied fields.
  void CopySegmentTo(const Segment& seg, std::size_t dst_tape) {
    tape::Tape& stack = ctx_.tape(kStackTape);
    tape::Tape& dst = ctx_.tape(dst_tape);
    stack.Seek(seg.start);
    dst.Seek(0);
    for (std::size_t i = 0; i < seg.count; ++i) {
      stmodel::CopyField(stack, dst);
    }
    dst.Write(tape::kBlank);
  }

  /// Pops segments (logical stack shrink): rewinds the write position.
  void PopTo(std::size_t position) { write_pos_ = position; }

  Segment BeginSegment() const { return Segment{write_pos_, 0}; }

  /// Reads the next field from `t`, metering the buffer.
  std::string NextField(tape::Tape& t) {
    std::string f = stmodel::ReadField(t);
    MeterBuffer(f.size());
    return f;
  }

  Result<Segment> Eval(const RelAlgExprPtr& expr) {
    switch (expr->op) {
      case RelAlgExpr::Op::kRelation:
        return EvalLeaf(expr);
      case RelAlgExpr::Op::kUnion:
        return EvalUnion(expr);
      case RelAlgExpr::Op::kDifference:
      case RelAlgExpr::Op::kIntersection:
        return EvalMergeOp(expr);
      case RelAlgExpr::Op::kSelection:
        return EvalSelection(expr);
      case RelAlgExpr::Op::kProjection:
        return EvalProjection(expr);
      case RelAlgExpr::Op::kProduct:
        return EvalProduct(expr);
    }
    return Status::Internal("unknown operator");
  }

  Result<Segment> EvalLeaf(const RelAlgExprPtr& expr) {
    // One scan of the input stream, filtering on the relation-name
    // prefix.
    tape::Tape& input = ctx_.tape(kInputTape);
    stmodel::Rewind(input);
    Segment seg = BeginSegment();
    const std::string prefix = expr->relation_name + ",";
    while (!stmodel::AtEnd(input)) {
      std::string field = NextField(input);
      if (field.size() > prefix.size() &&
          field.compare(0, prefix.size(), prefix) == 0) {
        PushField(field.substr(prefix.size()));
        ++seg.count;
      }
    }
    return seg;
  }

  /// Sorts the `count` fields at the start of `tape_index` (terminated
  /// with a blank by CopySegmentTo).
  Status SortOperand(std::size_t tape_index) {
    return sorting::SortFieldsOnTapes(ctx_, tape_index, kSortAux1,
                                      kSortAux2);
  }

  Result<Segment> EvalUnion(const RelAlgExprPtr& expr) {
    Result<Segment> a = Eval(expr->children[0]);
    if (!a.ok()) return a;
    Result<Segment> b = Eval(expr->children[1]);
    if (!b.ok()) return b;
    // Concatenate both onto operand A, sort, de-duplicate back onto the
    // stack in place of the operands.
    tape::Tape& stack = ctx_.tape(kStackTape);
    tape::Tape& opa = ctx_.tape(kOperandA);
    stack.Seek(a.value().start);
    opa.Seek(0);
    const std::size_t total = a.value().count + b.value().count;
    for (std::size_t i = 0; i < total; ++i) {
      stmodel::CopyField(stack, opa);
    }
    opa.Write(tape::kBlank);
    RSTLAB_RETURN_IF_ERROR(SortOperand(kOperandA));
    PopTo(a.value().start);
    return DedupAppend(kOperandA, total);
  }

  /// Appends the sorted fields of `tape_index` to the stack, collapsing
  /// duplicates.
  Result<Segment> DedupAppend(std::size_t tape_index, std::size_t count) {
    tape::Tape& src = ctx_.tape(tape_index);
    src.Seek(0);
    Segment seg = BeginSegment();
    std::optional<std::string> previous;
    for (std::size_t i = 0; i < count; ++i) {
      std::string field = NextField(src);
      if (!previous.has_value() || field != *previous) {
        PushField(field);
        ++seg.count;
        previous = std::move(field);
      }
    }
    return seg;
  }

  Result<Segment> EvalMergeOp(const RelAlgExprPtr& expr) {
    const bool difference = expr->op == RelAlgExpr::Op::kDifference;
    Result<Segment> a = Eval(expr->children[0]);
    if (!a.ok()) return a;
    Result<Segment> b = Eval(expr->children[1]);
    if (!b.ok()) return b;
    CopySegmentTo(a.value(), kOperandA);
    CopySegmentTo(b.value(), kOperandB);
    RSTLAB_RETURN_IF_ERROR(SortOperand(kOperandA));
    RSTLAB_RETURN_IF_ERROR(SortOperand(kOperandB));
    PopTo(a.value().start);

    // Sorted merge: emit A-tuples (de-duplicated) depending on presence
    // in B.
    tape::Tape& opa = ctx_.tape(kOperandA);
    tape::Tape& opb = ctx_.tape(kOperandB);
    opa.Seek(0);
    opb.Seek(0);
    Segment seg = BeginSegment();
    std::size_t remaining_b = b.value().count;
    std::optional<std::string> cur_b;
    std::optional<std::string> previous_a;
    for (std::size_t i = 0; i < a.value().count; ++i) {
      std::string field = NextField(opa);
      if (previous_a.has_value() && field == *previous_a) continue;
      previous_a = field;
      // Advance B to the first value >= field.
      while ((!cur_b.has_value() || *cur_b < field) && remaining_b > 0) {
        cur_b = NextField(opb);
        --remaining_b;
      }
      const bool in_b = cur_b.has_value() && *cur_b == field;
      if (in_b != difference) {
        PushField(field);
        ++seg.count;
      }
    }
    return seg;
  }

  Result<Segment> EvalSelection(const RelAlgExprPtr& expr) {
    Result<Segment> a = Eval(expr->children[0]);
    if (!a.ok()) return a;
    CopySegmentTo(a.value(), kOperandA);
    PopTo(a.value().start);
    tape::Tape& opa = ctx_.tape(kOperandA);
    opa.Seek(0);
    Segment seg = BeginSegment();
    for (std::size_t i = 0; i < a.value().count; ++i) {
      std::string field = NextField(opa);
      Tuple tuple = DecodeTuple(field);
      if (expr->lhs_column >= tuple.size()) continue;
      const std::string& lhs = tuple[expr->lhs_column];
      const bool keep =
          expr->rhs_is_column
              ? (expr->rhs_column < tuple.size() &&
                 lhs == tuple[expr->rhs_column])
              : lhs == expr->rhs_constant;
      if (keep) {
        PushField(field);
        ++seg.count;
      }
    }
    return seg;
  }

  Result<Segment> EvalProjection(const RelAlgExprPtr& expr) {
    Result<Segment> a = Eval(expr->children[0]);
    if (!a.ok()) return a;
    CopySegmentTo(a.value(), kOperandA);
    PopTo(a.value().start);
    // Project A onto operand B, then sort + dedup.
    tape::Tape& opa = ctx_.tape(kOperandA);
    tape::Tape& opb = ctx_.tape(kOperandB);
    opa.Seek(0);
    opb.Seek(0);
    for (std::size_t i = 0; i < a.value().count; ++i) {
      Tuple tuple = DecodeTuple(NextField(opa));
      Tuple projected;
      for (std::size_t c : expr->columns) {
        projected.push_back(c < tuple.size() ? tuple[c] : "");
      }
      AppendField(opb, EncodeTuple(projected));
    }
    opb.Write(tape::kBlank);
    RSTLAB_RETURN_IF_ERROR(SortOperand(kOperandB));
    return DedupAppend(kOperandB, a.value().count);
  }

  Result<Segment> EvalProduct(const RelAlgExprPtr& expr) {
    Result<Segment> a = Eval(expr->children[0]);
    if (!a.ok()) return a;
    Result<Segment> b = Eval(expr->children[1]);
    if (!b.ok()) return b;
    CopySegmentTo(a.value(), kOperandA);
    CopySegmentTo(b.value(), kOperandB);
    PopTo(a.value().start);
    if (a.value().count == 0 || b.value().count == 0) {
      return BeginSegment();
    }

    // Replicate operand B until there are >= |A| copies, by repeated
    // doubling between the two aux tapes: O(log |A|) passes.
    std::size_t copies = 1;
    std::size_t cur = kOperandB;
    std::size_t other = kSortAux1;
    while (copies < a.value().count) {
      tape::Tape& src = ctx_.tape(cur);
      tape::Tape& dst = ctx_.tape(other);
      dst.Seek(0);
      for (int pass = 0; pass < 2; ++pass) {
        src.Seek(0);
        for (std::size_t i = 0; i < copies * b.value().count; ++i) {
          stmodel::CopyField(src, dst);
        }
      }
      copies *= 2;
      std::swap(cur, other);
    }

    // Pairing pass: replica i of B is combined with tuple i of A.
    tape::Tape& opa = ctx_.tape(kOperandA);
    tape::Tape& replicas = ctx_.tape(cur);
    opa.Seek(0);
    replicas.Seek(0);
    Segment seg = BeginSegment();
    for (std::size_t i = 0; i < a.value().count; ++i) {
      std::string a_field = NextField(opa);
      for (std::size_t j = 0; j < b.value().count; ++j) {
        std::string b_field = NextField(replicas);
        PushField(a_field + "," + b_field);
        ++seg.count;
      }
    }
    return seg;
  }

  stmodel::StContext& ctx_;
  stmodel::InternalArena::Allocation buffer_bits_;
  std::size_t max_buffered_ = 0;
  std::size_t write_pos_ = 0;
};

}  // namespace

Result<Relation> EvaluateOnTapes(const RelAlgExprPtr& expr,
                                 stmodel::StContext& ctx) {
  if (ctx.num_tapes() < kRelAlgTapes) {
    return Status::InvalidArgument(
        "streaming evaluator needs 6 external tapes");
  }
  TapeEvaluator evaluator(ctx);
  return evaluator.Evaluate(expr);
}

}  // namespace rstlab::query
