#include "query/xml_reduction.h"

#include <utility>

#include "query/xml.h"
#include "query/xpath.h"

namespace rstlab::query {

bool PaperXPathSelects(const problems::Instance& instance) {
  const XmlDocument doc = EncodeSetInstanceAsXml(instance);
  return FilterMatches(*doc, PaperXPathQuery());
}

FilterOracle ModelFilterOracle(double false_accept) {
  return [false_accept](const problems::Instance& instance,
                        Rng& rng) -> bool {
    if (PaperXPathSelects(instance)) return true;  // property (1)
    return rng.Bernoulli(false_accept);            // property (2)
  };
}

bool TTildeAcceptsSetEquality(const problems::Instance& instance,
                              const FilterOracle& oracle, Rng& rng) {
  problems::Instance swapped;
  swapped.first = instance.second;
  swapped.second = instance.first;
  const bool run1 = oracle(instance, rng);
  const bool run2 = oracle(swapped, rng);
  return !run1 && !run2;
}

bool BoostedTTildeAccepts(const problems::Instance& instance,
                          const FilterOracle& oracle, Rng& rng,
                          std::size_t rounds) {
  for (std::size_t i = 0; i < rounds; ++i) {
    if (TTildeAcceptsSetEquality(instance, oracle, rng)) return true;
  }
  return false;
}

}  // namespace rstlab::query
