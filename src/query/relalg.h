#ifndef RSTLAB_QUERY_RELALG_H_
#define RSTLAB_QUERY_RELALG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "query/relation.h"
#include "stmodel/st_context.h"
#include "util/status.h"

namespace rstlab::query {

/// Relational algebra expressions (set semantics).
struct RelAlgExpr;
using RelAlgExprPtr = std::shared_ptr<const RelAlgExpr>;

struct RelAlgExpr {
  enum class Op {
    kRelation,      // a named input relation
    kUnion,         // A ∪ B
    kDifference,    // A − B
    kIntersection,  // A ∩ B
    kSelection,     // σ_{col = const | col = col}(A)
    kProjection,    // π_{cols}(A), duplicates removed
    kProduct,       // A × B
  };

  Op op = Op::kRelation;
  std::string relation_name;            // kRelation
  std::vector<RelAlgExprPtr> children;  // operands

  // kSelection
  std::size_t lhs_column = 0;
  bool rhs_is_column = false;
  std::size_t rhs_column = 0;
  std::string rhs_constant;

  // kProjection
  std::vector<std::size_t> columns;
};

/// Expression factories.
RelAlgExprPtr Rel(std::string name);
RelAlgExprPtr Union(RelAlgExprPtr a, RelAlgExprPtr b);
RelAlgExprPtr Difference(RelAlgExprPtr a, RelAlgExprPtr b);
RelAlgExprPtr Intersection(RelAlgExprPtr a, RelAlgExprPtr b);
RelAlgExprPtr SelectEqConst(RelAlgExprPtr a, std::size_t column,
                            std::string constant);
RelAlgExprPtr SelectEqColumn(RelAlgExprPtr a, std::size_t lhs,
                             std::size_t rhs);
RelAlgExprPtr Project(RelAlgExprPtr a, std::vector<std::size_t> columns);
RelAlgExprPtr Product(RelAlgExprPtr a, RelAlgExprPtr b);

/// Derived combinator: equi-join of `a` (arity `a_arity`) with `b` on
/// the column pairs `on` (left column, right column) — compiled to
/// Product followed by column-equality selections, so it inherits the
/// streaming evaluator's O(log N)-scan profile. Join conditions address
/// b's columns pre-offset; the result keeps all columns of both sides.
RelAlgExprPtr EquiJoin(
    RelAlgExprPtr a, RelAlgExprPtr b, std::size_t a_arity,
    std::vector<std::pair<std::size_t, std::size_t>> on);

/// The query of Theorem 11(b): Q' = (R1 − R2) ∪ (R2 − R1), whose result
/// is empty iff R1 = R2 — evaluating it decides SET-EQUALITY.
RelAlgExprPtr SymmetricDifferenceQuery(std::string r1 = "R1",
                                       std::string r2 = "R2");

/// Reference evaluator over in-memory relations.
Result<Relation> EvaluateInMemory(
    const RelAlgExprPtr& expr,
    const std::map<std::string, Relation>& database);

/// Number of external tapes the streaming evaluator needs.
inline constexpr std::size_t kRelAlgTapes = 6;

/// Encodes a database as the input tuple stream of Theorem 11: one
/// '#'-terminated field "name,v1,v2,..." per tuple.
std::string EncodeDatabaseStream(
    const std::map<std::string, Relation>& database);

/// The streaming evaluator — the upper-bound side of Theorem 11(a).
///
/// Evaluates `expr` over the tuple stream loaded on tape 0 of `ctx`
/// using only sequential scans and external merge sorts: leaves filter
/// the stream, set operations sort-and-merge, projections sort to
/// de-duplicate, and products replicate the inner operand by repeated
/// doubling (O(log N) scans) before a single pairing pass. The measured
/// resource profile is r(N) = c_Q * log N scans on a constant number of
/// tapes, with internal memory O(max tuple bytes + log N) for the merge
/// comparison buffers (see sorting/merge_sort.h for the Chen-Yap
/// O(1)-space remark).
///
/// Returns the query result (also left as the final stack segment).
Result<Relation> EvaluateOnTapes(const RelAlgExprPtr& expr,
                                 stmodel::StContext& ctx);

}  // namespace rstlab::query

#endif  // RSTLAB_QUERY_RELALG_H_
