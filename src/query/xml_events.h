#ifndef RSTLAB_QUERY_XML_EVENTS_H_
#define RSTLAB_QUERY_XML_EVENTS_H_

#include <cstddef>
#include <string>

#include "stmodel/internal_arena.h"
#include "tape/tape.h"
#include "util/status.h"

namespace rstlab::query {

/// One event of the streaming XML tokenizer.
enum class XmlEventKind {
  kStartTag,  // <name>
  kEndTag,    // </name>
  kText,      // a maximal run of character data between tags
  kEndOfInput,
};

struct XmlEvent {
  XmlEventKind kind = XmlEventKind::kEndOfInput;
  /// Tag name (without the '/' for kEndTag) or the text run.
  std::string content;
};

/// Pull tokenizer over a serialized XML document on a tape: the event
/// parser underneath the streaming Theorem 12/13 pipelines and the
/// query engine's XML axis operators.
///
/// The reader consumes the tape strictly left to right and reads every
/// cell exactly once (one symbol of lookahead is held in internal
/// memory, never re-read from the tape) — the property the
/// `CountingStorage` regression tests pin, since a re-read would
/// misreport per-scan costs in the obs trace and the extmem cache
/// statistics. Internal state is one tag/text buffer, metered against
/// the arena at 8 bits per character of the longest buffered run.
class XmlEventReader {
 public:
  /// Reads from `t` starting at the current head position. Tag names
  /// longer than `max_tag_len` payload characters are rejected (the
  /// Section 4 schema's longest tag is "/instance").
  XmlEventReader(tape::Tape& t, stmodel::InternalArena& arena,
                 std::size_t max_tag_len = 16);

  /// The next event. After kEndOfInput every further call returns
  /// kEndOfInput without touching the tape.
  Result<XmlEvent> Next();

 private:
  /// One cell: the pushed-back symbol if any, else a fresh tape read.
  char TakeSymbol();

  tape::Tape& tape_;
  stmodel::InternalArena::Allocation buffer_bits_;
  std::size_t max_tag_len_;
  std::size_t longest_buffered_ = 0;
  char lookahead_ = 0;
  bool has_lookahead_ = false;
  bool done_ = false;
};

}  // namespace rstlab::query

#endif  // RSTLAB_QUERY_XML_EVENTS_H_
