#ifndef RSTLAB_QUERY_XML_H_
#define RSTLAB_QUERY_XML_H_

#include <memory>
#include <string>
#include <vector>

#include "problems/instance.h"
#include "util/status.h"

namespace rstlab::query {

/// A node of a minimal XML document model: element nodes with a name,
/// ordered element children and (for leaves) text content. This covers
/// exactly what the paper's Theorems 12/13 encoding uses.
struct XmlNode {
  std::string name;
  std::string text;  // text content (leaf nodes)
  std::vector<std::unique_ptr<XmlNode>> children;
  XmlNode* parent = nullptr;  // set by the parser / AddChild

  /// Appends a child element and returns it.
  XmlNode* AddChild(std::string child_name);

  /// The node's string value: its own text plus all descendant text,
  /// document order (XPath string-value semantics, sufficient for the
  /// paper's queries where values live in leaf <string> elements).
  std::string StringValue() const;
};

/// Owning handle for a parsed document.
using XmlDocument = std::unique_ptr<XmlNode>;

/// Serializes a document (no declaration, no attributes, text escaped
/// for the characters the encoding can produce — none need escaping for
/// 0/1 strings).
std::string SerializeXml(const XmlNode& root);

/// Parses the subset of XML the serializer emits: nested tags and text.
/// Fails on mismatched tags or stray characters.
Result<XmlDocument> ParseXml(const std::string& text);

/// Encodes a SET-EQUALITY instance as the paper's document (Section 4):
///
///   <instance>
///     <set1> <item><string> x_i </string></item> ... </set1>
///     <set2> <item><string> y_j </string></item> ... </set2>
///   </instance>
XmlDocument EncodeSetInstanceAsXml(const problems::Instance& instance);

}  // namespace rstlab::query

#endif  // RSTLAB_QUERY_XML_H_
