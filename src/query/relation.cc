#include "query/relation.h"

#include <algorithm>

#include "stmodel/tape_io.h"

namespace rstlab::query {

bool Relation::Insert(const Tuple& tuple) {
  if (Contains(tuple)) return false;
  tuples.push_back(tuple);
  return true;
}

bool Relation::Contains(const Tuple& tuple) const {
  return std::find(tuples.begin(), tuples.end(), tuple) != tuples.end();
}

void Relation::Normalize() {
  std::sort(tuples.begin(), tuples.end());
  tuples.erase(std::unique(tuples.begin(), tuples.end()), tuples.end());
}

bool Relation::operator==(const Relation& other) const {
  // Equality is set-of-tuples equality; arity is metadata (a
  // materialized empty result does not know its schema).
  Relation a = *this;
  Relation b = other;
  a.Normalize();
  b.Normalize();
  return a.tuples == b.tuples;
}

std::string EncodeTuple(const Tuple& tuple) {
  std::string out;
  for (std::size_t i = 0; i < tuple.size(); ++i) {
    if (i > 0) out += ',';
    out += tuple[i];
  }
  return out;
}

Tuple DecodeTuple(const std::string& field) {
  Tuple tuple;
  std::string current;
  for (char c : field) {
    if (c == ',') {
      tuple.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  tuple.push_back(std::move(current));
  return tuple;
}

void WriteRelationToTape(const Relation& relation, tape::Tape& t) {
  for (const Tuple& tuple : relation.tuples) {
    stmodel::WriteString(t, EncodeTuple(tuple));
    t.Write(stmodel::kFieldSeparator);
    t.MoveRight();
  }
}

Relation ReadRelationFromTape(tape::Tape& t, std::string name,
                              std::size_t count) {
  Relation relation;
  relation.name = std::move(name);
  for (std::size_t i = 0; i < count && !stmodel::AtEnd(t); ++i) {
    Tuple tuple = DecodeTuple(stmodel::ReadField(t));
    relation.arity = std::max(relation.arity, tuple.size());
    relation.tuples.push_back(std::move(tuple));
  }
  return relation;
}

}  // namespace rstlab::query
