#include "query/xpath.h"

#include <algorithm>
#include <cctype>

namespace rstlab::query {

XPathExprPtr Not(XPathExprPtr e) {
  auto expr = std::make_shared<XPathExpr>();
  expr->kind = XPathExpr::Kind::kNot;
  expr->child = std::move(e);
  return expr;
}

XPathExprPtr EqualsExpr(XPathPath lhs, XPathPath rhs) {
  auto expr = std::make_shared<XPathExpr>();
  expr->kind = XPathExpr::Kind::kEquals;
  expr->lhs_path = std::move(lhs);
  expr->rhs_path = std::move(rhs);
  return expr;
}

XPathExprPtr ExistsExpr(XPathPath path) {
  auto expr = std::make_shared<XPathExpr>();
  expr->kind = XPathExpr::Kind::kExists;
  expr->lhs_path = std::move(path);
  return expr;
}

namespace {

void CollectDescendants(const XmlNode& node,
                        std::vector<const XmlNode*>& out) {
  for (const auto& child : node.children) {
    out.push_back(child.get());
    CollectDescendants(*child, out);
  }
}

/// Applies one step's axis + name test from a single context node.
void ApplyStep(const XmlNode& context, const XPathStep& step,
               std::vector<const XmlNode*>& out) {
  std::vector<const XmlNode*> axis_nodes;
  switch (step.axis) {
    case Axis::kChild:
      for (const auto& child : context.children) {
        axis_nodes.push_back(child.get());
      }
      break;
    case Axis::kDescendant:
      CollectDescendants(context, axis_nodes);
      break;
    case Axis::kAncestor:
      for (const XmlNode* p = context.parent; p != nullptr;
           p = p->parent) {
        axis_nodes.push_back(p);
      }
      break;
    case Axis::kParent:
      if (context.parent != nullptr) axis_nodes.push_back(context.parent);
      break;
    case Axis::kSelf:
      axis_nodes.push_back(&context);
      break;
    case Axis::kDescendantOrSelf:
      axis_nodes.push_back(&context);
      CollectDescendants(context, axis_nodes);
      break;
  }
  for (const XmlNode* node : axis_nodes) {
    if (!step.name_test.empty() && node->name != step.name_test) continue;
    if (step.predicate != nullptr && !EvalExpr(*node, *step.predicate)) {
      continue;
    }
    out.push_back(node);
  }
}

}  // namespace

std::vector<const XmlNode*> EvalPath(const XmlNode& context,
                                     const XPathPath& path) {
  std::vector<const XmlNode*> current = {&context};
  for (const XPathStep& step : path) {
    std::vector<const XmlNode*> next;
    for (const XmlNode* node : current) {
      ApplyStep(*node, step, next);
    }
    // De-duplicate while keeping first occurrence (document order is
    // preserved by construction for the axes used here).
    std::vector<const XmlNode*> dedup;
    for (const XmlNode* node : next) {
      if (std::find(dedup.begin(), dedup.end(), node) == dedup.end()) {
        dedup.push_back(node);
      }
    }
    current = std::move(dedup);
  }
  return current;
}

bool EvalExpr(const XmlNode& context, const XPathExpr& expr) {
  switch (expr.kind) {
    case XPathExpr::Kind::kNot:
      return !EvalExpr(context, *expr.child);
    case XPathExpr::Kind::kExists:
      return !EvalPath(context, expr.lhs_path).empty();
    case XPathExpr::Kind::kEquals: {
      const std::vector<const XmlNode*> lhs =
          EvalPath(context, expr.lhs_path);
      const std::vector<const XmlNode*> rhs =
          EvalPath(context, expr.rhs_path);
      for (const XmlNode* a : lhs) {
        const std::string va = a->StringValue();
        for (const XmlNode* b : rhs) {
          if (va == b->StringValue()) return true;
        }
      }
      return false;
    }
  }
  return false;
}

namespace {

/// Recursive-descent parser for the XPath subset (see the header
/// grammar). Reports the first error with its input position.
class XPathParser {
 public:
  explicit XPathParser(const std::string& text) : text_(text) {}

  Result<XPathPath> ParsePathToEnd() {
    Result<XPathPath> path = ParsePath();
    if (!path.ok()) return path;
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing characters");
    }
    return path;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument(what + " at position " +
                                   std::to_string(pos_));
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\t')) {
      ++pos_;
    }
  }

  bool Peek(char c) {
    SkipSpace();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool Consume(char c) {
    if (!Peek(c)) return false;
    ++pos_;
    return true;
  }

  std::string ReadIdentifier() {
    SkipSpace();
    std::string out;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '_')) {
      out.push_back(text_[pos_]);
      ++pos_;
    }
    return out;
  }

  Result<XPathPath> ParsePath() {
    XPathPath path;
    while (true) {
      Result<XPathStep> step = ParseStep();
      if (!step.ok()) return step.status();
      path.push_back(std::move(step).value());
      if (!Consume('/')) break;
    }
    return path;
  }

  Result<XPathStep> ParseStep() {
    const std::string axis_name = ReadIdentifier();
    XPathStep step;
    if (axis_name == "child") {
      step.axis = Axis::kChild;
    } else if (axis_name == "descendant") {
      step.axis = Axis::kDescendant;
    } else if (axis_name == "ancestor") {
      step.axis = Axis::kAncestor;
    } else if (axis_name == "parent") {
      step.axis = Axis::kParent;
    } else if (axis_name == "self") {
      step.axis = Axis::kSelf;
    } else if (axis_name == "descendant-or-self") {
      step.axis = Axis::kDescendantOrSelf;
    } else {
      return Error("unknown axis '" + axis_name + "'");
    }
    if (!(Consume(':') && Consume(':'))) {
      return Error("expected '::' after axis");
    }
    step.name_test = ReadIdentifier();  // may be empty: match any
    if (Consume('[')) {
      Result<XPathExprPtr> predicate = ParseExpr();
      if (!predicate.ok()) return predicate.status();
      if (!Consume(']')) return Error("expected ']'");
      step.predicate = std::move(predicate).value();
    }
    return step;
  }

  Result<XPathExprPtr> ParseExpr() {
    SkipSpace();
    // not( expr )
    if (text_.compare(pos_, 4, "not(") == 0 ||
        text_.compare(pos_, 4, "not ") == 0) {
      pos_ += 3;
      if (!Consume('(')) return Error("expected '(' after not");
      Result<XPathExprPtr> inner = ParseExpr();
      if (!inner.ok()) return inner;
      if (!Consume(')')) return Error("expected ')'");
      return Not(std::move(inner).value());
    }
    Result<XPathPath> lhs = ParsePath();
    if (!lhs.ok()) return lhs.status();
    if (Consume('=')) {
      Result<XPathPath> rhs = ParsePath();
      if (!rhs.ok()) return rhs.status();
      return EqualsExpr(std::move(lhs).value(), std::move(rhs).value());
    }
    return ExistsExpr(std::move(lhs).value());
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<XPathPath> ParseXPath(const std::string& text) {
  XPathParser parser(text);
  return parser.ParsePathToEnd();
}

XPathPath PaperXPathQuery() {
  // child::string
  XPathPath lhs = {{Axis::kChild, "string", nullptr}};
  // ancestor::instance/child::set2/child::item/child::string
  XPathPath rhs = {{Axis::kAncestor, "instance", nullptr},
                   {Axis::kChild, "set2", nullptr},
                   {Axis::kChild, "item", nullptr},
                   {Axis::kChild, "string", nullptr}};
  XPathExprPtr predicate = Not(EqualsExpr(std::move(lhs), std::move(rhs)));
  return {{Axis::kDescendant, "set1", nullptr},
          {Axis::kChild, "item", predicate}};
}

bool FilterMatches(const XmlNode& document_root, const XPathPath& query) {
  return !EvalPath(document_root, query).empty();
}

}  // namespace rstlab::query
