#ifndef RSTLAB_QUERY_STREAMING_XML_H_
#define RSTLAB_QUERY_STREAMING_XML_H_

#include "stmodel/st_context.h"
#include "util/status.h"

namespace rstlab::query {

/// Streaming (tape-level) evaluation of the paper's two XML queries on
/// documents of the Section 4 shape
/// <instance><set1>...</set1><set2>...</set2></instance>.
///
/// Theorems 12/13 are lower bounds: with o(log N) scans and small
/// internal memory, no randomized machine evaluates these queries. The
/// procedures here supply the matching upper-bound side, analogous to
/// Theorem 11(a) for relational algebra: one forward scan tokenizes the
/// document and spools the set1/set2 string values onto two external
/// tapes (O(log N) internal bits of parser state), after which the
/// sort-based machinery decides in Theta(log N) scans total.
///
/// Tape layout: serialized document on tape 0 of a context with at
/// least 5 tapes; tapes 1 and 2 receive the extracted values, 3 and 4
/// are sort scratch.

/// Number of external tapes required.
inline constexpr std::size_t kStreamingXmlTapes = 5;

/// Theorem 13's filtering problem, streaming: true iff the Figure 1
/// XPath query selects at least one node, i.e. some set1 string is
/// missing from set2 (X not a subset of Y).
Result<bool> FilterPaperXPathOnTapes(stmodel::StContext& ctx);

/// Theorem 12's query, streaming: true iff the XQuery query returns
/// <result><true/></result>, i.e. the sets are equal.
Result<bool> EvaluatePaperXQueryOnTapes(stmodel::StContext& ctx);

/// The encoding direction of Section 4: "the XML document can be
/// produced by using a constant number of sequential scans, constant
/// internal memory space, and two external memory tapes". Reads the
/// encoded instance from tape 0 of `ctx` and writes the serialized
/// document onto tape 1 in two scans (one to find the halfway point,
/// one to emit), with O(log N) internal bits (one field counter — the
/// paper's "constant" treats counters as free; ours are metered).
Status EncodeInstanceAsXmlOnTapes(stmodel::StContext& ctx);

/// The shared first pass: extracts the string values below set1 to tape
/// `out_first` and those below set2 to tape `out_second` as
/// '#'-terminated fields, in one forward scan of tape 0. Returns the
/// number of values per set via the out parameters. Fails on documents
/// not of the Section 4 shape.
Status ExtractSetValues(stmodel::StContext& ctx, std::size_t out_first,
                        std::size_t out_second, std::size_t* count_first,
                        std::size_t* count_second);

}  // namespace rstlab::query

#endif  // RSTLAB_QUERY_STREAMING_XML_H_
