#include "query/streaming_xml.h"

#include <optional>
#include <string>

#include "query/xml_events.h"
#include "sorting/merge_sort.h"
#include "stmodel/internal_arena.h"
#include "stmodel/tape_io.h"
#include "tape/tape.h"

namespace rstlab::query {

Status EncodeInstanceAsXmlOnTapes(stmodel::StContext& ctx) {
  if (ctx.num_tapes() < 2) {
    return Status::InvalidArgument("encoder needs 2 external tapes");
  }
  tape::Tape& in = ctx.tape(0);
  tape::Tape& out = ctx.tape(1);
  stmodel::InternalArena& arena = ctx.arena();
  const std::size_t ctr_bits =
      stmodel::BitsFor(std::max<std::size_t>(1, ctx.input_size()));
  stmodel::MeteredUint64 fields(arena, ctr_bits);
  stmodel::MeteredUint64 index(arena, ctr_bits);

  // Scan 1: count the fields to locate the set1/set2 boundary.
  stmodel::Rewind(in);
  fields = 0;
  while (!stmodel::AtEnd(in)) {
    stmodel::SkipField(in);
    fields = fields.get() + 1;
  }
  if (fields.get() % 2 != 0) {
    return Status::InvalidArgument("instance must have 2m fields");
  }
  const std::uint64_t m = fields.get() / 2;

  // Scan 2: emit the document while streaming the fields.
  auto emit = [&out](const char* text) {
    for (const char* c = text; *c != '\0'; ++c) {
      out.Write(*c);
      out.MoveRight();
    }
  };
  stmodel::Rewind(in);
  emit("<instance><set1>");
  for (index = 0; index.get() < fields.get();
       index = index.get() + 1) {
    if (index.get() == m) emit("</set1><set2>");
    emit("<item><string>");
    // Copy the field one symbol at a time, reading each input cell
    // exactly once (a re-read would inflate the per-scan cost the obs
    // trace and cache statistics report).
    for (;;) {
      const char c = in.Read();
      if (c == stmodel::kFieldSeparator || c == tape::kBlank) {
        if (c == stmodel::kFieldSeparator) in.MoveRight();
        break;
      }
      out.Write(c);
      out.MoveRight();
      in.MoveRight();
    }
    emit("</string></item>");
  }
  if (m == 0) emit("</set1><set2>");
  emit("</set2></instance>");
  return Status::OK();
}

Status ExtractSetValues(stmodel::StContext& ctx, std::size_t out_first,
                        std::size_t out_second, std::size_t* count_first,
                        std::size_t* count_second) {
  if (ctx.num_tapes() <= std::max(out_first, out_second)) {
    return Status::InvalidArgument("output tape index out of range");
  }
  tape::Tape& in = ctx.tape(0);
  stmodel::Rewind(in);

  // Streaming tokenizer state: which set we are under (0 = none), and
  // whether we are inside a <string> element. The event reader owns the
  // metered tag/text buffer; each input cell is read exactly once.
  stmodel::InternalArena& arena = ctx.arena();
  XmlEventReader reader(in, arena);
  int current_set = 0;
  bool in_string = false;
  std::size_t counts[2] = {0, 0};

  for (;;) {
    Result<XmlEvent> next = reader.Next();
    if (!next.ok()) return next.status();
    const XmlEvent& event = next.value();
    if (event.kind == XmlEventKind::kEndOfInput) break;
    switch (event.kind) {
      case XmlEventKind::kStartTag:
        if (event.content == "set1") {
          current_set = 1;
        } else if (event.content == "set2") {
          current_set = 2;
        } else if (event.content == "string") {
          if (current_set == 0) {
            return Status::InvalidArgument("<string> outside set1/set2");
          }
          in_string = true;
        }
        // Other tags (instance, item) carry no state.
        break;
      case XmlEventKind::kEndTag:
        if (event.content == "set1" || event.content == "set2") {
          current_set = 0;
        } else if (event.content == "string") {
          if (!in_string) {
            return Status::InvalidArgument("stray </string>");
          }
          tape::Tape& out =
              ctx.tape(current_set == 1 ? out_first : out_second);
          out.Write(stmodel::kFieldSeparator);
          out.MoveRight();
          ++counts[current_set - 1];
          in_string = false;
        }
        break;
      case XmlEventKind::kText:
        if (in_string) {
          tape::Tape& out =
              ctx.tape(current_set == 1 ? out_first : out_second);
          for (const char c : event.content) {
            out.Write(c);
            out.MoveRight();
          }
        } else {
          for (const char c : event.content) {
            if (c != ' ') {
              return Status::InvalidArgument("text outside <string>");
            }
          }
        }
        break;
      case XmlEventKind::kEndOfInput:
        break;
    }
  }
  if (in_string || current_set != 0) {
    return Status::InvalidArgument("document ended mid-element");
  }
  ctx.tape(out_first).Write(tape::kBlank);
  ctx.tape(out_second).Write(tape::kBlank);
  if (count_first != nullptr) *count_first = counts[0];
  if (count_second != nullptr) *count_second = counts[1];
  return Status::OK();
}

Result<bool> FilterPaperXPathOnTapes(stmodel::StContext& ctx) {
  if (ctx.num_tapes() < kStreamingXmlTapes) {
    return Status::InvalidArgument("filter needs 5 external tapes");
  }
  std::size_t count_x = 0;
  std::size_t count_y = 0;
  RSTLAB_RETURN_IF_ERROR(ExtractSetValues(ctx, 1, 2, &count_x, &count_y));
  RSTLAB_RETURN_IF_ERROR(sorting::SortFieldsOnTapes(ctx, 1, 3, 4));
  RSTLAB_RETURN_IF_ERROR(sorting::SortFieldsOnTapes(ctx, 2, 3, 4));

  // The query selects a node iff some X value is absent from Y.
  ctx.tape(1).Seek(0);
  ctx.tape(2).Seek(0);
  stmodel::SortedFieldCursor x(ctx.tape(1), count_x, ctx.arena());
  stmodel::SortedFieldCursor y(ctx.tape(2), count_y, ctx.arena());
  while (!x.exhausted()) {
    while (!y.exhausted() && *y.value() < *x.value()) y.Advance();
    if (y.exhausted() || *y.value() != *x.value()) {
      return true;  // this x is in X - Y
    }
    x.AdvanceDistinct();
  }
  return false;
}

Result<bool> EvaluatePaperXQueryOnTapes(stmodel::StContext& ctx) {
  if (ctx.num_tapes() < kStreamingXmlTapes) {
    return Status::InvalidArgument("query needs 5 external tapes");
  }
  std::size_t count_x = 0;
  std::size_t count_y = 0;
  RSTLAB_RETURN_IF_ERROR(ExtractSetValues(ctx, 1, 2, &count_x, &count_y));
  RSTLAB_RETURN_IF_ERROR(sorting::SortFieldsOnTapes(ctx, 1, 3, 4));
  RSTLAB_RETURN_IF_ERROR(sorting::SortFieldsOnTapes(ctx, 2, 3, 4));

  // Set equality of the sorted sequences, duplicates collapsed.
  ctx.tape(1).Seek(0);
  ctx.tape(2).Seek(0);
  stmodel::SortedFieldCursor a(ctx.tape(1), count_x, ctx.arena());
  stmodel::SortedFieldCursor b(ctx.tape(2), count_y, ctx.arena());
  while (!a.exhausted() && !b.exhausted()) {
    if (*a.value() != *b.value()) return false;
    a.AdvanceDistinct();
    b.AdvanceDistinct();
  }
  return a.exhausted() == b.exhausted();
}

}  // namespace rstlab::query
