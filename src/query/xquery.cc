#include "query/xquery.h"

#include <unordered_set>

namespace rstlab::query {

bool QuantifiedContainment::Holds(const XmlNode& document_root) const {
  std::unordered_set<std::string> rhs_values;
  for (const XmlNode* node : EvalPath(document_root, rhs)) {
    rhs_values.insert(node->StringValue());
  }
  for (const XmlNode* node : EvalPath(document_root, lhs)) {
    if (rhs_values.count(node->StringValue()) == 0) return false;
  }
  return true;
}

namespace {

XPathPath SetStringsPath(const std::string& set_name) {
  // /instance/set{1,2}/item/string, evaluated from the <instance> root:
  // the leading /instance is the context node itself.
  return {{Axis::kChild, set_name, nullptr},
          {Axis::kChild, "item", nullptr},
          {Axis::kChild, "string", nullptr}};
}

}  // namespace

XmlDocument EvaluatePaperXQuery(const XmlNode& document_root) {
  const QuantifiedContainment forward{SetStringsPath("set1"),
                                      SetStringsPath("set2")};
  const QuantifiedContainment backward{SetStringsPath("set2"),
                                       SetStringsPath("set1")};
  auto result = std::make_unique<XmlNode>();
  result->name = "result";
  if (forward.Holds(document_root) && backward.Holds(document_root)) {
    result->AddChild("true");
  }
  return result;
}

std::string EvaluatePaperXQueryToString(const XmlNode& document_root) {
  return SerializeXml(*EvaluatePaperXQuery(document_root));
}

}  // namespace rstlab::query
