#ifndef RSTLAB_QUERY_XQUERY_H_
#define RSTLAB_QUERY_XQUERY_H_

#include <string>

#include "query/xml.h"
#include "query/xpath.h"

namespace rstlab::query {

/// The quantified comparison at the core of the paper's XQuery query
/// (proof of Theorem 12):
///
///   every $x in `lhs` satisfies some $y in `rhs` satisfies $x = $y
///
/// evaluated over string values of the nodes selected by the two paths.
struct QuantifiedContainment {
  XPathPath lhs;
  XPathPath rhs;

  /// True iff every lhs string value occurs among the rhs string values.
  bool Holds(const XmlNode& document_root) const;
};

/// The paper's XQuery query Q: returns
/// <result><true/></result> if {x_1..x_m} = {y_1..y_m} and
/// <result></result> otherwise. `EvaluatePaperXQuery` computes the
/// conjunction of the two containments
/// (/instance/set1/item/string vs /instance/set2/item/string and vice
/// versa) and materializes the result document.
XmlDocument EvaluatePaperXQuery(const XmlNode& document_root);

/// Serialized form of the query result ("<result><true/></result>" or
/// "<result></result>").
std::string EvaluatePaperXQueryToString(const XmlNode& document_root);

}  // namespace rstlab::query

#endif  // RSTLAB_QUERY_XQUERY_H_
