#ifndef RSTLAB_QUERY_WORKLOAD_H_
#define RSTLAB_QUERY_WORKLOAD_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

#include "query/relation.h"

namespace rstlab::query {

/// Seeded, size-parametric workload generators for the streaming query
/// engine: the adversarial instance families of Theorems 11 and 12 —
/// relation pairs and Section 4 XML documents that are equal except for
/// a controlled number of perturbations, exactly the inputs the
/// (set-)equality lower bounds are proved on. Every generator is a pure
/// function of its spec (seed included), so workloads are reproducible
/// across machines, backends and thread counts, and the *exact*
/// symmetric-difference size ships with the instance as ground truth.

/// Spec for a pair of relations R1, R2 that agree on all but
/// `perturbations` tuples.
struct RelationPairSpec {
  std::uint64_t seed = 1;
  /// Tuples per relation.
  std::size_t num_tuples = 16;
  /// Attributes per tuple.
  std::size_t arity = 1;
  /// Bits per attribute value (clamped to [1, 63]; raised when
  /// num_tuples needs more index bits).
  std::size_t value_len = 8;
  /// Tuples of R2 replaced with fresh values not in R1. The symmetric
  /// difference is then exactly 2 * min(perturbations, num_tuples).
  std::size_t perturbations = 0;
  /// Inject duplicate tuple occurrences into the encoded stream (the
  /// multiset stream the engine must still evaluate with set
  /// semantics).
  bool skew_duplicates = false;
  std::string r1_name = "R1";
  std::string r2_name = "R2";
};

/// One generated relation-pair instance.
struct RelationPairWorkload {
  /// The two relations, keyed by name (insertion order seeded-shuffled).
  std::map<std::string, Relation> database;
  /// The Theorem 11 input stream: shuffled "name,v1,...#" fields,
  /// duplicates included when the spec asks for them.
  std::string stream;
  /// Exact |R1 Δ R2|.
  std::size_t symmetric_difference = 0;
};

RelationPairWorkload MakeRelationPair(const RelationPairSpec& spec);

/// Spec for a Section 4 XML document <instance><set1>...<set2>...</>.
struct XmlWorkloadSpec {
  std::uint64_t seed = 1;
  /// Values below set1 / set2. A skewed fanout (set1 >> set2) stresses
  /// the one-pass axis walk with asymmetric siblings.
  std::size_t set1_values = 16;
  std::size_t set2_values = 16;
  /// Bits per value (clamped like RelationPairSpec::value_len).
  std::size_t value_len = 8;
  /// Extra nesting: each <item> wraps its <string> in this many levels
  /// of decorative elements — deep documents the event reader must
  /// stream through without materializing.
  std::size_t nesting_depth = 0;
  /// set2 values replaced with values outside set1 (first k slots).
  std::size_t perturbations = 0;
};

/// One generated XML instance.
struct XmlWorkload {
  /// The document text (tape content for EvaluatePaperXQueryOnTapes,
  /// FilterPaperXPathOnTapes or RelationSpool::BuildFromXml).
  std::string document;
  std::size_t set1_count = 0;
  std::size_t set2_count = 0;
  /// Exact |set1 Δ set2|.
  std::size_t symmetric_difference = 0;
  /// set1 == set2 as sets (the Theorem 12 XQuery verdict).
  bool sets_equal = false;
};

XmlWorkload MakeXmlWorkload(const XmlWorkloadSpec& spec);

}  // namespace rstlab::query

#endif  // RSTLAB_QUERY_WORKLOAD_H_
