#include "query/xml.h"

namespace rstlab::query {

XmlNode* XmlNode::AddChild(std::string child_name) {
  auto child = std::make_unique<XmlNode>();
  child->name = std::move(child_name);
  child->parent = this;
  children.push_back(std::move(child));
  return children.back().get();
}

std::string XmlNode::StringValue() const {
  std::string value = text;
  for (const auto& child : children) value += child->StringValue();
  return value;
}

namespace {

void SerializeRec(const XmlNode& node, std::string& out) {
  out += '<';
  out += node.name;
  out += '>';
  out += node.text;
  for (const auto& child : node.children) SerializeRec(*child, out);
  out += "</";
  out += node.name;
  out += '>';
}

}  // namespace

std::string SerializeXml(const XmlNode& root) {
  std::string out;
  SerializeRec(root, out);
  return out;
}

Result<XmlDocument> ParseXml(const std::string& text) {
  auto root_holder = std::make_unique<XmlNode>();
  XmlNode* current = root_holder.get();
  current->name = "(document)";
  std::size_t i = 0;
  while (i < text.size()) {
    if (text[i] == '<') {
      const std::size_t close = text.find('>', i);
      if (close == std::string::npos) {
        return Status::InvalidArgument("unterminated tag");
      }
      std::string tag = text.substr(i + 1, close - i - 1);
      if (!tag.empty() && tag[0] == '/') {
        if (current->name != tag.substr(1) || current->parent == nullptr) {
          return Status::InvalidArgument("mismatched closing tag " + tag);
        }
        current = current->parent;
      } else if (!tag.empty()) {
        current = current->AddChild(tag);
      } else {
        return Status::InvalidArgument("empty tag");
      }
      i = close + 1;
    } else {
      current->text.push_back(text[i]);
      ++i;
    }
  }
  if (current != root_holder.get()) {
    return Status::InvalidArgument("unclosed element " + current->name);
  }
  if (root_holder->children.size() != 1) {
    return Status::InvalidArgument("document must have one root element");
  }
  XmlDocument doc = std::move(root_holder->children[0]);
  doc->parent = nullptr;
  return doc;
}

XmlDocument EncodeSetInstanceAsXml(const problems::Instance& instance) {
  auto root = std::make_unique<XmlNode>();
  root->name = "instance";
  XmlNode* set1 = root->AddChild("set1");
  XmlNode* set2 = root->AddChild("set2");
  for (const BitString& x : instance.first) {
    set1->AddChild("item")->AddChild("string")->text = x.ToString();
  }
  for (const BitString& y : instance.second) {
    set2->AddChild("item")->AddChild("string")->text = y.ToString();
  }
  return root;
}

}  // namespace rstlab::query
