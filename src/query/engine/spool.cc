#include "query/engine/spool.h"

#include <algorithm>
#include <utility>

#include "query/xml_events.h"
#include "stmodel/tape_io.h"
#include "tape/tape.h"

namespace rstlab::query::engine {

namespace {
/// Cells read from the input tape (and written to a lane) per bulk
/// operation. A host-side buffer, not model memory: the demultiplexer
/// itself is a finite-control machine whose metered state is one field
/// buffer; chunking only batches the storage calls.
constexpr std::size_t kChunkCells = 4096;
}  // namespace

Status RelationSpool::Append(const std::string& relation,
                             const std::string& payload,
                             const extmem::StorageOptions& options,
                             std::map<std::string, std::string>& pending) {
  auto it = lanes_.find(relation);
  if (it == lanes_.end()) {
    auto lane = std::make_unique<Lane>();
    Result<std::unique_ptr<extmem::TapeStorage>> storage =
        extmem::CreateStorage(options);
    if (!storage.ok()) return storage.status();
    lane->storage = std::move(storage).value();
    it = lanes_.emplace(relation, std::move(lane)).first;
  }
  Lane& lane = *it->second;
  if (lane.fields == 0) {
    lane.arity = payload.empty()
                     ? 0
                     : 1 + static_cast<std::size_t>(std::count(
                               payload.begin(), payload.end(), ','));
  }
  std::string& buffered = pending[relation];
  buffered += payload;
  buffered += stmodel::kFieldSeparator;
  ++lane.fields;
  lane.max_field_len = std::max(lane.max_field_len, payload.size());
  if (buffered.size() >= kChunkCells) {
    lane.storage->WriteRange(lane.cells, buffered);
    lane.cells += buffered.size();
    buffered.clear();
  }
  return Status::OK();
}

void RelationSpool::Flush(std::map<std::string, std::string>& pending) {
  for (auto& [relation, buffered] : pending) {
    if (buffered.empty()) continue;
    Lane& lane = *lanes_.at(relation);
    lane.storage->WriteRange(lane.cells, buffered);
    lane.cells += buffered.size();
    buffered.clear();
  }
  max_field_len_ = 0;
  total_cells_ = 0;
  for (const auto& [relation, lane] : lanes_) {
    max_field_len_ = std::max(max_field_len_, lane->max_field_len);
    total_cells_ += lane->cells;
  }
}

Result<std::unique_ptr<RelationSpool>> RelationSpool::Build(
    stmodel::StContext& ctx) {
  auto spool = std::unique_ptr<RelationSpool>(new RelationSpool());
  tape::Tape& input = ctx.tape(0);
  stmodel::Rewind(input);

  std::map<std::string, std::string> pending;
  std::string field;
  std::size_t remaining = ctx.input_size();
  bool saw_blank = false;
  while (remaining > 0 && !saw_blank) {
    const std::size_t take = std::min(kChunkCells, remaining);
    const std::string chunk = input.ReadForward(take);
    remaining -= take;
    for (const char c : chunk) {
      if (c == tape::kBlank) {
        saw_blank = true;
        break;
      }
      if (c != stmodel::kFieldSeparator) {
        field.push_back(c);
        continue;
      }
      // One complete "name,v1,v2,..." field: split at the first comma.
      const std::size_t comma = field.find(',');
      if (comma != std::string::npos && comma + 1 < field.size()) {
        RSTLAB_RETURN_IF_ERROR(
            spool->Append(field.substr(0, comma), field.substr(comma + 1),
                          ctx.storage_options(), pending));
      }
      field.clear();
    }
  }
  spool->Flush(pending);
  return spool;
}

Result<std::unique_ptr<RelationSpool>> RelationSpool::BuildFromXml(
    stmodel::StContext& ctx) {
  auto spool = std::unique_ptr<RelationSpool>(new RelationSpool());
  tape::Tape& input = ctx.tape(0);
  stmodel::Rewind(input);

  // The child-axis walk of the Section 4 schema, as a state machine
  // over the tokenizer's events — the same validation as
  // ExtractSetValues, but demultiplexing into spool lanes instead of
  // context tapes so many queries can share the one parse.
  XmlEventReader reader(input, ctx.arena());
  std::map<std::string, std::string> pending;
  int current_set = 0;
  bool in_string = false;
  std::string value;
  for (;;) {
    Result<XmlEvent> next = reader.Next();
    if (!next.ok()) return next.status();
    const XmlEvent& event = next.value();
    if (event.kind == XmlEventKind::kEndOfInput) break;
    switch (event.kind) {
      case XmlEventKind::kStartTag:
        if (event.content == "set1") {
          current_set = 1;
        } else if (event.content == "set2") {
          current_set = 2;
        } else if (event.content == "string") {
          if (current_set == 0) {
            return Status::InvalidArgument("<string> outside set1/set2");
          }
          in_string = true;
          value.clear();
        }
        break;
      case XmlEventKind::kEndTag:
        if (event.content == "set1" || event.content == "set2") {
          current_set = 0;
        } else if (event.content == "string") {
          if (!in_string) {
            return Status::InvalidArgument("stray </string>");
          }
          RSTLAB_RETURN_IF_ERROR(
              spool->Append(current_set == 1 ? "set1" : "set2", value,
                            ctx.storage_options(), pending));
          in_string = false;
          value.clear();
        }
        break;
      case XmlEventKind::kText:
        if (in_string) {
          value += event.content;
        } else {
          for (const char c : event.content) {
            if (c != ' ') {
              return Status::InvalidArgument("text outside <string>");
            }
          }
        }
        break;
      case XmlEventKind::kEndOfInput:
        break;
    }
  }
  if (in_string || current_set != 0) {
    return Status::InvalidArgument("document ended mid-element");
  }
  spool->Flush(pending);
  return spool;
}

const RelationSpool::Lane* RelationSpool::lane(
    const std::string& relation) const {
  auto it = lanes_.find(relation);
  return it == lanes_.end() ? nullptr : it->second.get();
}

std::vector<std::string> RelationSpool::names() const {
  std::vector<std::string> out;
  out.reserve(lanes_.size());
  for (const auto& [name, lane] : lanes_) out.push_back(name);
  return out;
}

SpoolCursor::SpoolCursor(const RelationSpool::Lane* lane,
                         std::size_t chunk_cells)
    : lane_(lane), chunk_cells_(std::max<std::size_t>(1, chunk_cells)) {}

std::optional<std::string> SpoolCursor::NextField() {
  if (lane_ == nullptr) return std::nullopt;
  std::string field;
  for (;;) {
    if (buffer_pos_ >= buffer_.size()) {
      if (offset_ >= lane_->cells) return std::nullopt;
      const std::size_t take =
          std::min(chunk_cells_, lane_->cells - offset_);
      {
        std::lock_guard<std::mutex> guard(lane_->mutex);
        buffer_ = lane_->storage->ReadRange(offset_, take);
      }
      offset_ += buffer_.size();
      buffer_pos_ = 0;
      if (buffer_.empty()) return std::nullopt;
    }
    const char c = buffer_[buffer_pos_++];
    if (c == stmodel::kFieldSeparator) return field;
    field.push_back(c);
  }
}

void SpoolCursor::Rewind() {
  offset_ = 0;
  buffer_.clear();
  buffer_pos_ = 0;
}

}  // namespace rstlab::query::engine
