#ifndef RSTLAB_QUERY_ENGINE_OPERATORS_H_
#define RSTLAB_QUERY_ENGINE_OPERATORS_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "query/engine/operator.h"
#include "query/engine/spool.h"

namespace rstlab::query::engine {

/// The concrete operators. Each factory takes ownership of its children
/// and returns a single-use operator; `env` pointees must outlive the
/// pipeline. Semantics mirror the Theorem 11 streaming evaluator
/// (`EvaluateOnTapes`): duplicates may flow between operators, the
/// sorting operators collapse them, and the final materialization
/// de-duplicates — set semantics end to end.

/// Leaf: streams one spool lane in lane order. `lane` may be nullptr
/// (empty relation). Bills 2 reversals per pass (scan + rewind).
StreamOperatorPtr MakeScan(const RelationSpool::Lane* lane,
                           OperatorEnv env);

/// σ: keeps tuples satisfying column = constant | column = column.
StreamOperatorPtr MakeFilter(StreamOperatorPtr child, std::size_t lhs,
                             bool rhs_is_column, std::size_t rhs_column,
                             std::string rhs_constant, OperatorEnv env);

/// π without de-duplication: per-tuple column remap ("" for missing
/// columns, like the reference evaluator). Compose with MakeSort(dedup)
/// for the full projection operator.
StreamOperatorPtr MakeProjectMap(StreamOperatorPtr child,
                                 std::vector<std::size_t> columns,
                                 OperatorEnv env);

/// Concatenation of two streams (the input side of a union).
StreamOperatorPtr MakeAppend(StreamOperatorPtr a, StreamOperatorPtr b,
                             OperatorEnv env);

/// Blocking sort: drains the child onto a private scratch context
/// (spill lanes on the caller's backend, `sorting::SortForDecider`
/// dispatch: serial cascade or parallel k-way by `config.sort`), then
/// streams the fields in ascending order, collapsing duplicates when
/// `dedup`. The scratch context's measured (r, s) is folded into the
/// query bill at Close; Close also releases the lanes on success and
/// failure paths alike.
StreamOperatorPtr MakeSort(StreamOperatorPtr child, bool dedup,
                           OperatorEnv env);

/// Sorted-merge set operator over two sorted (not necessarily
/// de-duplicated) streams: emits distinct A-tuples absent from B
/// (difference) or present in B (intersection).
enum class SetOpKind { kDifference, kIntersection };
StreamOperatorPtr MakeMergeSetOp(StreamOperatorPtr a, StreamOperatorPtr b,
                                 SetOpKind kind, OperatorEnv env);

/// Key encoding for the sort-based join: rewrites each tuple as
/// "k1,k2,...;payload" so a lexicographic field sort groups equal join
/// keys. ';' must not occur in attribute values.
StreamOperatorPtr MakeKeyEncode(StreamOperatorPtr child,
                                std::vector<std::size_t> key_columns,
                                OperatorEnv env);

/// Sort-based equi-join over two key-encoded sorted streams (each a
/// MakeSort over MakeKeyEncode): one merge pass; each equal-key B-group
/// is buffered in metered internal memory and paired with every
/// matching A-tuple. Output tuples are "a_payload,b_payload" — the
/// Product-then-select encoding of the reference, so results compare
/// bit-identically.
StreamOperatorPtr MakeMergeJoin(StreamOperatorPtr a, StreamOperatorPtr b,
                                OperatorEnv env);

/// A × B by the Theorem 11 doubling construction: both operands are
/// materialized on a private scratch context, B is replicated by
/// repeated doubling (O(log |A|) passes), then one pairing pass streams
/// the combined tuples. Scratch (r, s) folded at Close.
StreamOperatorPtr MakeProduct(StreamOperatorPtr a, StreamOperatorPtr b,
                              OperatorEnv env);

}  // namespace rstlab::query::engine

#endif  // RSTLAB_QUERY_ENGINE_OPERATORS_H_
