#include "query/engine/shared_scan.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "obs/metrics.h"
#include "parallel/thread_pool.h"
#include "query/engine/spool.h"

namespace rstlab::query::engine {

namespace {

/// Evaluates one query over the sealed spool. Never throws; every
/// failure path lands in the outcome's status, and the pipeline is
/// Closed on success and failure alike (the lifecycle the extmem
/// residency tests pin).
QueryOutcome RunOne(const QueryRequest& request, const RelationSpool& spool,
                    std::size_t input_size,
                    const extmem::StorageOptions& storage,
                    const SharedScanOptions& options) {
  QueryOutcome outcome;
  outcome.plan = DescribePlan(request.expr);
  check::QueryPlanShape shape =
      AnalyzePlan(request.expr, spool, options.config, options.plan);
  if (options.unique_join_keys) shape.joins_unique_keys = true;
  outcome.certificate = check::CertifyQueryPlan(shape);

  if (options.admit) {
    Status admitted = check::CheckTheorem11Envelope(
        outcome.certificate, options.admit_scan_coeff,
        options.admit_bits_coeff, options.admit_n_lo, options.admit_n_hi);
    if (!admitted.ok()) {
      outcome.status = admitted;
      return outcome;
    }
  }

  CostMeter meter;
  OperatorEnv env{&options.config, &storage, &meter};
  Result<StreamOperatorPtr> built =
      BuildPipeline(request.expr, spool, env, options.plan);
  if (!built.ok()) {
    outcome.status = built.status();
    return outcome;
  }
  StreamOperatorPtr root = std::move(built).value();

  outcome.result.name = request.label.empty() ? "result" : request.label;
  Status run = root->Open();
  if (run.ok()) {
    for (;;) {
      Result<TupleBatch> next = root->Next();
      if (!next.ok()) {
        run = next.status();
        break;
      }
      TupleBatch batch = std::move(next).value();
      meter.CountTuplesOut(batch.tuples.size());
      for (const std::string& field : batch.tuples) {
        Tuple tuple = DecodeTuple(field);
        outcome.result.arity =
            std::max(outcome.result.arity, tuple.size());
        outcome.result.Insert(tuple);
      }
      if (batch.at_end) break;
    }
  }
  root->Close();
  outcome.cost = meter.cost();
  if (!run.ok()) {
    outcome.status = run;
    return outcome;
  }
  outcome.result.Normalize();

  if (options.certify) {
    outcome.status = check::CheckQueryCostsAgainstCertificate(
        outcome.cost.scan_bound, outcome.cost.internal_bits,
        outcome.certificate, input_size);
  }
  return outcome;
}

void PublishMetrics(obs::MetricsRegistry& metrics,
                    const std::vector<QueryRequest>& queries,
                    const std::vector<QueryOutcome>& outcomes) {
  metrics.Add("query.shared_scans", 1);
  std::uint64_t failed = 0;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const QueryOutcome& outcome = outcomes[i];
    if (!outcome.status.ok()) {
      ++failed;
      continue;
    }
    const std::string label =
        queries[i].label.empty() ? "q" + std::to_string(i)
                                 : queries[i].label;
    metrics.SetGauge("query." + label + ".scan_bound",
                     static_cast<double>(outcome.cost.scan_bound));
    metrics.SetGauge("query." + label + ".internal_bits",
                     static_cast<double>(outcome.cost.internal_bits));
    metrics.SetGauge("query." + label + ".external_cells",
                     static_cast<double>(outcome.cost.external_cells));
    metrics.SetGauge("query." + label + ".sorts",
                     static_cast<double>(outcome.cost.sorts));
    metrics.SetGauge("query." + label + ".tuples_out",
                     static_cast<double>(outcome.cost.tuples_out));
  }
  metrics.Add("query.executed", outcomes.size() - failed);
  metrics.Add("query.failed", failed);
}

}  // namespace

Result<std::vector<QueryOutcome>> ExecuteSharedScan(
    stmodel::StContext& ctx, const std::vector<QueryRequest>& queries,
    const SharedScanOptions& options) {
  // Phase A: the one shared pass — demultiplex the input into sealed
  // per-relation lanes, billed on the caller's context.
  Result<std::unique_ptr<RelationSpool>> spooled =
      options.xml ? RelationSpool::BuildFromXml(ctx)
                  : RelationSpool::Build(ctx);
  if (!spooled.ok()) return spooled.status();
  const std::unique_ptr<RelationSpool> spool = std::move(spooled).value();

  // Phase B: every query pulls from the sealed lanes; workers only
  // decide scheduling, never results or bills.
  std::vector<QueryOutcome> outcomes(queries.size());
  const std::size_t input_size = ctx.input_size();
  const extmem::StorageOptions& storage = ctx.storage_options();
  if (options.config.threads > 1 && queries.size() > 1) {
    parallel::ThreadPool pool(options.config.threads);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      pool.Submit([&, i] {
        outcomes[i] =
            RunOne(queries[i], *spool, input_size, storage, options);
      });
    }
    pool.Wait();
  } else {
    for (std::size_t i = 0; i < queries.size(); ++i) {
      outcomes[i] =
          RunOne(queries[i], *spool, input_size, storage, options);
    }
  }

  if (options.config.metrics != nullptr) {
    PublishMetrics(*options.config.metrics, queries, outcomes);
  }
  return outcomes;
}

}  // namespace rstlab::query::engine
