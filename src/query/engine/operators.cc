#include "query/engine/operators.h"

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "query/relation.h"
#include "sorting/merge_sort.h"
#include "sorting/parallel_sort.h"
#include "stmodel/st_context.h"
#include "stmodel/tape_io.h"
#include "tape/tape.h"

namespace rstlab::query::engine {

std::string QueryCost::ToString() const {
  return "r=" + std::to_string(scan_bound) +
         " s=" + std::to_string(internal_bits) +
         " ext=" + std::to_string(external_cells) +
         " sorts=" + std::to_string(sorts) +
         " out=" + std::to_string(tuples_out);
}

namespace {

/// Bits a host buffer of `bytes` payload characters costs as internal
/// memory (terminator included).
std::size_t BufferBits(std::size_t bytes) { return 8 * (bytes + 1); }

/// Tuple-at-a-time adapter over a child's batches, for the merge
/// operators that need single-tuple lookahead. The buffered batch is
/// the child's own (already metered by the child's producer); the one
/// extra lookahead tuple is metered by the caller.
class BatchedPull {
 public:
  explicit BatchedPull(StreamOperator* child) : child_(child) {}

  /// Pulls the next tuple into `out`; `out` is nullopt at end of
  /// stream. Only returns non-OK on child failure.
  Status NextTuple(std::optional<std::string>& out) {
    out.reset();
    while (pos_ >= batch_.tuples.size()) {
      if (batch_.at_end) return Status::OK();
      Result<TupleBatch> next = child_->Next();
      if (!next.ok()) return next.status();
      batch_ = std::move(next).value();
      pos_ = 0;
    }
    out = std::move(batch_.tuples[pos_++]);
    return Status::OK();
  }

 private:
  StreamOperator* child_;
  TupleBatch batch_;
  std::size_t pos_ = 0;
};

/// Common child-owning scaffolding: Close closes children exactly once
/// and is idempotent.
class UnaryOp : public StreamOperator {
 public:
  UnaryOp(StreamOperatorPtr child, OperatorEnv env)
      : child_(std::move(child)), env_(env) {}

  void Close() override {
    if (closed_) return;
    closed_ = true;
    CloseImpl();
    child_->Close();
  }

 protected:
  virtual void CloseImpl() {}

  StreamOperatorPtr child_;
  OperatorEnv env_;
  bool closed_ = false;
};

class BinaryOp : public StreamOperator {
 public:
  BinaryOp(StreamOperatorPtr a, StreamOperatorPtr b, OperatorEnv env)
      : a_(std::move(a)), b_(std::move(b)), env_(env) {}

  void Close() override {
    if (closed_) return;
    closed_ = true;
    CloseImpl();
    a_->Close();
    b_->Close();
  }

 protected:
  virtual void CloseImpl() {}

  StreamOperatorPtr a_;
  StreamOperatorPtr b_;
  OperatorEnv env_;
  bool closed_ = false;
};

// ---------------------------------------------------------------------
// Scan

class ScanOp final : public StreamOperator {
 public:
  ScanOp(const RelationSpool::Lane* lane, OperatorEnv env)
      : env_(env), cursor_(lane) {}

  Status Open() override {
    // One sequential pass over the lane plus the rewind that readies it
    // for the next reader: the same 2-reversal bill an input-tape scan
    // incurs in the Theorem 11 evaluator.
    env_.cost->ChargeReversals(2);
    return Status::OK();
  }

  Result<TupleBatch> Next() override {
    TupleBatch batch;
    std::size_t bytes = 0;
    while (batch.tuples.size() < env_.config->batch_size) {
      std::optional<std::string> field = cursor_.NextField();
      if (!field.has_value()) {
        batch.at_end = true;
        break;
      }
      bytes += field->size() + 1;
      batch.tuples.push_back(*std::move(field));
    }
    env_.cost->RaiseInternal(BufferBits(bytes));
    return batch;
  }

  void Close() override {}

 private:
  OperatorEnv env_;
  SpoolCursor cursor_;
};

// ---------------------------------------------------------------------
// Filter / ProjectMap / KeyEncode (per-tuple maps)

class FilterOp final : public UnaryOp {
 public:
  FilterOp(StreamOperatorPtr child, std::size_t lhs, bool rhs_is_column,
           std::size_t rhs_column, std::string rhs_constant,
           OperatorEnv env)
      : UnaryOp(std::move(child), env),
        lhs_(lhs),
        rhs_is_column_(rhs_is_column),
        rhs_column_(rhs_column),
        rhs_constant_(std::move(rhs_constant)) {}

  Status Open() override { return child_->Open(); }

  Result<TupleBatch> Next() override {
    Result<TupleBatch> next = child_->Next();
    if (!next.ok()) return next;
    TupleBatch batch = std::move(next).value();
    std::vector<std::string> kept;
    kept.reserve(batch.tuples.size());
    for (std::string& field : batch.tuples) {
      const Tuple tuple = DecodeTuple(field);
      if (lhs_ >= tuple.size()) continue;
      if (rhs_is_column_) {
        if (rhs_column_ < tuple.size() &&
            tuple[lhs_] == tuple[rhs_column_]) {
          kept.push_back(std::move(field));
        }
      } else if (tuple[lhs_] == rhs_constant_) {
        kept.push_back(std::move(field));
      }
    }
    batch.tuples = std::move(kept);
    return batch;
  }

 private:
  std::size_t lhs_;
  bool rhs_is_column_;
  std::size_t rhs_column_;
  std::string rhs_constant_;
};

class ProjectMapOp final : public UnaryOp {
 public:
  ProjectMapOp(StreamOperatorPtr child, std::vector<std::size_t> columns,
               OperatorEnv env)
      : UnaryOp(std::move(child), env), columns_(std::move(columns)) {}

  Status Open() override { return child_->Open(); }

  Result<TupleBatch> Next() override {
    Result<TupleBatch> next = child_->Next();
    if (!next.ok()) return next;
    TupleBatch batch = std::move(next).value();
    for (std::string& field : batch.tuples) {
      const Tuple tuple = DecodeTuple(field);
      Tuple projected;
      projected.reserve(columns_.size());
      for (const std::size_t column : columns_) {
        projected.push_back(column < tuple.size() ? tuple[column]
                                                  : std::string());
      }
      field = EncodeTuple(projected);
    }
    return batch;
  }

 private:
  std::vector<std::size_t> columns_;
};

/// "k1,k2,...;payload": the join-key prefix a field sort groups on.
std::string EncodeWithKey(const std::string& field,
                          const std::vector<std::size_t>& key_columns) {
  const Tuple tuple = DecodeTuple(field);
  std::string encoded;
  for (std::size_t i = 0; i < key_columns.size(); ++i) {
    if (i > 0) encoded += ',';
    if (key_columns[i] < tuple.size()) encoded += tuple[key_columns[i]];
  }
  encoded += ';';
  encoded += field;
  return encoded;
}

class KeyEncodeOp final : public UnaryOp {
 public:
  KeyEncodeOp(StreamOperatorPtr child, std::vector<std::size_t> key_columns,
              OperatorEnv env)
      : UnaryOp(std::move(child), env),
        key_columns_(std::move(key_columns)) {}

  Status Open() override { return child_->Open(); }

  Result<TupleBatch> Next() override {
    Result<TupleBatch> next = child_->Next();
    if (!next.ok()) return next;
    TupleBatch batch = std::move(next).value();
    for (std::string& field : batch.tuples) {
      if (field.find(';') != std::string::npos) {
        return Status::InvalidArgument(
            "join key encoding requires ';'-free attribute values");
      }
      field = EncodeWithKey(field, key_columns_);
    }
    return batch;
  }

 private:
  std::vector<std::size_t> key_columns_;
};

// ---------------------------------------------------------------------
// Append

class AppendOp final : public BinaryOp {
 public:
  using BinaryOp::BinaryOp;

  Status Open() override {
    RSTLAB_RETURN_IF_ERROR(a_->Open());
    return b_->Open();
  }

  Result<TupleBatch> Next() override {
    if (!a_done_) {
      Result<TupleBatch> next = a_->Next();
      if (!next.ok()) return next;
      TupleBatch batch = std::move(next).value();
      if (!batch.at_end) return batch;
      a_done_ = true;
      if (!batch.tuples.empty()) {
        batch.at_end = false;  // b still to come
        return batch;
      }
    }
    return b_->Next();
  }

 private:
  bool a_done_ = false;
};

// ---------------------------------------------------------------------
// Sort

/// Drains the child onto tape 0 of a private 3-tape scratch context,
/// sorts it with the configured geometry (spill lanes on the caller's
/// backend), then streams the sorted fields. The scratch context's
/// measured report — drain writes, every sort pass, the read-out scan —
/// is folded into the query bill exactly once, at Close, on success and
/// failure alike; destroying the context releases the lanes (and, on
/// the file backend, unlinks the temp files).
class SortOp final : public UnaryOp {
 public:
  SortOp(StreamOperatorPtr child, bool dedup, OperatorEnv env)
      : UnaryOp(std::move(child), env), dedup_(dedup) {}

  Status Open() override {
    RSTLAB_RETURN_IF_ERROR(child_->Open());
    scratch_ =
        std::make_unique<stmodel::StContext>(3, *env_.storage);
    tape::Tape& t = scratch_->tape(0);
    std::string chunk;
    std::size_t longest = 0;
    for (;;) {
      Result<TupleBatch> next = child_->Next();
      if (!next.ok()) return next.status();
      TupleBatch batch = std::move(next).value();
      for (std::string& field : batch.tuples) {
        longest = std::max(longest, field.size());
        chunk += field;
        chunk += stmodel::kFieldSeparator;
        if (chunk.size() >= 4096) {
          t.WriteForward(chunk);
          chunk.clear();
        }
      }
      if (batch.at_end) break;
    }
    if (!chunk.empty()) t.WriteForward(chunk);
    env_.cost->RaiseInternal(BufferBits(longest + 1));
    // The child's stream is consumed; release its resources before the
    // sort runs so peak scratch (child lanes + ours) never overlaps.
    child_->Close();
    child_closed_ = true;
    if (env_.config->inject_failure_in_sort) {
      return Status::Internal(
          "injected engine fault: sort failed after drain");
    }
    Status sorted =
        sorting::UsesParallelPath(env_.config->sort)
            ? sorting::ParallelSortFieldsOnTape(*scratch_, 0,
                                                env_.config->sort)
            : sorting::SortFieldsOnTapes(*scratch_, 0, 1, 2);
    RSTLAB_RETURN_IF_ERROR(sorted);
    env_.cost->CountSort();
    stmodel::Rewind(t);
    return Status::OK();
  }

  Result<TupleBatch> Next() override {
    TupleBatch batch;
    std::size_t bytes = 0;
    tape::Tape& t = scratch_->tape(0);
    while (batch.tuples.size() < env_.config->batch_size) {
      if (stmodel::AtEnd(t)) {
        batch.at_end = true;
        break;
      }
      std::string field = stmodel::ReadField(t);
      env_.cost->RaiseInternal(BufferBits(field.size()));
      if (dedup_ && previous_.has_value() && field == *previous_) continue;
      if (dedup_) previous_ = field;
      bytes += field.size() + 1;
      batch.tuples.push_back(std::move(field));
    }
    env_.cost->RaiseInternal(BufferBits(bytes));
    return batch;
  }

 protected:
  void CloseImpl() override {
    if (scratch_ != nullptr) {
      env_.cost->FoldScratch(scratch_->Report());
      scratch_.reset();
    }
  }

  void Close() override {
    if (closed_) return;
    closed_ = true;
    CloseImpl();
    if (!child_closed_) child_->Close();
  }

 private:
  bool dedup_;
  bool child_closed_ = false;
  std::unique_ptr<stmodel::StContext> scratch_;
  std::optional<std::string> previous_;
};

// ---------------------------------------------------------------------
// Sorted-merge set operators (difference / intersection)

class MergeSetOp final : public BinaryOp {
 public:
  MergeSetOp(StreamOperatorPtr a, StreamOperatorPtr b, SetOpKind kind,
             OperatorEnv env)
      : BinaryOp(std::move(a), std::move(b), env),
        kind_(kind),
        pull_a_(a_.get()),
        pull_b_(b_.get()) {}

  Status Open() override {
    RSTLAB_RETURN_IF_ERROR(a_->Open());
    RSTLAB_RETURN_IF_ERROR(b_->Open());
    RSTLAB_RETURN_IF_ERROR(pull_a_.NextTuple(cur_a_));
    return pull_b_.NextTuple(cur_b_);
  }

  Result<TupleBatch> Next() override {
    TupleBatch batch;
    std::size_t bytes = 0;
    const bool difference = kind_ == SetOpKind::kDifference;
    while (batch.tuples.size() < env_.config->batch_size) {
      if (!cur_a_.has_value()) {
        batch.at_end = true;
        break;
      }
      // Collapse duplicate A-tuples (children are sorted, not
      // necessarily distinct) — the AdvanceDistinct walk.
      if (prev_a_.has_value() && *cur_a_ == *prev_a_) {
        RSTLAB_RETURN_IF_ERROR(pull_a_.NextTuple(cur_a_));
        continue;
      }
      while (cur_b_.has_value() && *cur_b_ < *cur_a_) {
        RSTLAB_RETURN_IF_ERROR(pull_b_.NextTuple(cur_b_));
      }
      const bool in_b = cur_b_.has_value() && *cur_b_ == *cur_a_;
      prev_a_ = *cur_a_;
      env_.cost->RaiseInternal(
          BufferBits(cur_a_->size() +
                     (cur_b_.has_value() ? cur_b_->size() : 0) + 2));
      if (in_b != difference) {
        bytes += cur_a_->size() + 1;
        batch.tuples.push_back(*std::move(cur_a_));
      }
      RSTLAB_RETURN_IF_ERROR(pull_a_.NextTuple(cur_a_));
    }
    env_.cost->RaiseInternal(BufferBits(bytes));
    return batch;
  }

 private:
  SetOpKind kind_;
  BatchedPull pull_a_;
  BatchedPull pull_b_;
  std::optional<std::string> cur_a_;
  std::optional<std::string> cur_b_;
  std::optional<std::string> prev_a_;
};

// ---------------------------------------------------------------------
// Merge join

/// The "k1,...;payload" prefix up to and including the ';' — compared
/// as a raw string, which is exactly the order the field sort put the
/// streams in, so grouping by equal prefix is grouping by equal key.
std::string_view KeyOf(const std::string& encoded) {
  const std::size_t semi = encoded.find(';');
  return std::string_view(encoded).substr(0, semi + 1);
}

std::string_view PayloadOf(const std::string& encoded) {
  const std::size_t semi = encoded.find(';');
  return std::string_view(encoded).substr(semi + 1);
}

class MergeJoinOp final : public BinaryOp {
 public:
  MergeJoinOp(StreamOperatorPtr a, StreamOperatorPtr b, OperatorEnv env)
      : BinaryOp(std::move(a), std::move(b), env),
        pull_a_(a_.get()),
        pull_b_(b_.get()) {}

  Status Open() override {
    RSTLAB_RETURN_IF_ERROR(a_->Open());
    RSTLAB_RETURN_IF_ERROR(b_->Open());
    RSTLAB_RETURN_IF_ERROR(pull_a_.NextTuple(cur_a_));
    return pull_b_.NextTuple(cur_b_);
  }

  Result<TupleBatch> Next() override {
    TupleBatch batch;
    std::size_t bytes = 0;
    while (batch.tuples.size() < env_.config->batch_size) {
      // Drain the pending A-tuple x B-group pairings first.
      if (group_pos_ < group_.size()) {
        std::string combined(PayloadOf(*cur_a_));
        combined += ',';
        combined += group_[group_pos_++];
        bytes += combined.size() + 1;
        batch.tuples.push_back(std::move(combined));
        continue;
      }
      if (group_pos_ >= group_.size() && !group_.empty()) {
        // Current A-tuple exhausted the group; advance A and re-pair if
        // it still matches the buffered key.
        RSTLAB_RETURN_IF_ERROR(pull_a_.NextTuple(cur_a_));
        if (cur_a_.has_value() && KeyOf(*cur_a_) == group_key_) {
          group_pos_ = 0;
          continue;
        }
        group_.clear();
        group_key_.clear();
        group_pos_ = 0;
        group_bytes_ = 0;
      }
      if (!cur_a_.has_value() || !cur_b_.has_value()) {
        batch.at_end = true;
        break;
      }
      const std::string_view key_a = KeyOf(*cur_a_);
      const std::string_view key_b = KeyOf(*cur_b_);
      if (key_a < key_b) {
        RSTLAB_RETURN_IF_ERROR(pull_a_.NextTuple(cur_a_));
        continue;
      }
      if (key_b < key_a) {
        RSTLAB_RETURN_IF_ERROR(pull_b_.NextTuple(cur_b_));
        continue;
      }
      // Equal keys: buffer the whole B-group in internal memory
      // (metered; bounded by the largest same-key cluster, 1 tuple when
      // keys are unique) and pair it with every matching A-tuple.
      group_key_ = std::string(key_b);
      group_.clear();
      group_bytes_ = 0;
      group_pos_ = 0;
      while (cur_b_.has_value() && KeyOf(*cur_b_) == group_key_) {
        group_.emplace_back(PayloadOf(*cur_b_));
        group_bytes_ += group_.back().size() + 1;
        env_.cost->RaiseInternal(BufferBits(group_bytes_));
        RSTLAB_RETURN_IF_ERROR(pull_b_.NextTuple(cur_b_));
      }
    }
    env_.cost->RaiseInternal(BufferBits(bytes));
    return batch;
  }

 private:
  BatchedPull pull_a_;
  BatchedPull pull_b_;
  std::optional<std::string> cur_a_;
  std::optional<std::string> cur_b_;
  std::string group_key_;
  std::vector<std::string> group_;
  std::size_t group_bytes_ = 0;
  std::size_t group_pos_ = 0;
};

// ---------------------------------------------------------------------
// Product

/// The Theorem 11 doubling construction, operator-shaped: drain A to
/// scratch tape 0 and B to tape 1, replicate B to |A| copies by
/// repeated doubling between tapes 1 and 2 (two append passes per
/// doubling, O(log |A|) passes), then pair tape 0 against the replicas
/// in one streaming pass.
class ProductOp final : public BinaryOp {
 public:
  using BinaryOp::BinaryOp;

  Status Open() override {
    RSTLAB_RETURN_IF_ERROR(a_->Open());
    RSTLAB_RETURN_IF_ERROR(b_->Open());
    scratch_ =
        std::make_unique<stmodel::StContext>(3, *env_.storage);
    RSTLAB_RETURN_IF_ERROR(Drain(*a_, scratch_->tape(0), a_count_));
    RSTLAB_RETURN_IF_ERROR(Drain(*b_, scratch_->tape(1), b_count_));
    a_->Close();
    b_->Close();
    children_closed_ = true;
    if (env_.config->inject_failure_in_sort) {
      return Status::Internal(
          "injected engine fault: product failed after drain");
    }
    if (a_count_ == 0 || b_count_ == 0) {
      done_ = true;
      return Status::OK();
    }
    Replicate();
    stmodel::Rewind(scratch_->tape(0));
    stmodel::Rewind(scratch_->tape(replica_tape_));
    return Status::OK();
  }

  Result<TupleBatch> Next() override {
    TupleBatch batch;
    std::size_t bytes = 0;
    tape::Tape& a = scratch_->tape(0);
    tape::Tape& replicas = scratch_->tape(replica_tape_);
    while (!done_ && batch.tuples.size() < env_.config->batch_size) {
      if (b_index_ == 0) {
        if (a_index_ >= a_count_) {
          done_ = true;
          break;
        }
        current_a_ = stmodel::ReadField(a);
        env_.cost->RaiseInternal(BufferBits(current_a_.size()));
      }
      std::string b_field = stmodel::ReadField(replicas);
      env_.cost->RaiseInternal(
          BufferBits(current_a_.size() + b_field.size() + 1));
      std::string combined = current_a_;
      combined += ',';
      combined += b_field;
      bytes += combined.size() + 1;
      batch.tuples.push_back(std::move(combined));
      if (++b_index_ >= b_count_) {
        b_index_ = 0;
        ++a_index_;
      }
    }
    if (done_) batch.at_end = true;
    env_.cost->RaiseInternal(BufferBits(bytes));
    return batch;
  }

 protected:
  void CloseImpl() override {
    if (scratch_ != nullptr) {
      env_.cost->FoldScratch(scratch_->Report());
      scratch_.reset();
    }
  }

  void Close() override {
    if (closed_) return;
    closed_ = true;
    CloseImpl();
    if (!children_closed_) {
      a_->Close();
      b_->Close();
    }
  }

 private:
  Status Drain(StreamOperator& child, tape::Tape& t, std::size_t& count) {
    std::string chunk;
    std::size_t longest = 0;
    for (;;) {
      Result<TupleBatch> next = child.Next();
      if (!next.ok()) return next.status();
      TupleBatch batch = std::move(next).value();
      for (std::string& field : batch.tuples) {
        longest = std::max(longest, field.size());
        chunk += field;
        chunk += stmodel::kFieldSeparator;
        ++count;
        if (chunk.size() >= 4096) {
          t.WriteForward(chunk);
          chunk.clear();
        }
      }
      if (batch.at_end) break;
    }
    if (!chunk.empty()) t.WriteForward(chunk);
    env_.cost->RaiseInternal(BufferBits(longest + 1));
    stmodel::Rewind(t);
    return Status::OK();
  }

  /// Doubles the B-copies between tapes 1 and 2 until there are at
  /// least a_count_ of them; replica_tape_ ends as the tape holding
  /// them. Identical passes to the TapeEvaluator's EvalProduct.
  void Replicate() {
    std::size_t copies = 1;
    std::size_t src = 1;
    std::size_t dst = 2;
    while (copies < a_count_) {
      tape::Tape& from = scratch_->tape(src);
      tape::Tape& to = scratch_->tape(dst);
      to.Seek(0);
      for (int pass = 0; pass < 2; ++pass) {
        stmodel::Rewind(from);
        for (std::size_t i = 0; i < copies * b_count_; ++i) {
          stmodel::CopyField(from, to);
        }
      }
      copies *= 2;
      std::swap(src, dst);
    }
    replica_tape_ = src;
  }

  std::unique_ptr<stmodel::StContext> scratch_;
  bool children_closed_ = false;
  bool done_ = false;
  std::size_t a_count_ = 0;
  std::size_t b_count_ = 0;
  std::size_t replica_tape_ = 1;
  std::size_t a_index_ = 0;
  std::size_t b_index_ = 0;
  std::string current_a_;
};

}  // namespace

StreamOperatorPtr MakeScan(const RelationSpool::Lane* lane,
                           OperatorEnv env) {
  return std::make_unique<ScanOp>(lane, env);
}

StreamOperatorPtr MakeFilter(StreamOperatorPtr child, std::size_t lhs,
                             bool rhs_is_column, std::size_t rhs_column,
                             std::string rhs_constant, OperatorEnv env) {
  return std::make_unique<FilterOp>(std::move(child), lhs, rhs_is_column,
                                    rhs_column, std::move(rhs_constant),
                                    env);
}

StreamOperatorPtr MakeProjectMap(StreamOperatorPtr child,
                                 std::vector<std::size_t> columns,
                                 OperatorEnv env) {
  return std::make_unique<ProjectMapOp>(std::move(child),
                                        std::move(columns), env);
}

StreamOperatorPtr MakeAppend(StreamOperatorPtr a, StreamOperatorPtr b,
                             OperatorEnv env) {
  return std::make_unique<AppendOp>(std::move(a), std::move(b), env);
}

StreamOperatorPtr MakeSort(StreamOperatorPtr child, bool dedup,
                           OperatorEnv env) {
  return std::make_unique<SortOp>(std::move(child), dedup, env);
}

StreamOperatorPtr MakeMergeSetOp(StreamOperatorPtr a, StreamOperatorPtr b,
                                 SetOpKind kind, OperatorEnv env) {
  return std::make_unique<MergeSetOp>(std::move(a), std::move(b), kind,
                                      env);
}

StreamOperatorPtr MakeKeyEncode(StreamOperatorPtr child,
                                std::vector<std::size_t> key_columns,
                                OperatorEnv env) {
  return std::make_unique<KeyEncodeOp>(std::move(child),
                                       std::move(key_columns), env);
}

StreamOperatorPtr MakeMergeJoin(StreamOperatorPtr a, StreamOperatorPtr b,
                                OperatorEnv env) {
  return std::make_unique<MergeJoinOp>(std::move(a), std::move(b), env);
}

StreamOperatorPtr MakeProduct(StreamOperatorPtr a, StreamOperatorPtr b,
                              OperatorEnv env) {
  return std::make_unique<ProductOp>(std::move(a), std::move(b), env);
}

}  // namespace rstlab::query::engine
