#ifndef RSTLAB_QUERY_ENGINE_SPOOL_H_
#define RSTLAB_QUERY_ENGINE_SPOOL_H_

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "extmem/storage.h"
#include "stmodel/st_context.h"
#include "util/status.h"

namespace rstlab::query::engine {

/// The shared-scan demultiplexer: ONE forward pass over the input tape
/// partitions the Theorem 11 tuple stream ("name,v1,v2,...#" fields)
/// into one immutable per-relation lane — a raw `extmem` storage on the
/// caller context's own backend, so gigabyte-scale inputs spill to disk
/// exactly like the sort's spill lanes. Every registered query then
/// reads the lanes through its own `SpoolCursor`s; the input tape is
/// never scanned again, which is what makes K concurrent queries cost
/// one input pass instead of K.
///
/// Lanes are write-once (sealed by Build) and only ever read afterwards;
/// concurrent cursor reads are serialized per lane with a mutex, since
/// the file backend's block cache mutates under reads. The serialization
/// order is not observable: lane content is immutable and the (r, s)
/// bills are derived from data, never from cache or interleaving state.
class RelationSpool {
 public:
  /// One relation's lane.
  struct Lane {
    std::unique_ptr<extmem::TapeStorage> storage;
    /// Cells used (payload bytes + one '#' per field).
    std::size_t cells = 0;
    /// Number of tuple fields.
    std::size_t fields = 0;
    /// Longest payload (encoded tuple) length.
    std::size_t max_field_len = 0;
    /// Attribute count of the first tuple (0 when empty).
    std::size_t arity = 0;
    mutable std::mutex mutex;
  };

  /// Builds the spool from the tuple stream on tape 0 of `ctx` in one
  /// forward scan (billed on `ctx` — the shared pass). Lanes are
  /// created on `ctx.storage_options()`.
  static Result<std::unique_ptr<RelationSpool>> Build(
      stmodel::StContext& ctx);

  /// Builds the spool from a Section 4 XML document on tape 0 of `ctx`:
  /// the child-axis walk instance/set*/item/string, driven by the
  /// streaming `XmlEventReader`, spools the string values below set1
  /// and set2 as two single-column relations named "set1" and "set2" —
  /// one forward scan, one read per input cell. Fails on documents not
  /// of the Section 4 shape (same diagnostics as `ExtractSetValues`).
  static Result<std::unique_ptr<RelationSpool>> BuildFromXml(
      stmodel::StContext& ctx);

  /// The lane of `relation`, or nullptr when the input stream had no
  /// such tuples (an empty relation, not an error).
  const Lane* lane(const std::string& relation) const;

  /// Relation names present, sorted.
  std::vector<std::string> names() const;

  /// Longest payload across all lanes.
  std::size_t max_field_len() const { return max_field_len_; }

  /// Total cells across all lanes.
  std::size_t total_cells() const { return total_cells_; }

 private:
  RelationSpool() = default;

  /// Appends one payload to `relation`'s lane (creating it on
  /// `options`), buffering writes in `pending`.
  Status Append(const std::string& relation, const std::string& payload,
                const extmem::StorageOptions& options,
                std::map<std::string, std::string>& pending);
  void Flush(std::map<std::string, std::string>& pending);

  std::map<std::string, std::unique_ptr<Lane>> lanes_;
  std::size_t max_field_len_ = 0;
  std::size_t total_cells_ = 0;
};

/// Forward reader over one spool lane: yields the '#'-terminated
/// payloads in lane order, reading the storage in chunks under the
/// lane's mutex. Each full pass over the lane is one sequential scan;
/// the Scan operator charges it to the query's CostMeter.
class SpoolCursor {
 public:
  /// A cursor at the lane's start. `lane` may be nullptr (an empty
  /// relation): the cursor is immediately exhausted.
  explicit SpoolCursor(const RelationSpool::Lane* lane,
                       std::size_t chunk_cells = 4096);

  /// The next payload, or nullopt when the lane is exhausted.
  std::optional<std::string> NextField();

  /// Back to the lane start (a fresh pass).
  void Rewind();

 private:
  const RelationSpool::Lane* lane_;
  std::size_t chunk_cells_;
  std::size_t offset_ = 0;     // next unread cell of the lane
  std::string buffer_;         // read-ahead chunk
  std::size_t buffer_pos_ = 0;
};

}  // namespace rstlab::query::engine

#endif  // RSTLAB_QUERY_ENGINE_SPOOL_H_
