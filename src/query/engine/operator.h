#ifndef RSTLAB_QUERY_ENGINE_OPERATOR_H_
#define RSTLAB_QUERY_ENGINE_OPERATOR_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "extmem/storage.h"
#include "obs/metrics.h"
#include "sorting/sort_config.h"
#include "tape/resource_meter.h"
#include "util/status.h"

namespace rstlab::query::engine {

/// One pull of tuples from a stream operator: a batch of encoded tuple
/// payloads ("v1,v2,..." — the stack-tape field encoding of the
/// Theorem 11 evaluator) plus an end-of-stream marker. A batch may be
/// empty only when `at_end` is set.
struct TupleBatch {
  std::vector<std::string> tuples;
  bool at_end = false;
};

/// Engine knobs. Everything that shapes the computation (batch size,
/// sort geometry) is thread-count- and backend-independent, so query
/// results and (r, s) bills are bit-identical across `threads`, across
/// storage backends and across shared-scan co-tenants — the identity
/// the `query-engine` conform suite enforces.
struct EngineConfig {
  /// Tuples per Next() batch (also the internal-memory granularity the
  /// pipeline buffers are metered at).
  std::size_t batch_size = 64;
  /// Sort geometry for the operators' spill-lane sorts
  /// (`sorting::SortForDecider` semantics: fanout 0 = serial cascade,
  /// >= 2 = parallel k-way on spill lanes).
  sorting::SortConfig sort = sorting::DefaultSortConfig();
  /// Worker threads for shared-scan evaluation of registered queries.
  std::size_t threads = 1;
  /// Test hook: Sort/Join operators fail (Status) after draining their
  /// child but before sorting — exercises the mid-stream
  /// cleanup-on-error path, like `SortConfig::inject_failure_before_merge`
  /// one layer down. Never set outside tests.
  bool inject_failure_in_sort = false;
  /// When set, per-query cost totals are published as `query.*`
  /// counters/gauges after each ExecuteSharedScan.
  obs::MetricsRegistry* metrics = nullptr;
};

/// The per-query (r, s) bill of one streaming evaluation, in the units
/// of Definition 1. The shared input pass is billed once on the caller's
/// context; everything an individual query additionally incurs — spool
/// passes, spill-lane sorts, join group rescans, pipeline buffers — is
/// metered here, deterministically, so the bill is bit-identical on both
/// storage backends and at every thread count.
struct QueryCost {
  /// 1 + reversals this query charged (spool passes, scratch sorts,
  /// rescans). The paper's r(N) bounds this.
  std::uint64_t scan_bound = 1;
  /// High-water internal bits (pipeline buffers + sort internal state).
  std::size_t internal_bits = 0;
  /// External scratch cells used (spill lanes, operand tapes).
  std::size_t external_cells = 0;
  /// Number of spill-lane sorts executed.
  std::uint64_t sorts = 0;
  /// Tuples the root operator emitted.
  std::uint64_t tuples_out = 0;

  /// Renders e.g. "r=9 s=1664 ext=128 sorts=2 out=5".
  std::string ToString() const;

  /// True iff the (r, s) bills agree (the conform-suite identity;
  /// external cells and sort counts included, tuples_out excluded since
  /// it is implied by the result multiset).
  bool SameBill(const QueryCost& other) const {
    return scan_bound == other.scan_bound &&
           internal_bits == other.internal_bits &&
           external_cells == other.external_cells && sorts == other.sorts;
  }
};

/// Deterministic accumulator for one query's QueryCost. Operators call
/// the Charge* methods with values derived only from the data (never
/// from wall time, thread identity or cache state).
class CostMeter {
 public:
  /// `reversals` extra head-direction changes (e.g. 2 per sequential
  /// pass + rewind of a spool lane or scratch tape).
  void ChargeReversals(std::uint64_t reversals) {
    cost_.scan_bound += reversals;
  }

  /// Folds the measured report of a private scratch context (a sort's
  /// spill lanes, a product's operand tapes) into the bill.
  void FoldScratch(const tape::ResourceReport& report) {
    cost_.scan_bound += report.scan_bound - 1;
    cost_.external_cells += report.external_space;
    RaiseInternal(report.internal_space);
  }

  /// Raises the internal high-water mark to at least `bits`.
  void RaiseInternal(std::size_t bits) {
    cost_.internal_bits = std::max(cost_.internal_bits, bits);
  }

  void CountSort() { ++cost_.sorts; }
  void CountTuplesOut(std::uint64_t n) { cost_.tuples_out += n; }

  const QueryCost& cost() const { return cost_; }

 private:
  QueryCost cost_;
};

/// Everything an operator needs besides its children: the engine
/// config, the storage recipe for scratch lanes (the caller context's
/// own backend, like the parallel sort's spill lanes) and the query's
/// cost meter. Plain pointers — the executor owns the pointees for the
/// lifetime of the pipeline.
struct OperatorEnv {
  const EngineConfig* config = nullptr;
  const extmem::StorageOptions* storage = nullptr;
  CostMeter* cost = nullptr;
};

/// A pull-based stream operator over tuple batches — the volcano
/// iterator of the engine, with explicit resource lifecycle:
///
///   Open()  acquires scratch resources and opens children;
///   Next()  returns the next batch (at_end once exhausted; calling
///           again after at_end stays at_end);
///   Close() releases every scratch resource (spill lanes, scratch
///           contexts, buffered groups). Idempotent, and safe to call
///           after a failed Open/Next — the operator-lifecycle tests
///           drive exactly those paths.
///
/// Operators are single-use: one Open/Next*/Close cycle per instance.
class StreamOperator {
 public:
  virtual ~StreamOperator() = default;

  virtual Status Open() = 0;
  virtual Result<TupleBatch> Next() = 0;
  virtual void Close() = 0;
};

using StreamOperatorPtr = std::unique_ptr<StreamOperator>;

}  // namespace rstlab::query::engine

#endif  // RSTLAB_QUERY_ENGINE_OPERATOR_H_
