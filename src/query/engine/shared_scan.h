#ifndef RSTLAB_QUERY_ENGINE_SHARED_SCAN_H_
#define RSTLAB_QUERY_ENGINE_SHARED_SCAN_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "check/query_certificate.h"
#include "query/engine/operator.h"
#include "query/engine/plan.h"
#include "query/relation.h"
#include "stmodel/st_context.h"
#include "util/status.h"

namespace rstlab::query::engine {

/// One query registered for a shared-scan pass.
struct QueryRequest {
  RelAlgExprPtr expr;
  /// Metrics label; "q<index>" when empty.
  std::string label;
};

/// One query's evaluation record.
struct QueryOutcome {
  /// Per-query failure (admission rejection, engine fault, RST015
  /// post-check). The other fields are meaningful only when OK —
  /// except `plan` and `certificate`, which are always filled.
  Status status = Status::OK();
  /// Normalized result relation.
  Relation result;
  /// The per-query (r, s) bill (excludes the shared input pass, which
  /// is billed once on the caller's context).
  QueryCost cost;
  /// DescribePlan rendering.
  std::string plan;
  /// The pre-execution plan certificate.
  check::QueryCertificate certificate;
};

/// Executor policy.
struct SharedScanOptions {
  EngineConfig config;
  PlanOptions plan;
  /// Parse tape 0 as a Section 4 XML document (lanes "set1"/"set2")
  /// instead of a Theorem 11 tuple stream.
  bool xml = false;
  /// Upgrade every certificate with the promise that join build keys
  /// are unique (see check::QueryPlanShape::joins_unique_keys).
  bool unique_join_keys = false;
  /// Post-execution RST015 check of the measured bill against the
  /// certificate.
  bool certify = true;
  /// Pre-execution RST018 admission gate: reject plans whose certified
  /// bounds escape the Theorem 11 envelope coeff * ceil(log2 N) over
  /// [admit_n_lo, admit_n_hi] before running them.
  bool admit = false;
  std::uint64_t admit_scan_coeff = 1 << 12;
  std::uint64_t admit_bits_coeff = 1 << 22;
  std::size_t admit_n_lo = 1 << 8;
  std::size_t admit_n_hi = 1 << 24;
};

/// Evaluates every registered query against the input on tape 0 of
/// `ctx` with ONE pass over the input: the pass demultiplexes the
/// stream into per-relation spool lanes (billed on `ctx`), then all
/// queries run over the immutable lanes — on `config.threads` workers —
/// each with its own pipeline, scratch lanes and deterministic
/// CostMeter. Results, bills and certificates are bit-identical across
/// thread counts, storage backends and co-registered queries; the
/// conform suite pins exactly that.
///
/// Fails as a whole only when the input itself is malformed (spool
/// build failure); per-query failures land in the outcome's status.
/// When `config.metrics` is set, per-query bills are published as
/// query.<label>.* gauges plus query.executed / query.failed counters.
Result<std::vector<QueryOutcome>> ExecuteSharedScan(
    stmodel::StContext& ctx, const std::vector<QueryRequest>& queries,
    const SharedScanOptions& options);

}  // namespace rstlab::query::engine

#endif  // RSTLAB_QUERY_ENGINE_SHARED_SCAN_H_
