#ifndef RSTLAB_QUERY_ENGINE_PLAN_H_
#define RSTLAB_QUERY_ENGINE_PLAN_H_

#include <cstddef>
#include <string>

#include "check/query_certificate.h"
#include "query/engine/operator.h"
#include "query/engine/spool.h"
#include "query/relalg.h"
#include "util/status.h"

namespace rstlab::query::engine {

/// Plan compiler knobs.
struct PlanOptions {
  /// Rewrite σ_{col=col}(A × B) chains with cross-side conditions into
  /// sort-based merge joins (the engine's join operator). Off = keep
  /// the doubling-product shape of the reference evaluator.
  bool merge_join = true;
};

/// The attribute count of `expr`'s output tuples, derived from the
/// spool's lane arities (0 for streams over empty relations — harmless,
/// every operator over them is empty).
std::size_t StaticArity(const RelAlgExprPtr& expr,
                        const RelationSpool& spool);

/// Compiles `expr` into a pull pipeline over `spool`'s lanes:
/// leaves scan lanes, unions/projections sort-and-dedup on spill lanes,
/// difference/intersection merge two sorted streams, products run the
/// Theorem 11 doubling construction, and (with opts.merge_join)
/// selection-over-product chains whose conditions bridge the two sides
/// become sort-based merge joins. The returned operator is unopened;
/// the caller drives Open/Next*/Close and owns `env`'s pointees.
Result<StreamOperatorPtr> BuildPipeline(const RelAlgExprPtr& expr,
                                        const RelationSpool& spool,
                                        OperatorEnv env,
                                        const PlanOptions& opts = {});

/// The certificate-relevant shape of the pipeline BuildPipeline would
/// compile for `expr` — same traversal, no operators built. Feed to
/// check::CertifyQueryPlan for the pre-execution admission gate.
check::QueryPlanShape AnalyzePlan(const RelAlgExprPtr& expr,
                                  const RelationSpool& spool,
                                  const EngineConfig& config,
                                  const PlanOptions& opts = {});

/// One-line plan rendering, e.g. "((R1 - R2) + (R2 - R1))".
std::string DescribePlan(const RelAlgExprPtr& expr);

}  // namespace rstlab::query::engine

#endif  // RSTLAB_QUERY_ENGINE_PLAN_H_
