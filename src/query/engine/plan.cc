#include "query/engine/plan.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "query/engine/operators.h"

namespace rstlab::query::engine {

namespace {

using Op = RelAlgExpr::Op;

Status ArityError(const char* what) {
  return Status::InvalidArgument(std::string("malformed expression: ") +
                                 what);
}

/// A selection-over-product chain rewritten as a merge join: the
/// cross-side column equalities become the join keys, everything else
/// stays as residual filters over the join output (which has the same
/// "a,b" tuple encoding as the product it replaces).
struct JoinRewrite {
  bool is_join = false;
  const RelAlgExpr* a = nullptr;
  const RelAlgExpr* b = nullptr;
  std::vector<std::size_t> a_keys;
  std::vector<std::size_t> b_keys;
  /// Residual selection nodes, innermost first.
  std::vector<const RelAlgExpr*> residual;
};

JoinRewrite DetectJoin(const RelAlgExpr& expr, const RelationSpool& spool,
                       const PlanOptions& opts) {
  JoinRewrite rewrite;
  if (!opts.merge_join) return rewrite;
  // Walk the maximal selection chain down to its base.
  std::vector<const RelAlgExpr*> chain;
  const RelAlgExpr* node = &expr;
  while (node->op == Op::kSelection && node->children.size() == 1 &&
         node->children[0] != nullptr) {
    chain.push_back(node);
    node = node->children[0].get();
  }
  if (node->op != Op::kProduct || node->children.size() != 2 ||
      node->children[0] == nullptr || node->children[1] == nullptr) {
    return rewrite;
  }
  RelAlgExprPtr a_expr = node->children[0];
  RelAlgExprPtr b_expr = node->children[1];
  const std::size_t a_arity = StaticArity(a_expr, spool);
  const std::size_t b_arity = StaticArity(b_expr, spool);
  for (const RelAlgExpr* sel : chain) {
    const std::size_t l = sel->lhs_column;
    const std::size_t r = sel->rhs_column;
    const bool cross = sel->rhs_is_column &&
                       std::min(l, r) < a_arity &&
                       std::max(l, r) >= a_arity &&
                       std::max(l, r) < a_arity + b_arity;
    if (cross) {
      rewrite.a_keys.push_back(std::min(l, r));
      rewrite.b_keys.push_back(std::max(l, r) - a_arity);
    } else {
      rewrite.residual.push_back(sel);
    }
  }
  if (rewrite.a_keys.empty()) return rewrite;
  // Innermost-first residual order (chain was collected outermost
  // first) so filters apply in the order the reference composes them.
  std::reverse(rewrite.residual.begin(), rewrite.residual.end());
  rewrite.is_join = true;
  rewrite.a = a_expr.get();
  rewrite.b = b_expr.get();
  return rewrite;
}

Result<StreamOperatorPtr> Build(const RelAlgExpr& expr,
                                const RelationSpool& spool, OperatorEnv env,
                                const PlanOptions& opts);

Result<StreamOperatorPtr> BuildChild(const RelAlgExpr& parent,
                                     std::size_t index,
                                     const RelationSpool& spool,
                                     OperatorEnv env,
                                     const PlanOptions& opts) {
  if (index >= parent.children.size() || parent.children[index] == nullptr) {
    return ArityError("missing operand");
  }
  return Build(*parent.children[index], spool, env, opts);
}

StreamOperatorPtr SortedKeyed(StreamOperatorPtr input,
                              std::vector<std::size_t> keys,
                              OperatorEnv env) {
  return MakeSort(MakeKeyEncode(std::move(input), std::move(keys), env),
                  /*dedup=*/false, env);
}

StreamOperatorPtr ApplyFilter(StreamOperatorPtr input,
                              const RelAlgExpr& sel, OperatorEnv env) {
  return MakeFilter(std::move(input), sel.lhs_column, sel.rhs_is_column,
                    sel.rhs_column, sel.rhs_constant, env);
}

Result<StreamOperatorPtr> Build(const RelAlgExpr& expr,
                                const RelationSpool& spool, OperatorEnv env,
                                const PlanOptions& opts) {
  switch (expr.op) {
    case Op::kRelation:
      return MakeScan(spool.lane(expr.relation_name), env);
    case Op::kUnion: {
      Result<StreamOperatorPtr> a = BuildChild(expr, 0, spool, env, opts);
      if (!a.ok()) return a;
      Result<StreamOperatorPtr> b = BuildChild(expr, 1, spool, env, opts);
      if (!b.ok()) return b;
      return MakeSort(MakeAppend(std::move(a).value(), std::move(b).value(),
                                 env),
                      /*dedup=*/true, env);
    }
    case Op::kDifference:
    case Op::kIntersection: {
      Result<StreamOperatorPtr> a = BuildChild(expr, 0, spool, env, opts);
      if (!a.ok()) return a;
      Result<StreamOperatorPtr> b = BuildChild(expr, 1, spool, env, opts);
      if (!b.ok()) return b;
      const SetOpKind kind = expr.op == Op::kDifference
                                 ? SetOpKind::kDifference
                                 : SetOpKind::kIntersection;
      return MakeMergeSetOp(
          MakeSort(std::move(a).value(), /*dedup=*/false, env),
          MakeSort(std::move(b).value(), /*dedup=*/false, env), kind, env);
    }
    case Op::kProjection: {
      Result<StreamOperatorPtr> child =
          BuildChild(expr, 0, spool, env, opts);
      if (!child.ok()) return child;
      return MakeSort(
          MakeProjectMap(std::move(child).value(), expr.columns, env),
          /*dedup=*/true, env);
    }
    case Op::kProduct: {
      Result<StreamOperatorPtr> a = BuildChild(expr, 0, spool, env, opts);
      if (!a.ok()) return a;
      Result<StreamOperatorPtr> b = BuildChild(expr, 1, spool, env, opts);
      if (!b.ok()) return b;
      return MakeProduct(std::move(a).value(), std::move(b).value(), env);
    }
    case Op::kSelection: {
      const JoinRewrite rewrite = DetectJoin(expr, spool, opts);
      if (!rewrite.is_join) {
        Result<StreamOperatorPtr> child =
            BuildChild(expr, 0, spool, env, opts);
        if (!child.ok()) return child;
        return ApplyFilter(std::move(child).value(), expr, env);
      }
      Result<StreamOperatorPtr> a = Build(*rewrite.a, spool, env, opts);
      if (!a.ok()) return a;
      Result<StreamOperatorPtr> b = Build(*rewrite.b, spool, env, opts);
      if (!b.ok()) return b;
      StreamOperatorPtr joined = MakeMergeJoin(
          SortedKeyed(std::move(a).value(), rewrite.a_keys, env),
          SortedKeyed(std::move(b).value(), rewrite.b_keys, env), env);
      for (const RelAlgExpr* sel : rewrite.residual) {
        joined = ApplyFilter(std::move(joined), *sel, env);
      }
      return joined;
    }
  }
  return ArityError("unknown operator");
}

/// Shape accumulation: one traversal mirroring Build's operator
/// choices, returning the stream's (degree, max encoded tuple length).
struct StreamShape {
  unsigned degree = 1;
  std::size_t max_len = 1;
};

StreamShape Analyze(const RelAlgExpr& expr, const RelationSpool& spool,
                    const PlanOptions& opts, check::QueryPlanShape& shape) {
  StreamShape out;
  const auto has_child = [&expr](std::size_t i) {
    return i < expr.children.size() && expr.children[i] != nullptr;
  };
  const std::size_t needed = expr.op == Op::kRelation ? 0
                             : (expr.op == Op::kSelection ||
                                expr.op == Op::kProjection)
                                 ? 1
                                 : 2;
  for (std::size_t i = 0; i < needed; ++i) {
    if (!has_child(i)) return out;  // malformed; BuildPipeline rejects it
  }
  switch (expr.op) {
    case Op::kRelation: {
      ++shape.leaf_scans;
      ++shape.operators;
      const RelationSpool::Lane* lane = spool.lane(expr.relation_name);
      out.max_len = lane != nullptr ? std::max<std::size_t>(
                                          1, lane->max_field_len)
                                    : 1;
      shape.max_field_len = std::max(shape.max_field_len, out.max_len);
      return out;
    }
    case Op::kUnion: {
      StreamShape a = Analyze(*expr.children[0], spool, opts, shape);
      StreamShape b = Analyze(*expr.children[1], spool, opts, shape);
      out.degree = std::max(a.degree, b.degree);
      out.max_len = std::max(a.max_len, b.max_len);
      shape.sort_degrees.push_back(out.degree);
      shape.operators += 2;  // append + sort
      shape.max_field_len = std::max(shape.max_field_len, out.max_len);
      return out;
    }
    case Op::kDifference:
    case Op::kIntersection: {
      StreamShape a = Analyze(*expr.children[0], spool, opts, shape);
      StreamShape b = Analyze(*expr.children[1], spool, opts, shape);
      shape.sort_degrees.push_back(a.degree);
      shape.sort_degrees.push_back(b.degree);
      ++shape.merge_ops;
      shape.operators += 3;  // two sorts + merge
      out.degree = std::max(a.degree, b.degree);
      out.max_len = std::max(a.max_len, b.max_len);
      shape.max_field_len = std::max(shape.max_field_len, out.max_len);
      return out;
    }
    case Op::kProjection: {
      StreamShape child = Analyze(*expr.children[0], spool, opts, shape);
      out.degree = child.degree;
      out.max_len = expr.columns.empty()
                        ? 1
                        : expr.columns.size() * (child.max_len + 1);
      shape.sort_degrees.push_back(out.degree);
      shape.operators += 2;  // map + sort
      shape.max_field_len = std::max(shape.max_field_len, out.max_len);
      return out;
    }
    case Op::kProduct: {
      StreamShape a = Analyze(*expr.children[0], spool, opts, shape);
      StreamShape b = Analyze(*expr.children[1], spool, opts, shape);
      out.degree = a.degree + b.degree;
      out.max_len = a.max_len + b.max_len + 1;
      shape.product_degrees.push_back(out.degree);
      ++shape.operators;
      shape.max_field_len = std::max(shape.max_field_len, out.max_len);
      return out;
    }
    case Op::kSelection: {
      const JoinRewrite rewrite = DetectJoin(expr, spool, opts);
      if (!rewrite.is_join) {
        out = Analyze(*expr.children[0], spool, opts, shape);
        ++shape.operators;
        return out;
      }
      StreamShape a = Analyze(*rewrite.a, spool, opts, shape);
      StreamShape b = Analyze(*rewrite.b, spool, opts, shape);
      // Key-encoded sort records: "keys;payload" at most doubles the
      // payload length (keys are copied columns) plus separators.
      const std::size_t enc_a = 2 * a.max_len + 2;
      const std::size_t enc_b = 2 * b.max_len + 2;
      shape.sort_degrees.push_back(a.degree);
      shape.sort_degrees.push_back(b.degree);
      ++shape.joins;
      shape.join_group_degree =
          std::max(shape.join_group_degree, b.degree);
      shape.operators += 5 + rewrite.residual.size();
      out.degree = a.degree + b.degree;
      out.max_len = a.max_len + b.max_len + 1;
      shape.max_field_len = std::max(
          {shape.max_field_len, out.max_len, enc_a, enc_b});
      return out;
    }
  }
  return out;
}

}  // namespace

std::size_t StaticArity(const RelAlgExprPtr& expr,
                        const RelationSpool& spool) {
  if (expr == nullptr) return 0;
  switch (expr->op) {
    case Op::kRelation: {
      const RelationSpool::Lane* lane = spool.lane(expr->relation_name);
      return lane != nullptr ? lane->arity : 0;
    }
    case Op::kProduct:
      return (expr->children.size() > 0
                  ? StaticArity(expr->children[0], spool)
                  : 0) +
             (expr->children.size() > 1
                  ? StaticArity(expr->children[1], spool)
                  : 0);
    case Op::kProjection:
      return expr->columns.size();
    case Op::kUnion:
    case Op::kDifference:
    case Op::kIntersection:
    case Op::kSelection:
      return expr->children.empty()
                 ? 0
                 : StaticArity(expr->children[0], spool);
  }
  return 0;
}

Result<StreamOperatorPtr> BuildPipeline(const RelAlgExprPtr& expr,
                                        const RelationSpool& spool,
                                        OperatorEnv env,
                                        const PlanOptions& opts) {
  if (expr == nullptr) return ArityError("null expression");
  if (env.config == nullptr || env.storage == nullptr ||
      env.cost == nullptr) {
    return Status::InvalidArgument("incomplete operator environment");
  }
  return Build(*expr, spool, env, opts);
}

check::QueryPlanShape AnalyzePlan(const RelAlgExprPtr& expr,
                                  const RelationSpool& spool,
                                  const EngineConfig& config,
                                  const PlanOptions& opts) {
  check::QueryPlanShape shape;
  shape.batch_size = config.batch_size;
  shape.fanout = config.sort.fanout;
  shape.run_length = config.sort.run_length;
  // Join-key uniqueness is a workload promise the compiler cannot
  // derive; price the duplicate-key worst case unless the caller
  // upgrades the shape afterwards.
  shape.joins_unique_keys = false;
  if (expr != nullptr) Analyze(*expr, spool, opts, shape);
  return shape;
}

std::string DescribePlan(const RelAlgExprPtr& expr) {
  if (expr == nullptr) return "<null>";
  const RelAlgExpr& e = *expr;
  auto child = [&](std::size_t i) {
    return i < e.children.size() ? DescribePlan(e.children[i])
                                 : std::string("<missing>");
  };
  switch (e.op) {
    case Op::kRelation:
      return e.relation_name;
    case Op::kUnion:
      return "(" + child(0) + " + " + child(1) + ")";
    case Op::kDifference:
      return "(" + child(0) + " - " + child(1) + ")";
    case Op::kIntersection:
      return "(" + child(0) + " & " + child(1) + ")";
    case Op::kProduct:
      return "(" + child(0) + " x " + child(1) + ")";
    case Op::kProjection: {
      std::string cols;
      for (std::size_t i = 0; i < e.columns.size(); ++i) {
        if (i > 0) cols += ',';
        cols += std::to_string(e.columns[i]);
      }
      return "proj{" + cols + "}(" + child(0) + ")";
    }
    case Op::kSelection: {
      std::string cond = std::to_string(e.lhs_column);
      cond += e.rhs_is_column ? "=" + std::to_string(e.rhs_column)
                              : "='" + e.rhs_constant + "'";
      return "sel{" + cond + "}(" + child(0) + ")";
    }
  }
  return "<unknown>";
}

}  // namespace rstlab::query::engine
