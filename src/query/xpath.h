#ifndef RSTLAB_QUERY_XPATH_H_
#define RSTLAB_QUERY_XPATH_H_

#include <memory>
#include <string>
#include <vector>

#include "query/xml.h"

namespace rstlab::query {

/// XPath axes: the three the paper's Figure 1 query uses plus the
/// standard companions needed to express its common variations.
enum class Axis {
  kChild,
  kDescendant,
  kAncestor,
  kParent,
  kSelf,
  kDescendantOrSelf,
};

struct XPathExpr;
using XPathExprPtr = std::shared_ptr<const XPathExpr>;

/// One location step `axis::name[predicate]`.
struct XPathStep {
  Axis axis = Axis::kChild;
  std::string name_test;
  XPathExprPtr predicate;  // optional
};

/// A location path: a sequence of steps applied left to right.
using XPathPath = std::vector<XPathStep>;

/// A boolean XPath expression (predicate body) with the paper-relevant
/// forms: `not(e)`, the existential node-set comparison `path = path`
/// (true iff some node of the left set and some node of the right set
/// have equal string values — the "existential semantics" the proof of
/// Theorem 13 leans on), and plain node-set existence.
struct XPathExpr {
  enum class Kind {
    kNot,     // not(child)
    kEquals,  // lhs_path = rhs_path, existential
    kExists,  // lhs_path evaluates to a nonempty node set
  };

  Kind kind = Kind::kExists;
  XPathExprPtr child;  // kNot
  XPathPath lhs_path;
  XPathPath rhs_path;  // kEquals
};

/// Expression factories.
XPathExprPtr Not(XPathExprPtr e);
XPathExprPtr EqualsExpr(XPathPath lhs, XPathPath rhs);
XPathExprPtr ExistsExpr(XPathPath path);

/// Evaluates `path` from `context`, returning matching nodes in
/// document order without duplicates.
std::vector<const XmlNode*> EvalPath(const XmlNode& context,
                                     const XPathPath& path);

/// Evaluates a boolean expression at `context`.
bool EvalExpr(const XmlNode& context, const XPathExpr& expr);

/// Parses a location path from the paper's XPath syntax subset:
///
///   path      := step ('/' step)*
///   step      := axis '::' name? predicate?
///   axis      := 'child' | 'descendant' | 'ancestor' | 'parent'
///              | 'self' | 'descendant-or-self'
///   predicate := '[' expr ']'
///   expr      := 'not' '(' expr ')' | path '=' path | path
///
/// An omitted name test matches any element. Whitespace is
/// insignificant. This covers the paper's Figure 1 query verbatim:
///
///   ParseXPath("descendant::set1/child::item[not(child::string = "
///              "ancestor::instance/child::set2/child::item/"
///              "child::string)]")
Result<XPathPath> ParseXPath(const std::string& text);

/// The query of Figure 1:
///
///   descendant::set1 / child::item
///     [ not( child::string =
///            ancestor::instance/child::set2/child::item/child::string ) ]
///
/// which selects the <item> nodes below <set1> whose string does not
/// occur below <set2> — i.e. the elements of X − Y.
XPathPath PaperXPathQuery();

/// Streaming filtering (Theorem 13): true iff the query selects at least
/// one node of the document.
bool FilterMatches(const XmlNode& document_root, const XPathPath& query);

}  // namespace rstlab::query

#endif  // RSTLAB_QUERY_XPATH_H_
