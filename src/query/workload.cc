#include "query/workload.h"

#include <algorithm>
#include <vector>

#include "stmodel/tape_io.h"
#include "util/random.h"

namespace rstlab::query {

namespace {

/// Value width actually used: wide enough to index `count` distinct
/// values, within [1, 63].
std::size_t EffectiveLen(std::size_t value_len, std::size_t count) {
  std::size_t bits = 1;
  while ((std::size_t{1} << bits) < count && bits < 63) ++bits;
  return std::clamp<std::size_t>(value_len, bits, 63);
}

/// The fixed-width binary rendering of `index ^ mask` — XOR with a
/// seeded mask is a bijection, so distinct indices stay distinct while
/// the value set looks nothing like a counter.
std::string EncodeValue(std::uint64_t index, std::uint64_t mask,
                        std::size_t len) {
  std::string value(len, '0');
  const std::uint64_t v = index ^ mask;
  for (std::size_t b = 0; b < len; ++b) {
    if ((v >> (len - 1 - b)) & 1) value[b] = '1';
  }
  return value;
}

}  // namespace

RelationPairWorkload MakeRelationPair(const RelationPairSpec& spec) {
  RelationPairWorkload out;
  Rng rng(spec.seed);
  const std::size_t arity = std::max<std::size_t>(1, spec.arity);
  const std::size_t len = EffectiveLen(spec.value_len, spec.num_tuples);
  const std::uint64_t mask =
      len >= 64 ? rng.UniformBelow(UINT64_MAX)
                : rng.UniformBelow(std::uint64_t{1} << len);
  std::vector<std::uint64_t> column_masks;
  for (std::size_t j = 0; j < arity; ++j) {
    column_masks.push_back(
        len >= 64 ? rng.UniformBelow(UINT64_MAX)
                  : rng.UniformBelow(std::uint64_t{1} << len));
  }

  const std::size_t k = std::min(spec.perturbations, spec.num_tuples);
  Relation r1{spec.r1_name, arity, {}};
  Relation r2{spec.r2_name, arity, {}};
  std::vector<std::string> fields;
  for (std::size_t i = 0; i < spec.num_tuples; ++i) {
    Tuple tuple;
    tuple.reserve(arity);
    // Column 0 is the distinct index value; further columns are
    // mask-correlated copies, which makes every column a plausible
    // (and for column 0, unique) join key.
    for (std::size_t j = 0; j < arity; ++j) {
      tuple.push_back(EncodeValue(i, mask ^ column_masks[j], len));
    }
    r1.Insert(tuple);
    fields.push_back(spec.r1_name + "," + EncodeTuple(tuple));

    Tuple twin = tuple;
    if (i < k) {
      // Perturbed: one appended bit makes the value longer than every
      // fixed-width value, so it is outside R1 by construction.
      twin[0] += '1';
    }
    r2.Insert(twin);
    fields.push_back(spec.r2_name + "," + EncodeTuple(twin));
  }
  out.symmetric_difference = 2 * k;

  if (spec.skew_duplicates) {
    const std::size_t base = fields.size();
    for (std::size_t i = 0; i < base; ++i) {
      if (rng.Bernoulli(0.25)) fields.push_back(fields[i]);
    }
  }
  rng.Shuffle(fields);
  for (const std::string& field : fields) {
    out.stream += field;
    out.stream += stmodel::kFieldSeparator;
  }
  out.database.emplace(spec.r1_name, std::move(r1));
  out.database.emplace(spec.r2_name, std::move(r2));
  return out;
}

XmlWorkload MakeXmlWorkload(const XmlWorkloadSpec& spec) {
  XmlWorkload out;
  Rng rng(spec.seed);
  const std::size_t count =
      std::max(spec.set1_values, spec.set2_values);
  const std::size_t len = EffectiveLen(spec.value_len, count);
  const std::uint64_t mask =
      len >= 64 ? rng.UniformBelow(UINT64_MAX)
                : rng.UniformBelow(std::uint64_t{1} << len);
  const std::size_t k = std::min(spec.perturbations, spec.set2_values);

  const auto append_item = [&](std::string& doc, const std::string& value) {
    doc += "<item>";
    for (std::size_t d = 0; d < spec.nesting_depth; ++d) doc += "<deep>";
    doc += "<string>";
    doc += value;
    doc += "</string>";
    for (std::size_t d = 0; d < spec.nesting_depth; ++d) doc += "</deep>";
    doc += "</item>";
  };

  out.document = "<instance><set1>";
  for (std::size_t i = 0; i < spec.set1_values; ++i) {
    append_item(out.document, EncodeValue(i, mask, len));
  }
  out.document += "</set1><set2>";
  for (std::size_t i = 0; i < spec.set2_values; ++i) {
    std::string value = EncodeValue(i, mask, len);
    if (i < k) value += '1';  // outside set1's fixed-width universe
    append_item(out.document, value);
  }
  out.document += "</set2></instance>";

  out.set1_count = spec.set1_values;
  out.set2_count = spec.set2_values;
  // Unperturbed set2 slots are k..set2-1; those below set1_values are
  // common to both sets.
  const std::size_t overlap = std::min(spec.set1_values, spec.set2_values);
  const std::size_t common = overlap > k ? overlap - k : 0;
  out.symmetric_difference =
      (spec.set1_values - common) + (spec.set2_values - common);
  out.sets_equal = out.symmetric_difference == 0;
  return out;
}

}  // namespace rstlab::query
