#ifndef RSTLAB_QUERY_RELATION_H_
#define RSTLAB_QUERY_RELATION_H_

#include <cstddef>
#include <string>
#include <vector>

#include "tape/tape.h"
#include "util/status.h"

namespace rstlab::query {

/// A database tuple: a fixed-arity vector of attribute values. Values are
/// strings over {0,1} (the streams the paper's Theorem 11 considers are
/// tuple streams of bit strings), though any '#'-, ','-free characters
/// work.
using Tuple = std::vector<std::string>;

/// A relation with set semantics: named, fixed arity, duplicate-free.
struct Relation {
  std::string name;
  std::size_t arity = 0;
  std::vector<Tuple> tuples;

  /// Inserts a tuple if not already present; returns whether inserted.
  bool Insert(const Tuple& tuple);
  /// True iff `tuple` is present.
  bool Contains(const Tuple& tuple) const;
  /// Sorts tuples lexicographically and removes duplicates (canonical
  /// form; used before comparisons).
  void Normalize();

  bool operator==(const Relation& other) const;
};

/// Serializes one tuple as a tape field: values joined with ','.
std::string EncodeTuple(const Tuple& tuple);
/// Parses a tape field back into a tuple.
Tuple DecodeTuple(const std::string& field);

/// Writes a relation's tuples onto `t` as consecutive '#'-terminated
/// fields, in storage order — the "stream consisting of the tuples of
/// the input database relations" of Theorem 11.
void WriteRelationToTape(const Relation& relation, tape::Tape& t);

/// Reads `count` tuple fields from `t` (or all until blank when count is
/// SIZE_MAX) into a relation of the given name.
Relation ReadRelationFromTape(tape::Tape& t, std::string name,
                              std::size_t count);

}  // namespace rstlab::query

#endif  // RSTLAB_QUERY_RELATION_H_
