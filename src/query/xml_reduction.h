#ifndef RSTLAB_QUERY_XML_REDUCTION_H_
#define RSTLAB_QUERY_XML_REDUCTION_H_

#include <functional>

#include "problems/instance.h"
#include "util/random.h"

namespace rstlab::query {

/// A (possibly randomized) XPath filter oracle for the Theorem 13
/// argument: called on an encoded instance (X, Y), it must
///   (1) accept with probability 1 when the query selects a node
///       (X is not a subset of Y), and
///   (2) reject with probability >= 0.5 when it does not (X subset Y).
using FilterOracle =
    std::function<bool(const problems::Instance& instance, Rng& rng)>;

/// True iff the paper's XPath query selects at least one node of the
/// encoded document — semantically, X − Y nonempty.
bool PaperXPathSelects(const problems::Instance& instance);

/// A model filter satisfying (1)/(2) exactly: accepts surely when
/// X ⊄ Y; when X ⊆ Y it accepts with probability `false_accept`
/// (default 0.5). Decides subset-ness via the XPath evaluator.
FilterOracle ModelFilterOracle(double false_accept = 0.5);

/// One run of the machine T-tilde from the proof of Theorem 13: runs the
/// filter on (X, Y) and on (Y, X); accepts iff both runs reject. On
/// X = Y it accepts with probability >= 0.25; on X != Y it rejects
/// surely.
bool TTildeAcceptsSetEquality(const problems::Instance& instance,
                              const FilterOracle& oracle, Rng& rng);

/// `rounds` independent T-tilde runs, accepting if any accepts. The
/// paper suggests two rounds to reach acceptance probability 1/2; with
/// the worst-case per-round probability of exactly 1/4 this yields
/// 1-(3/4)^rounds, which first exceeds 1/2 at rounds = 3 — a small
/// inaccuracy in the paper that experiment E13 measures.
bool BoostedTTildeAccepts(const problems::Instance& instance,
                          const FilterOracle& oracle, Rng& rng,
                          std::size_t rounds);

}  // namespace rstlab::query

#endif  // RSTLAB_QUERY_XML_REDUCTION_H_
