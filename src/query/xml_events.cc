#include "query/xml_events.h"

namespace rstlab::query {

XmlEventReader::XmlEventReader(tape::Tape& t,
                               stmodel::InternalArena& arena,
                               std::size_t max_tag_len)
    : tape_(t),
      buffer_bits_(arena.Allocate(8)),  // the lookahead symbol
      max_tag_len_(max_tag_len) {}

char XmlEventReader::TakeSymbol() {
  if (has_lookahead_) {
    has_lookahead_ = false;
    return lookahead_;
  }
  const char c = tape_.Read();
  tape_.MoveRight();
  return c;
}

Result<XmlEvent> XmlEventReader::Next() {
  if (done_) return XmlEvent{};
  char c = TakeSymbol();
  if (c == tape::kBlank) {
    done_ = true;
    return XmlEvent{};
  }
  XmlEvent event;
  if (c == '<') {
    // Scan the tag into the buffer; every cell is consumed exactly once.
    std::string tag;
    for (;;) {
      c = TakeSymbol();
      if (c == tape::kBlank) {
        return Status::InvalidArgument("unterminated tag");
      }
      if (c == '>') break;
      if (tag.size() >= max_tag_len_ + 1) {
        return Status::InvalidArgument("unexpected long tag");
      }
      tag.push_back(c);
    }
    if (!tag.empty() && tag.front() == '/') {
      event.kind = XmlEventKind::kEndTag;
      event.content = tag.substr(1);
    } else {
      event.kind = XmlEventKind::kStartTag;
      event.content = std::move(tag);
    }
  } else {
    // A maximal text run: accumulate until the next '<' or the end of
    // the document; the terminator is pushed back, not re-read.
    event.kind = XmlEventKind::kText;
    event.content.push_back(c);
    for (;;) {
      c = TakeSymbol();
      if (c == '<' || c == tape::kBlank) {
        lookahead_ = c;
        has_lookahead_ = true;
        break;
      }
      event.content.push_back(c);
    }
  }
  if (event.content.size() > longest_buffered_) {
    longest_buffered_ = event.content.size();
    buffer_bits_.Resize(8 * (longest_buffered_ + 1));
  }
  return event;
}

}  // namespace rstlab::query
